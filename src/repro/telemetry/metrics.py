"""The metrics registry: counters, gauges, and fixed-bucket histograms.

The paper's contribution is a measurement campaign; this module gives the
reproduction its own measurement plane.  Three constraints shape it:

- **deterministic** -- metrics only ever hold values derived from the
  simulation itself (event tallies, hosts per round), never wall-clock
  time, so two runs of the same (config, seed, horizon) produce equal
  registries.  Wall-time lives in :mod:`repro.telemetry.spans` and is
  excluded from every equality and canonical-JSON path;
- **picklable** -- a registry crosses the
  :class:`~concurrent.futures.ProcessPoolExecutor` boundary inside a
  :class:`~repro.runner.records.RunRecord`, so everything here is plain
  attributes, no lambdas or open handles;
- **mergeable** -- sweep workers each fill their own registry;
  :meth:`MetricsRegistry.merge` folds them into one fleet-wide view
  (counters and histograms add, gauges keep the maximum).

Exposition comes in two flavours: :meth:`MetricsRegistry.to_json_dict`
for machine consumption (the ``repro run --telemetry-out`` file) and
:meth:`MetricsRegistry.to_prometheus_text` for anything that scrapes
the Prometheus text format.
"""

from __future__ import annotations

import bisect
import re
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

#: Default histogram upper bounds, sized for "things per collection round".
DEFAULT_BUCKETS: Tuple[float, ...] = (0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0)

_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Sanitise a dotted metric name into a Prometheus-legal one."""
    return _PROM_NAME_RE.sub("_", name)


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text format.

    The official rules: backslash, double-quote, and line-feed become
    ``\\\\``, ``\\"``, and ``\\n`` respectively (backslash first, so the
    other escapes are not themselves re-escaped).
    """
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def escape_help_text(text: str) -> str:
    """Escape a ``# HELP`` line's text (backslash and line feed only)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc({amount}))")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time float (queue depth, events fired at end of run)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        self.value = float(value)

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Fixed-bucket histogram: cumulative-style counts plus a running sum.

    ``bounds`` are ascending upper bounds; observations land in the first
    bucket whose bound is >= the value, or the implicit +Inf bucket.
    ``bucket_counts`` has ``len(bounds) + 1`` entries (the last is +Inf).
    """

    __slots__ = ("name", "help", "bounds", "bucket_counts", "sum", "count")

    def __init__(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS, help: str = ""
    ) -> None:
        ordered = tuple(float(b) for b in bounds)
        if not ordered:
            raise ValueError(f"histogram {name!r} needs at least one bucket bound")
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(f"histogram {name!r} bounds must be strictly ascending")
        self.name = name
        self.help = help
        self.bounds = ordered
        self.bucket_counts: List[int] = [0] * (len(ordered) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count}, sum={self.sum:g})"


class MetricsRegistry:
    """Get-or-create store for the three metric kinds.

    Examples
    --------
    >>> reg = MetricsRegistry()
    >>> reg.counter("monitoring.rounds").inc()
    >>> reg.counter("monitoring.rounds").value
    1
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
        )

    # ------------------------------------------------------------------
    # Get-or-create
    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "") -> Counter:
        """The counter called ``name``, created on first use."""
        self._check_free(name, self._counters)
        return self._counters.setdefault(name, Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        """The gauge called ``name``, created on first use."""
        self._check_free(name, self._gauges)
        return self._gauges.setdefault(name, Gauge(name, help))

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS, help: str = ""
    ) -> Histogram:
        """The histogram called ``name``, created on first use.

        ``bounds`` only matter at creation; a later caller with different
        bounds gets the original histogram back unchanged.
        """
        self._check_free(name, self._histograms)
        return self._histograms.setdefault(name, Histogram(name, bounds, help))

    def _check_free(self, name: str, own: Dict[str, Any]) -> None:
        for kind in (self._counters, self._gauges, self._histograms):
            if kind is not own and name in kind:
                raise ValueError(f"metric {name!r} already registered as another kind")

    # ------------------------------------------------------------------
    # Introspection (sorted, so every export is deterministic)
    # ------------------------------------------------------------------
    def counters(self) -> Iterator[Counter]:
        return iter(sorted(self._counters.values(), key=lambda c: c.name))

    def gauges(self) -> Iterator[Gauge]:
        return iter(sorted(self._gauges.values(), key=lambda g: g.name))

    def histograms(self) -> Iterator[Histogram]:
        return iter(sorted(self._histograms.values(), key=lambda h: h.name))

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry in place.

        Counters and histograms add; gauges keep the maximum (a sweep's
        merged gauge answers "how big did this ever get").  Histograms
        with mismatching bounds raise rather than silently mis-bucket.
        """
        for counter in other.counters():
            self.counter(counter.name, counter.help).inc(counter.value)
        for gauge in other.gauges():
            known = gauge.name in self._gauges
            mine = self.gauge(gauge.name, gauge.help)
            mine.set(max(mine.value, gauge.value) if known else gauge.value)
        for hist in other.histograms():
            mine = self.histogram(hist.name, hist.bounds, hist.help)
            if mine.bounds != hist.bounds:
                raise ValueError(
                    f"cannot merge histogram {hist.name!r}: "
                    f"bounds {mine.bounds} != {hist.bounds}"
                )
            for index, count in enumerate(hist.bucket_counts):
                mine.bucket_counts[index] += count
            mine.sum += hist.sum
            mine.count += hist.count

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, Any]:
        """Plain-data form (stable ordering via sorted keys)."""
        return {
            "counters": {c.name: c.value for c in self.counters()},
            "gauges": {g.name: g.value for g in self.gauges()},
            "histograms": {
                h.name: {
                    "bounds": list(h.bounds),
                    "bucket_counts": list(h.bucket_counts),
                    "sum": h.sum,
                    "count": h.count,
                }
                for h in self.histograms()
            },
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_json_dict` output."""
        registry = cls()
        for name, value in data.get("counters", {}).items():
            registry.counter(name).inc(int(value))
        for name, value in data.get("gauges", {}).items():
            registry.gauge(name).set(float(value))
        for name, payload in data.get("histograms", {}).items():
            hist = registry.histogram(name, bounds=payload["bounds"])
            hist.bucket_counts = [int(c) for c in payload["bucket_counts"]]
            hist.sum = float(payload["sum"])
            hist.count = int(payload["count"])
        return registry

    def to_prometheus_text(self, prefix: str = "repro_") -> str:
        """Prometheus text exposition format, one family per metric."""
        lines: List[str] = []
        for counter in self.counters():
            name = prefix + _prom_name(counter.name) + "_total"
            if counter.help:
                lines.append(f"# HELP {name} {escape_help_text(counter.help)}")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {counter.value}")
        for gauge in self.gauges():
            name = prefix + _prom_name(gauge.name)
            if gauge.help:
                lines.append(f"# HELP {name} {escape_help_text(gauge.help)}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {gauge.value:g}")
        for hist in self.histograms():
            name = prefix + _prom_name(hist.name)
            if hist.help:
                lines.append(f"# HELP {name} {escape_help_text(hist.help)}")
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for bound, count in zip(hist.bounds, hist.bucket_counts):
                cumulative += count
                lines.append(f'{name}_bucket{{le="{bound:g}"}} {cumulative}')
            cumulative += hist.bucket_counts[-1]
            lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{name}_sum {hist.sum:g}")
            lines.append(f"{name}_count {hist.count}")
        return "\n".join(lines) + ("\n" if lines else "")
