"""Live progress streaming: wall-clock-cadenced JSONL heartbeats.

A long campaign is silent until it finishes; the paper's operators had a
webcam on the tent.  :class:`ProgressMeter` is the reproduction's
webcam: it watches a run from the engine's ``on_event`` hook (or the
fleet frame), and every ``interval_s`` wall seconds writes one JSON
line describing where the simulation stands::

    {"type": "heartbeat", "source": "run", "seq": 3, "wall_s": 6.01,
     "sim_time_s": 2419200.0, "sim_date": "2010-03-12T00:00:00",
     "done_frac": 0.41, "sim_days_per_s": 4.66, "eta_s": 8.6,
     "events": 181440, "events_per_s": 30190.0, ...}

Design constraints:

- **off the hot path** -- the per-event work is one integer increment;
  the wall clock is consulted only every ``check_every`` events, and
  the expensive extras (failure counts, hottest span) come from an
  injectable ``sample`` callback evaluated only when a line is actually
  emitted;
- **non-perturbing** -- the meter draws no randomness, schedules
  nothing, and touches only ``sys`` streams, so a run with a heartbeat
  is byte-identical to one without;
- **deterministic in tests** -- ``wall_clock`` is injectable, so tests
  drive emission cadence without sleeping.

:class:`SweepProgress` is the sweep-side aggregator: the pool runner
reports per-spec lifecycle events (cached/completed/retried/failed) and
the aggregator emits one JSONL line per event with running totals and a
completion-rate ETA -- per-spec granularity is the right cadence when
each spec is minutes of work across worker processes.
"""

from __future__ import annotations

import json
import time as _time
from typing import Any, Callable, Dict, IO, Mapping, Optional

from repro.sim.clock import SimClock

#: Schema tag carried by every heartbeat line.
PROGRESS_SCHEMA = 1


class ProgressMeter:
    """Emit JSONL heartbeats for one running simulation.

    Parameters
    ----------
    stream:
        Writable text stream for the JSONL lines (stderr, a file, ...).
    interval_s:
        Minimum wall seconds between heartbeats (default 2.0).
    source:
        Free-form origin tag (``"run"``, ``"fleet"``) carried on every
        line.
    clock:
        Optional :class:`~repro.sim.clock.SimClock` used to render the
        ISO ``sim_date`` field; omitted from the line when ``None``.
    sim_start_s / sim_end_s:
        Simulated bounds of the drive.  ``sim_start_s`` defaults to the
        first observed time; ``sim_end_s`` enables ``done_frac`` and
        ``eta_s``.
    sample:
        Optional callable returning extra fields (failure counts, the
        hottest span label) merged into each emitted line; evaluated
        only at emission time.
    wall_clock:
        Injectable monotonic clock (tests pin it).
    check_every:
        Events between wall-clock checks on the :meth:`on_event` path.
        :meth:`tick` checks every call (fleet frames are coarse).
    """

    def __init__(
        self,
        stream: IO[str],
        *,
        interval_s: float = 2.0,
        source: str = "run",
        clock: Optional[SimClock] = None,
        sim_start_s: Optional[float] = None,
        sim_end_s: Optional[float] = None,
        sample: Optional[Callable[[], Mapping[str, Any]]] = None,
        wall_clock: Callable[[], float] = _time.monotonic,
        check_every: int = 256,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("heartbeat interval must be positive")
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        self._stream = stream
        self._interval_s = float(interval_s)
        self._source = source
        self._clock = clock
        self._sim_start_s = sim_start_s
        self._sim_end_s = sim_end_s
        self._sample = sample
        self._wall_clock = wall_clock
        self._check_every = int(check_every)
        self._owns_stream = False
        self._wall0: Optional[float] = None
        self._last_emit_wall = 0.0
        self._since_check = 0
        self._events = 0
        self._seq = 0
        self._finished = False
        self.lines_emitted = 0

    @classmethod
    def open(cls, path: str, **kwargs: Any) -> "ProgressMeter":
        """A meter writing to ``path`` (truncates; :meth:`close` closes it)."""
        meter = cls(open(path, "w", encoding="utf-8"), **kwargs)
        meter._owns_stream = True
        return meter

    def __repr__(self) -> str:
        return (
            f"ProgressMeter(source={self._source!r}, "
            f"lines_emitted={self.lines_emitted})"
        )

    # ------------------------------------------------------------------
    # Hot-path hooks
    # ------------------------------------------------------------------
    def on_event(self, time_s: float, label: str = "") -> None:
        """``Simulator.on_event`` hook: count, and rarely check the wall."""
        self._events += 1
        self._since_check += 1
        if self._since_check < self._check_every:
            return
        self._since_check = 0
        self._maybe_emit(time_s)

    def tick(self, sim_now: float) -> None:
        """Coarse-cadence hook (one fleet frame = one call): always check."""
        self._events += 1
        self._maybe_emit(sim_now)

    def _maybe_emit(self, sim_now: float) -> None:
        now = self._wall_clock()
        if self._wall0 is None:
            self._wall0 = now
            self._last_emit_wall = now
            if self._sim_start_s is None:
                self._sim_start_s = float(sim_now)
            return
        if now - self._last_emit_wall >= self._interval_s:
            self._emit(sim_now, now)

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def _emit(self, sim_now: float, wall_now: float, final: bool = False) -> None:
        self._last_emit_wall = wall_now
        start = self._wall0 if self._wall0 is not None else wall_now
        elapsed = max(wall_now - start, 1e-9)
        sim0 = self._sim_start_s if self._sim_start_s is not None else sim_now
        advanced_days = max(sim_now - sim0, 0.0) / 86_400.0
        rate = advanced_days / elapsed
        payload: Dict[str, Any] = {
            "type": "heartbeat",
            "schema": PROGRESS_SCHEMA,
            "source": self._source,
            "seq": self._seq,
            "wall_s": round(elapsed, 3),
            "sim_time_s": float(sim_now),
            "sim_days_per_s": round(rate, 4),
            "events": self._events,
            "events_per_s": round(self._events / elapsed, 1),
        }
        if self._clock is not None:
            payload["sim_date"] = self._clock.to_datetime(sim_now).isoformat()
        if self._sim_end_s is not None:
            total = max(self._sim_end_s - sim0, 1e-9)
            payload["done_frac"] = round(
                min(max(sim_now - sim0, 0.0) / total, 1.0), 4
            )
            remaining_days = max(self._sim_end_s - sim_now, 0.0) / 86_400.0
            payload["eta_s"] = (
                round(remaining_days / rate, 1) if rate > 0 else None
            )
        if final:
            payload["final"] = True
        if self._sample is not None:
            payload.update(self._sample())
        self._stream.write(json.dumps(payload, sort_keys=True) + "\n")
        self._stream.flush()
        self._seq += 1
        self.lines_emitted += 1

    def finish(self, sim_now: float) -> None:
        """Force one final heartbeat (always emits, even on short runs).

        Idempotent: drivers call this from try/finally *and* from their
        success paths, and a crash cleanup must not write two ``final``
        lines.
        """
        if self._finished:
            return
        self._finished = True
        now = self._wall_clock()
        if self._wall0 is None:
            self._wall0 = now
            if self._sim_start_s is None:
                self._sim_start_s = float(sim_now)
        self._emit(sim_now, now, final=True)

    def close(self) -> None:
        """Flush, and close the stream if :meth:`open` created it."""
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()


class SweepProgress:
    """Aggregate per-spec sweep events into JSONL progress lines.

    Plug :meth:`sink` into ``run_specs(progress=...)``; each lifecycle
    event (``cached``/``completed``/``retried``/``failed``) produces one
    line carrying running totals and a completion-rate ETA::

        {"type": "sweep-progress", "kind": "completed",
         "label": "seed 11", "done": 2, "total": 4, ...}
    """

    def __init__(
        self,
        stream: IO[str],
        total: int,
        *,
        wall_clock: Callable[[], float] = _time.monotonic,
    ) -> None:
        if total < 1:
            raise ValueError("need at least one spec")
        self._stream = stream
        self._total = int(total)
        self._wall_clock = wall_clock
        self._wall0: Optional[float] = None
        self._owns_stream = False
        self.done = 0
        self.failed = 0
        self.retried = 0
        self.cached = 0
        self.lines_emitted = 0

    @classmethod
    def open(cls, path: str, total: int, **kwargs: Any) -> "SweepProgress":
        """An aggregator writing to ``path`` (:meth:`close` closes it)."""
        progress = cls(open(path, "w", encoding="utf-8"), total, **kwargs)
        progress._owns_stream = True
        return progress

    def __repr__(self) -> str:
        return (
            f"SweepProgress(done={self.done}/{self._total}, "
            f"failed={self.failed})"
        )

    def sink(self, event: Mapping[str, Any]) -> None:
        """The ``run_specs(progress=...)`` callback."""
        now = self._wall_clock()
        if self._wall0 is None:
            self._wall0 = now
        kind = str(event.get("kind", "unknown"))
        if kind in ("completed", "cached"):
            self.done += 1
            if kind == "cached":
                self.cached += 1
        elif kind == "retried":
            self.retried += 1
        elif kind == "failed":
            self.failed += 1
        elapsed = max(now - self._wall0, 1e-9)
        remaining = self._total - self.done - self.failed
        eta_s: Optional[float] = None
        if remaining <= 0:
            eta_s = 0.0
        elif self.done > 0:
            eta_s = round(elapsed / self.done * remaining, 1)
        payload: Dict[str, Any] = {
            "type": "sweep-progress",
            "schema": PROGRESS_SCHEMA,
            "kind": kind,
            "label": event.get("label", ""),
            "done": self.done,
            "total": self._total,
            "failed": self.failed,
            "retried": self.retried,
            "cached": self.cached,
            "wall_s": round(elapsed, 3),
            "eta_s": eta_s,
        }
        for key in ("attempt", "error"):
            if key in event:
                payload[key] = event[key]
        self._stream.write(json.dumps(payload, sort_keys=True) + "\n")
        self._stream.flush()
        self.lines_emitted += 1

    def close(self) -> None:
        """Flush, and close the stream if :meth:`open` created it."""
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()


__all__ = ["PROGRESS_SCHEMA", "ProgressMeter", "SweepProgress"]
