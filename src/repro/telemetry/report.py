"""Terminal rendering of a run's telemetry: the ``repro telemetry`` verb.

The report answers the two questions an operator asks of a slow or
surprising run: *which event labels dominate the engine's queue* (hot
labels, by fire count) and *where does wall time actually go* (slowest
spans, by worst single duration -- the "slowest round" view for the
monitoring plane).  Counters, gauges, and histograms follow so the
deterministic side of the registry is visible in the same place.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.telemetry.hub import Telemetry

#: Layout version of :func:`report_json` output.
REPORT_SCHEMA = 1


def _format_seconds(seconds: float) -> str:
    """Human duration: us / ms / s picked by magnitude."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"


def render_report(telemetry: Telemetry, top: int = 10) -> str:
    """Multi-section text report over one run's telemetry."""
    lines: List[str] = []

    hottest = telemetry.spans.hottest(top)
    lines.append(f"Hot labels (top {len(hottest)} by fires)")
    if hottest:
        width = max(len(s.label) for s in hottest)
        for stats in hottest:
            lines.append(
                f"  {stats.label:<{width}}  {stats.count:>8} fires  "
                f"total {_format_seconds(stats.total_s):>9}  "
                f"mean {_format_seconds(stats.mean_s):>9}"
            )
    else:
        lines.append("  (no spans recorded)")

    slowest = telemetry.spans.slowest(top)
    lines.append("")
    lines.append(f"Slowest spans (top {len(slowest)} by worst single duration)")
    if slowest:
        width = max(len(s.label) for s in slowest)
        for stats in slowest:
            lines.append(
                f"  {stats.label:<{width}}  max {_format_seconds(stats.max_s):>9}  "
                f"mean {_format_seconds(stats.mean_s):>9}  ({stats.count} fires)"
            )
    else:
        lines.append("  (no spans recorded)")

    counters = list(telemetry.metrics.counters())
    if counters:
        lines.append("")
        lines.append("Counters")
        width = max(len(c.name) for c in counters)
        for counter in counters:
            lines.append(f"  {counter.name:<{width}}  {counter.value}")

    gauges = list(telemetry.metrics.gauges())
    if gauges:
        lines.append("")
        lines.append("Gauges")
        width = max(len(g.name) for g in gauges)
        for gauge in gauges:
            lines.append(f"  {gauge.name:<{width}}  {gauge.value:g}")

    histograms = list(telemetry.metrics.histograms())
    if histograms:
        lines.append("")
        lines.append("Histograms")
        for hist in histograms:
            lines.append(f"  {hist.name}  (n={hist.count}, sum={hist.sum:g})")
            for bound, count in zip(hist.bounds, hist.bucket_counts):
                if count:
                    lines.append(f"    <= {bound:g}: {count}")
            if hist.bucket_counts[-1]:
                lines.append(f"    > {hist.bounds[-1]:g}: {hist.bucket_counts[-1]}")

    return "\n".join(lines)


def report_json(telemetry: Telemetry, top: int = 10) -> Dict[str, Any]:
    """Machine-readable twin of :func:`render_report`.

    Same sections, same ordering, plain data: the ``repro telemetry
    --json`` payload CI and the future service plane consume without
    scraping the text report.  Wall-second fields ride along for
    operators; anything comparing reports across runs should stick to
    the count fields (the deterministic part).
    """
    return {
        "schema": REPORT_SCHEMA,
        "hot_labels": [
            {
                "label": stats.label,
                "count": stats.count,
                "total_s": stats.total_s,
                "mean_s": stats.mean_s,
            }
            for stats in telemetry.spans.hottest(top)
        ],
        "slowest_spans": [
            {
                "label": stats.label,
                "max_s": stats.max_s,
                "mean_s": stats.mean_s,
                "count": stats.count,
            }
            for stats in telemetry.spans.slowest(top)
        ],
        "counters": {c.name: c.value for c in telemetry.metrics.counters()},
        "gauges": {g.name: g.value for g in telemetry.metrics.gauges()},
        "histograms": {
            h.name: {
                "bounds": list(h.bounds),
                "bucket_counts": list(h.bucket_counts),
                "sum": h.sum,
                "count": h.count,
            }
            for h in telemetry.metrics.histograms()
        },
    }
