"""Structured run logs: one JSON line per campaign event.

:class:`JsonlRunLog` is an :class:`~repro.sim.events.EventBus`
subscriber -- it plugs into a campaign through the same
``CampaignBuilder.with_subscriber`` hook any observer uses::

    log = JsonlRunLog.open("run.jsonl")
    builder.with_subscriber(log.subscribe)
    results = builder.build().run()
    log.close()

Each line carries the event class name, the simulated time, the wall
time the line was written, the host id when the event names one, and
every other JSON-representable payload field.  The sink only observes:
it draws no randomness, publishes nothing, and schedules nothing, so
attaching it never perturbs a run.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import time as _time
from typing import Any, Callable, IO, Optional

from repro.sim.events import Event, EventBus


def _json_safe(value: Any) -> Any:
    """Reduce one payload field to something ``json.dumps`` accepts."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return value.name
    return repr(value)


class JsonlRunLog:
    """EventBus subscriber that appends one JSON object per line.

    Parameters
    ----------
    stream:
        Any writable text stream.  Use :meth:`open` for a file path.
    wall_clock:
        Source of the ``wall_time_s`` field; injectable so tests can pin
        it.  Defaults to :func:`time.time` (epoch seconds).
    """

    def __init__(
        self,
        stream: IO[str],
        wall_clock: Callable[[], float] = _time.time,
    ) -> None:
        self._stream = stream
        self._wall_clock = wall_clock
        self._owns_stream = False
        self.lines_written = 0

    @classmethod
    def open(cls, path: str, wall_clock: Callable[[], float] = _time.time) -> "JsonlRunLog":
        """A sink writing to ``path`` (truncates; :meth:`close` closes it)."""
        log = cls(open(path, "w", encoding="utf-8"), wall_clock)
        log._owns_stream = True
        return log

    def __repr__(self) -> str:
        return f"JsonlRunLog(lines_written={self.lines_written})"

    # ------------------------------------------------------------------
    # The subscriber protocol
    # ------------------------------------------------------------------
    def subscribe(self, bus: EventBus) -> None:
        """Start logging every event on ``bus`` (the builder hook)."""
        bus.subscribe(Event, self._emit)

    def _emit(self, event: Event) -> None:
        payload = {
            "event": type(event).__name__,
            "sim_time_s": event.time,
            "wall_time_s": self._wall_clock(),
        }
        for field in dataclasses.fields(event):
            if field.name == "time":
                continue
            payload[field.name] = _json_safe(getattr(event, field.name))
        self._stream.write(json.dumps(payload, sort_keys=True) + "\n")
        self.lines_written += 1

    def close(self) -> None:
        """Flush, and close the stream if :meth:`open` created it."""
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()
