"""Structured run logs: one JSON line per campaign event.

:class:`JsonlRunLog` is an :class:`~repro.sim.events.EventBus`
subscriber -- it plugs into a campaign through the same
``CampaignBuilder.with_subscriber`` hook any observer uses::

    with JsonlRunLog.open("run.jsonl", flush_every=100) as log:
        builder.with_subscriber(log.subscribe)
        results = builder.build().run()

``flush_every=N`` flushes the stream every N lines, bounding how much a
crash mid-run can silently lose to stdio buffering; the default (0)
keeps the historical flush-on-close-only behaviour.  The sink is also a
context manager, so the close happens even when the run raises.

Each line carries the event class name, the simulated time, the wall
time the line was written, the host id when the event names one, and
every other JSON-representable payload field.  The sink only observes:
it draws no randomness, publishes nothing, and schedules nothing, so
attaching it never perturbs a run.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import time as _time
from typing import Any, Callable, IO, Optional

from repro.sim.events import Event, EventBus


def _json_safe(value: Any) -> Any:
    """Reduce one payload field to something ``json.dumps`` accepts."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return value.name
    return repr(value)


class JsonlRunLog:
    """EventBus subscriber that appends one JSON object per line.

    Parameters
    ----------
    stream:
        Any writable text stream.  Use :meth:`open` for a file path.
    wall_clock:
        Source of the ``wall_time_s`` field; injectable so tests can pin
        it.  Defaults to :func:`time.time` (epoch seconds).
    flush_every:
        Flush the stream after every N lines; 0 (the default) never
        flushes before :meth:`close`, the historical behaviour.
    """

    def __init__(
        self,
        stream: IO[str],
        wall_clock: Callable[[], float] = _time.time,
        flush_every: int = 0,
    ) -> None:
        if flush_every < 0:
            raise ValueError("flush_every cannot be negative")
        self._stream = stream
        self._wall_clock = wall_clock
        self._flush_every = int(flush_every)
        self._owns_stream = False
        self.lines_written = 0

    @classmethod
    def open(
        cls,
        path: str,
        wall_clock: Callable[[], float] = _time.time,
        flush_every: int = 0,
    ) -> "JsonlRunLog":
        """A sink writing to ``path`` (truncates; :meth:`close` closes it)."""
        log = cls(open(path, "w", encoding="utf-8"), wall_clock, flush_every)
        log._owns_stream = True
        return log

    def __repr__(self) -> str:
        return f"JsonlRunLog(lines_written={self.lines_written})"

    def __enter__(self) -> "JsonlRunLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # The subscriber protocol
    # ------------------------------------------------------------------
    def subscribe(self, bus: EventBus) -> None:
        """Start logging every event on ``bus`` (the builder hook)."""
        bus.subscribe(Event, self._emit)

    def _emit(self, event: Event) -> None:
        payload = {
            "event": type(event).__name__,
            "sim_time_s": event.time,
            "wall_time_s": self._wall_clock(),
        }
        for field in dataclasses.fields(event):
            if field.name == "time":
                continue
            payload[field.name] = _json_safe(getattr(event, field.name))
        self._stream.write(json.dumps(payload, sort_keys=True) + "\n")
        self.lines_written += 1
        if self._flush_every and self.lines_written % self._flush_every == 0:
            self._stream.flush()

    def close(self) -> None:
        """Flush, and close the stream if :meth:`open` created it."""
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()
