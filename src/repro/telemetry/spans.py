"""Span tracing: where wall time goes, keyed by label.

A :class:`SpanTracer` aggregates -- it does not keep one record per span
(a full campaign fires hundreds of thousands of engine events), it keeps
one :class:`SpanStats` per label: fire count, total/min/max wall seconds.
That is exactly what the ``repro telemetry`` hot-label report needs and
it keeps tracing O(1) memory.

Wall time is inherently nondeterministic, so span *durations* never
participate in record equality or canonical JSON -- only the per-label
fire *counts* do (those are a pure function of the simulation).  See
:mod:`repro.telemetry.hub` for how snapshots enforce that split.

:class:`Stopwatch` is the shared elapsed-time helper the runner uses;
``runner.local`` and ``runner.pool`` previously each hand-rolled the
same ``perf_counter`` bookkeeping.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Tuple


class SpanStats:
    """Aggregate timing for one span label."""

    __slots__ = ("label", "count", "total_s", "min_s", "max_s")

    def __init__(self, label: str) -> None:
        self.label = label
        self.count = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0

    def record(self, elapsed_s: float) -> None:
        """Fold one measured duration in."""
        self.count += 1
        self.total_s += elapsed_s
        if elapsed_s < self.min_s:
            self.min_s = elapsed_s
        if elapsed_s > self.max_s:
            self.max_s = elapsed_s

    @property
    def mean_s(self) -> float:
        """Average duration (0.0 before the first record)."""
        return self.total_s / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return (
            f"SpanStats({self.label!r}, n={self.count}, "
            f"total={self.total_s * 1e3:.2f}ms, max={self.max_s * 1e3:.3f}ms)"
        )


class SpanTracer:
    """Per-label span aggregation.

    Examples
    --------
    >>> tracer = SpanTracer()
    >>> with tracer.span("collect"):
    ...     pass
    >>> tracer.stats("collect").count
    1
    """

    def __init__(self) -> None:
        self._spans: Dict[str, SpanStats] = {}

    def __repr__(self) -> str:
        fired = sum(s.count for s in self._spans.values())
        return f"SpanTracer(labels={len(self._spans)}, fired={fired})"

    def record(self, label: str, elapsed_s: float) -> None:
        """Record one finished span (the engine's fast path calls this)."""
        stats = self._spans.get(label)
        if stats is None:
            stats = self._spans[label] = SpanStats(label)
        stats.record(elapsed_s)

    @contextmanager
    def span(self, label: str) -> Iterator[None]:
        """Time a ``with`` block under ``label``."""
        started = perf_counter()
        try:
            yield
        finally:
            self.record(label, perf_counter() - started)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self, label: str) -> Optional[SpanStats]:
        """The aggregate for one label, or ``None`` if it never fired."""
        return self._spans.get(label)

    def labels(self) -> List[str]:
        """All labels, sorted."""
        return sorted(self._spans)

    def counts(self) -> Dict[str, int]:
        """Deterministic fire tally per label, sorted by label."""
        return {label: self._spans[label].count for label in sorted(self._spans)}

    def hottest(self, top: int = 10) -> List[SpanStats]:
        """Labels by fire count, descending (label breaks ties)."""
        ordered = sorted(self._spans.values(), key=lambda s: (-s.count, s.label))
        return ordered[:top]

    def slowest(self, top: int = 10) -> List[SpanStats]:
        """Labels by worst single duration, descending."""
        ordered = sorted(self._spans.values(), key=lambda s: (-s.max_s, s.label))
        return ordered[:top]

    def __len__(self) -> int:
        return len(self._spans)

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------
    def merge(self, other: "SpanTracer") -> None:
        """Fold another tracer's aggregates into this one, in place."""
        for label in other.labels():
            theirs = other._spans[label]
            stats = self._spans.get(label)
            if stats is None:
                stats = self._spans[label] = SpanStats(label)
            stats.count += theirs.count
            stats.total_s += theirs.total_s
            if theirs.min_s < stats.min_s:
                stats.min_s = theirs.min_s
            if theirs.max_s > stats.max_s:
                stats.max_s = theirs.max_s

    def to_json_dict(self) -> Dict[str, Dict[str, float]]:
        """Plain-data form, sorted by label."""
        return {
            label: {
                "count": stats.count,
                "total_s": stats.total_s,
                "min_s": stats.min_s if stats.count else 0.0,
                "max_s": stats.max_s,
            }
            for label, stats in sorted(self._spans.items())
        }

    def load_json_dict(self, data: Dict[str, Dict[str, float]]) -> None:
        """Replace the aggregates with :meth:`to_json_dict` output.

        Fire counts are the deterministic part; the wall-second fields
        restore as recorded (a zero-count label's ``min_s`` comes back as
        +inf, matching a fresh :class:`SpanStats`).
        """
        self._spans = {}
        for label, payload in data.items():
            stats = SpanStats(label)
            stats.count = int(payload["count"])
            stats.total_s = float(payload["total_s"])
            stats.min_s = float(payload["min_s"]) if stats.count else float("inf")
            stats.max_s = float(payload["max_s"])
            self._spans[label] = stats


class Stopwatch:
    """Context-manager elapsed-time helper.

    Examples
    --------
    >>> with Stopwatch() as watch:
    ...     pass
    >>> watch.elapsed_s >= 0.0
    True
    """

    __slots__ = ("elapsed_s", "_started")

    def __init__(self) -> None:
        self.elapsed_s = 0.0
        self._started: Optional[float] = None

    def __enter__(self) -> "Stopwatch":
        self._started = perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._started is not None:
            self.elapsed_s = perf_counter() - self._started
            self._started = None
