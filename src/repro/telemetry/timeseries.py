"""Bounded-memory per-pod time series: the fleet observatory's storage.

The paper's evidence is time series -- tent temperature, humidity, and
the failure timeline over a winter -- but the fleet-scale batch mode
only reported an end-of-run census.  :class:`SeriesRecorder` closes that
gap without giving up the batch mode's scaling properties:

- **columnar** -- one preallocated ``(capacity, rows)`` float64 array
  per signal (rows = pods for per-pod signals, 1 for fleet scalars),
  plus one shared time axis.  Samples are the leading axis so committing
  a frame is one contiguous row write per signal -- at fleet scale the
  pod axis spans thousands of entries, and writing a *column* of a
  ``(rows, capacity)`` array would touch one cache line per pod;
- **bounded** -- when the buffer fills, adjacent samples are averaged
  pairwise (2:1 downsampling) and the effective stride doubles: a
  recorder holds at most ``capacity`` samples whatever the horizon,
  trading resolution for span exactly the way a round-robin database
  does.  After ``k`` folds each stored sample is the mean of ``2**k``
  raw frames, timestamped at their mean time, so the series stays
  uniformly spaced and strictly increasing;
- **deterministic** -- the fold is fixed-order float64 arithmetic on
  values that are themselves pure functions of the simulation, so two
  runs of the same (config, seed, horizon) produce bitwise-equal
  buffers;
- **snapshottable** -- :meth:`state_dict`/:meth:`load_state_dict`
  round-trip every buffer (including the partial accumulator between
  commits) through the packed-column codec, so a checkpointed campaign
  resumes its series byte-identically;
- **picklable** -- plain attributes and numpy arrays only, so a
  recorder can ride a :class:`~concurrent.futures.ProcessPoolExecutor`
  boundary inside a worker's results.

Examples
--------
>>> rec = SeriesRecorder({"temp_c": 1}, capacity=8)
>>> for i in range(20):
...     rec.record(float(i), {"temp_c": float(i)})
>>> rec.stride        # the buffer folded twice: 20 frames, 8 slots
4
>>> rec.n_samples
5
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

import numpy as np

from repro.analysis.series import TimeSeries
from repro.state.codec import pack_floats, unpack_floats
from repro.state.protocol import StateError, check_version

#: Version tag of :meth:`SeriesRecorder.state_dict`.
SERIES_STATE_VERSION = 1

#: Default slot count; at the fleet tick (1800 s) this spans ~10 days
#: at full resolution before the first fold.
DEFAULT_CAPACITY = 512


class SeriesRecorder:
    """Fixed-memory recorder for a set of named multi-row signals.

    Parameters
    ----------
    signals:
        Mapping of signal name to row count.  Per-pod signals use
        ``rows=n_pods``; fleet-wide scalars use ``rows=1``.  The set of
        signals is fixed at construction (the memory is preallocated).
    capacity:
        Maximum stored samples per signal.  Must be an even number of at
        least 8 so the 2:1 fold always lands on whole pairs.
    """

    def __init__(
        self,
        signals: Mapping[str, int],
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if not signals:
            raise ValueError("need at least one signal")
        if capacity < 8 or capacity % 2:
            raise ValueError("capacity must be an even number >= 8")
        self.capacity = int(capacity)
        self.signals: Dict[str, int] = {}
        self._data: Dict[str, np.ndarray] = {}
        self._acc: Dict[str, np.ndarray] = {}
        for name, rows in signals.items():
            rows = int(rows)
            if rows < 1:
                raise ValueError(f"signal {name!r} needs at least one row")
            self.signals[name] = rows
            # fill() touches every page now: lazily committed zero pages
            # would otherwise charge first-touch faults to the hot loop.
            self._data[name] = np.empty((self.capacity, rows), dtype=np.float64)
            self._data[name].fill(0.0)
            self._acc[name] = np.zeros(rows, dtype=np.float64)
        self._times = np.zeros(self.capacity, dtype=np.float64)
        self._len = 0
        self._stride = 1
        self._acc_n = 0
        self._acc_t = 0.0
        self.frames_seen = 0

    def __repr__(self) -> str:
        return (
            f"SeriesRecorder(signals={len(self.signals)}, "
            f"samples={self._len}/{self.capacity}, stride={self._stride})"
        )

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, time_s: float, values: Mapping[str, Any]) -> None:
        """Fold one raw frame in (all signals, one shared timestamp).

        ``values`` must name every signal; each value broadcasts to the
        signal's row count (a scalar fills a 1-row signal).
        """
        if len(values) != len(self.signals):
            missing = set(self.signals) - set(values)
            extra = set(values) - set(self.signals)
            raise ValueError(
                f"frame signal mismatch: missing {sorted(missing)}, "
                f"unexpected {sorted(extra)}"
            )
        if self._stride == 1 and self._acc_n == 0:
            # Pre-fold fast path: every frame is its own sample, so skip
            # the accumulator and write the slot directly.  Bitwise
            # equal to the general path (0.0 + x then x * 1.0 is x).
            slot = self._len
            self._times[slot] = float(time_s)
            for name in self._data:
                self._data[name][slot] = values[name]
            self.frames_seen += 1
            self._len += 1
            if self._len == self.capacity:
                self._fold()
            return
        for name, acc in self._acc.items():
            acc += values[name]
        self._acc_t += float(time_s)
        self._acc_n += 1
        self.frames_seen += 1
        if self._acc_n == self._stride:
            self._commit()

    def _commit(self) -> None:
        """Flush the accumulator into the next slot (mean over the stride)."""
        slot = self._len
        inv = 1.0 / self._stride
        self._times[slot] = self._acc_t * inv
        for name, acc in self._acc.items():
            np.multiply(acc, inv, out=self._data[name][slot])
            acc[:] = 0.0
        self._acc_t = 0.0
        self._acc_n = 0
        self._len += 1
        if self._len == self.capacity:
            self._fold()

    def _fold(self) -> None:
        """2:1 downsample in place: pair means, stride doubles."""
        half = self.capacity // 2
        self._times[:half] = 0.5 * (self._times[0::2] + self._times[1::2])
        for arr in self._data.values():
            arr[:half] = 0.5 * (arr[0::2] + arr[1::2])
        self._len = half
        self._stride *= 2

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def n_samples(self) -> int:
        """Committed samples currently stored (<= capacity)."""
        return self._len

    @property
    def stride(self) -> int:
        """Raw frames folded into each stored sample (doubles per fold)."""
        return self._stride

    def rows(self, signal: str) -> int:
        """Row count of one signal (pods, or 1 for fleet scalars)."""
        return self.signals[signal]

    def times(self) -> np.ndarray:
        """Copy of the committed time axis (mean time of each stride)."""
        return self._times[: self._len].copy()

    def values(self, signal: str) -> np.ndarray:
        """Copy of one signal's committed ``(rows, n_samples)`` block."""
        return self._data[signal][: self._len].T.copy()

    def series(self, signal: str, row: int = 0) -> TimeSeries:
        """One row of one signal as an analysis-layer :class:`TimeSeries`."""
        rows = self.signals[signal]
        if not 0 <= row < rows:
            raise ValueError(f"signal {signal!r} has rows 0..{rows - 1}, not {row}")
        return TimeSeries(
            self._times[: self._len].copy(),
            self._data[signal][: self._len, row].copy(),
        )

    # ------------------------------------------------------------------
    # Snapshot protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        return {
            "version": SERIES_STATE_VERSION,
            "capacity": self.capacity,
            "signals": dict(self.signals),
            "len": self._len,
            "stride": self._stride,
            "acc_n": self._acc_n,
            "acc_t": self._acc_t,
            "frames_seen": self.frames_seen,
            "times": pack_floats(self._times[: self._len]),
            "data": {
                name: pack_floats(self._data[name][: self._len].T.ravel())
                for name in sorted(self.signals)
            },
            "acc": {
                name: pack_floats(self._acc[name]) for name in sorted(self.signals)
            },
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        check_version("series recorder", state, SERIES_STATE_VERSION)
        signals = {str(k): int(v) for k, v in state["signals"].items()}
        if signals != self.signals or int(state["capacity"]) != self.capacity:
            raise StateError(
                "series recorder: state was captured with a different "
                f"layout (signals {signals}, capacity {state['capacity']}) "
                f"than this recorder ({self.signals}, {self.capacity})"
            )
        length = int(state["len"])
        if not 0 <= length < self.capacity:
            raise StateError(f"series recorder: invalid sample count {length}")
        times = np.asarray(unpack_floats(state["times"]), dtype=np.float64)
        if times.size != length:
            raise StateError("series recorder: time axis length mismatch")
        self._len = length
        self._stride = int(state["stride"])
        self._acc_n = int(state["acc_n"])
        self._acc_t = float(state["acc_t"])
        self.frames_seen = int(state.get("frames_seen", 0))
        self._times[:] = 0.0
        self._times[:length] = times
        for name, rows in self.signals.items():
            block = np.asarray(unpack_floats(state["data"][name]), dtype=np.float64)
            if block.size != rows * length:
                raise StateError(
                    f"series recorder: signal {name!r} block length mismatch"
                )
            self._data[name][:] = 0.0
            self._data[name][:length] = block.reshape(rows, length).T
            acc = np.asarray(unpack_floats(state["acc"][name]), dtype=np.float64)
            if acc.size != rows:
                raise StateError(
                    f"series recorder: signal {name!r} accumulator mismatch"
                )
            self._acc[name][:] = acc


def fleet_median(recorder: SeriesRecorder, signal: str) -> TimeSeries:
    """The across-rows median of one signal, as a series.

    For per-pod signals this is the fleet-median timeline the observe
    dashboard plots; for 1-row signals it degenerates to the signal
    itself.
    """
    values = recorder.values(signal)
    return TimeSeries(recorder.times(), np.median(values, axis=0))


def final_values(recorder: SeriesRecorder, signal: str) -> np.ndarray:
    """Each row's latest committed value (for end-of-run anomaly scans)."""
    if recorder.n_samples == 0:
        return np.zeros(recorder.rows(signal), dtype=np.float64)
    return recorder.values(signal)[:, -1].copy()


__all__ = [
    "DEFAULT_CAPACITY",
    "SERIES_STATE_VERSION",
    "SeriesRecorder",
    "final_values",
    "fleet_median",
]
