"""Enclosure substrate: the tent, the prototype's plastic boxes, the basement.

The paper's tent is modelled as a single thermal mass exchanging heat with
the outside air (:mod:`repro.thermal.heatbalance`), heated by the installed
IT load and by sunlight, and ventilated at a rate set by the envelope
configuration.  The four modification events the paper marks under Fig. 3 --
R (reflective foil), I (inner tent removed), B (bottom tarpaulin partially
removed), F (desk fan installed) -- each change the envelope parameters.

The control group's basement is a trivially stable enclosure; the prototype
weekend's plastic boxes are a nearly transparent one ("did not really impede
air flow or contain any heat").
"""

from repro.thermal.enclosure import (
    BasementMachineRoom,
    Enclosure,
    OutdoorAmbient,
    PlasticBoxShelter,
)
from repro.thermal.heatbalance import LumpedThermalNode, MoistureNode
from repro.thermal.tent import Modification, Tent, TentEnvelope

__all__ = [
    "Enclosure",
    "BasementMachineRoom",
    "PlasticBoxShelter",
    "OutdoorAmbient",
    "LumpedThermalNode",
    "MoistureNode",
    "Tent",
    "TentEnvelope",
    "Modification",
]
