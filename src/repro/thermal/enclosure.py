"""Enclosures: where a host's intake air comes from.

Every host draws intake air from exactly one :class:`Enclosure`.  The
experiment advances each enclosure along simulated time; hosts then read
``intake_temp_c`` / ``intake_rh_percent`` when they need their thermal state.

Concrete enclosures:

- :class:`OutdoorAmbient` -- bare outside air (reference),
- :class:`PlasticBoxShelter` -- the prototype weekend's two plastic boxes,
  which "did not really impede air flow or contain any heat",
- :class:`BasementMachineRoom` -- the control group's shelter basement with
  stable office-type air conditioning,
- :class:`repro.thermal.tent.Tent` -- the real subject of the paper.
"""

from __future__ import annotations

import abc
import math
from typing import Any, Dict, Optional

from repro.climate.generator import WeatherGenerator
from repro.sim.clock import DAY
from repro.state.protocol import check_version
from repro.thermal.heatbalance import LumpedThermalNode, MoistureNode

_STATE_VERSION = 1


class Enclosure(abc.ABC):
    """Base class: a source of intake air for hosts.

    Subclasses maintain ``intake_temp_c`` and ``intake_rh_percent`` and
    update them in :meth:`advance`.  ``it_load_w`` is the total electrical
    power currently dissipated inside the enclosure; the fleet updates it
    whenever hosts start, stop, or change load.
    """

    #: Fraction of falling precipitation the enclosure keeps off the
    #: hardware (1.0 = fully shielded, 0.0 = bare sky).
    precipitation_protection: float = 1.0

    def __init__(self, name: str, weather: WeatherGenerator) -> None:
        self.name = name
        self.weather = weather
        self.it_load_w = 0.0
        #: DVFS/server-fan power scale commanded by the control plane's
        #: actuator bus (which also persists it); 1.0 = rated draw.
        self.it_load_scale = 1.0
        self.intake_temp_c = 0.0
        self.intake_rh_percent = 50.0
        #: Water reaching the equipment right now (mm/h).
        self.intake_precip_mm_h = 0.0
        self._last_time: Optional[float] = None

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.name!r}, intake={self.intake_temp_c:.1f}degC, "
            f"RH={self.intake_rh_percent:.0f}%, load={self.it_load_w:.0f}W)"
        )

    def set_it_load(self, watts: float) -> None:
        """Update the dissipated IT load (W)."""
        if watts < 0:
            raise ValueError("IT load cannot be negative")
        # Guarded multiply: the untouched default must stay IEEE
        # byte-identical to the pre-DVFS load path.
        if self.it_load_scale != 1.0:
            watts *= self.it_load_scale
        self.it_load_w = watts

    def advance(self, time: float) -> None:
        """Advance internal state to simulated ``time``.

        Time must be non-decreasing across calls.
        """
        if self._last_time is not None and time < self._last_time - 1e-9:
            raise ValueError(
                f"enclosure {self.name!r} advanced backwards: "
                f"{self._last_time:.1f} -> {time:.1f}"
            )
        dt = 0.0 if self._last_time is None else time - self._last_time
        self._update(time, dt)
        leak = 1.0 - self.precipitation_protection
        if leak > 0.0:
            self.intake_precip_mm_h = leak * float(self.weather.precipitation(time))
        else:
            self.intake_precip_mm_h = 0.0
        self._last_time = time

    @abc.abstractmethod
    def _update(self, time: float, dt_s: float) -> None:
        """Subclass hook: recompute intake conditions at ``time``."""

    # ------------------------------------------------------------------
    # Snapshot protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Intake conditions plus whatever the subclass integrates."""
        return {
            "version": _STATE_VERSION,
            "it_load_w": self.it_load_w,
            "intake_temp_c": self.intake_temp_c,
            "intake_rh_percent": self.intake_rh_percent,
            "intake_precip_mm_h": self.intake_precip_mm_h,
            "last_time": self._last_time,
            "extra": self._extra_state(),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        check_version(f"enclosure.{self.name}", state, _STATE_VERSION)
        self.it_load_w = float(state["it_load_w"])
        self.intake_temp_c = float(state["intake_temp_c"])
        self.intake_rh_percent = float(state["intake_rh_percent"])
        self.intake_precip_mm_h = float(state["intake_precip_mm_h"])
        self._last_time = (
            None if state["last_time"] is None else float(state["last_time"])
        )
        self._load_extra_state(state["extra"])

    def _extra_state(self) -> Dict[str, Any]:
        """Subclass hook: integrator state beyond the intake conditions."""
        return {}

    def _load_extra_state(self, extra: Dict[str, Any]) -> None:
        """Subclass hook mirroring :meth:`_extra_state`."""


class OutdoorAmbient(Enclosure):
    """No enclosure at all: intake air is the outside air -- and so is
    the outside snow, which is why nobody runs servers like this."""

    precipitation_protection = 0.0

    def _update(self, time: float, dt_s: float) -> None:
        sample = self.weather.sample(time)
        self.intake_temp_c = sample.temp_c
        self.intake_rh_percent = sample.rh_percent


class PlasticBoxShelter(Enclosure):
    """The prototype's sandwich of two hard plastic boxes.

    A nearly transparent enclosure: large effective conductance, tiny
    thermal mass, a whisper of solar gain -- but it does its one job,
    keeping snow off the computer internals (a sliver blows in sideways).
    With one ~90 W PC inside, the steady-state excess over outside air is
    only one or two degrees, which is how the prototype's CPU could report
    -4 degC during a -9 degC weekend (case excess plus the CPU's own rise
    over intake).
    """

    precipitation_protection = 0.97

    def __init__(
        self,
        name: str,
        weather: WeatherGenerator,
        ua_w_per_k: float = 55.0,
        capacity_j_per_k: float = 9000.0,
        solar_aperture_m2: float = 0.15,
    ) -> None:
        super().__init__(name, weather)
        self.ua_w_per_k = ua_w_per_k
        self.solar_aperture_m2 = solar_aperture_m2
        first = weather.sample(weather.start_time)
        self._node = LumpedThermalNode(capacity_j_per_k, first.temp_c)
        self._moisture = MoistureNode(first.temp_c, first.rh_percent)
        self.intake_temp_c = first.temp_c
        self.intake_rh_percent = first.rh_percent

    def _update(self, time: float, dt_s: float) -> None:
        sample = self.weather.sample(time)
        solar_w = self.solar_aperture_m2 * sample.solar_wm2
        self._node.step(dt_s, self.it_load_w + solar_w, self.ua_w_per_k, sample.temp_c)
        # The boxes barely slow air exchange: ~40 air changes/hour.
        self._moisture.step(dt_s, 40.0, sample.temp_c, sample.rh_percent)
        self.intake_temp_c = self._node.temp_c
        self.intake_rh_percent = self._moisture.relative_humidity(self._node.temp_c)

    def _extra_state(self) -> Dict[str, Any]:
        return {
            "node_temp_c": self._node.temp_c,
            "vapor_g_m3": self._moisture.vapor_g_m3,
        }

    def _load_extra_state(self, extra: Dict[str, Any]) -> None:
        self._node.temp_c = float(extra["node_temp_c"])
        self._moisture.vapor_g_m3 = float(extra["vapor_g_m3"])


class BasementMachineRoom(Enclosure):
    """The control group's basement shelter with office-type conditioning.

    The paper: "the control group operates in a very sparsely furnished
    environment with stable, office-type air conditioning.  The operating
    conditions are therefore well within specifications."  The CRAC holds a
    setpoint regardless of the (small) IT load; only a faint diurnal wiggle
    remains.

    The chaos plane can take the CRAC away (:meth:`fail_crac`): the room
    then relaxes first-order toward outside air plus an approach offset;
    after :meth:`repair_crac` it relaxes back and snaps onto the setpoint
    curve.  While the CRAC is healthy the update stays the pure analytic
    setpoint expression, byte-identical to the historical model.
    """

    #: First-order time constant of the room's drift when the CRAC is out.
    CRAC_TAU_S = 3600.0
    #: Outside-air approach the unconditioned room settles toward.
    CRAC_OUTAGE_APPROACH_C = 16.0

    def __init__(
        self,
        name: str,
        weather: WeatherGenerator,
        setpoint_c: float = 21.0,
        setpoint_rh_percent: float = 32.0,
        diurnal_wiggle_c: float = 0.4,
        diurnal_wiggle_rh: float = 2.0,
    ) -> None:
        super().__init__(name, weather)
        self.setpoint_c = setpoint_c
        self.setpoint_rh_percent = setpoint_rh_percent
        self.diurnal_wiggle_c = diurnal_wiggle_c
        self.diurnal_wiggle_rh = diurnal_wiggle_rh
        self.intake_temp_c = setpoint_c
        self.intake_rh_percent = setpoint_rh_percent
        self._crac_failed = False
        self._crac_recovering = False

    def fail_crac(self, time: float) -> None:
        """The CRAC stops; the room starts drifting toward outside air."""
        self._crac_failed = True
        self._crac_recovering = False

    def repair_crac(self, time: float) -> None:
        """The CRAC returns; the room relaxes back to setpoint."""
        if self._crac_failed:
            self._crac_failed = False
            self._crac_recovering = True

    @property
    def crac_operational(self) -> bool:
        return not self._crac_failed

    def _update(self, time: float, dt_s: float) -> None:
        phase = 2.0 * math.pi * (time % DAY) / DAY
        setpoint = self.setpoint_c + self.diurnal_wiggle_c * math.sin(phase)
        if self._crac_failed or self._crac_recovering:
            if self._crac_failed:
                outside = self.weather.sample(time).temp_c
                target = outside + self.CRAC_OUTAGE_APPROACH_C
            else:
                target = setpoint
            blend = 1.0 - math.exp(-dt_s / self.CRAC_TAU_S) if dt_s > 0 else 0.0
            temp = self.intake_temp_c + blend * (target - self.intake_temp_c)
            if self._crac_recovering and abs(temp - setpoint) < 0.05:
                self._crac_recovering = False
                temp = setpoint
            self.intake_temp_c = temp
        else:
            self.intake_temp_c = setpoint
        self.intake_rh_percent = self.setpoint_rh_percent + self.diurnal_wiggle_rh * math.sin(
            phase + 1.0
        )

    def _extra_state(self) -> Dict[str, Any]:
        if not (self._crac_failed or self._crac_recovering):
            return {}
        return {"crac_failed": self._crac_failed, "crac_recovering": self._crac_recovering}

    def _load_extra_state(self, extra: Dict[str, Any]) -> None:
        self._crac_failed = bool(extra.get("crac_failed", False))
        self._crac_recovering = bool(extra.get("crac_recovering", False))
