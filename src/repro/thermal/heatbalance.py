"""First-order heat and moisture balances.

The tent (and the prototype's plastic boxes) are modelled as single
well-mixed nodes:

- :class:`LumpedThermalNode` integrates
  ``C dT/dt = Q_in - UA (T - T_ambient)`` with explicit Euler substeps,
- :class:`MoistureNode` relaxes the inside absolute humidity toward the
  outside value at the ventilation air-change rate.

Explicit Euler is adequate because the experiment advances enclosures once
a simulated minute while the node time constants are tens of minutes; the
integrator still guards against instability by substepping when
``dt > C / (2 UA)``.
"""

from __future__ import annotations

import math

from repro.climate.psychro import absolute_humidity, rh_from_absolute_humidity


class LumpedThermalNode:
    """A single thermal mass coupled to an ambient temperature.

    Parameters
    ----------
    capacity_j_per_k:
        Effective heat capacity (air plus the fraction of equipment and
        fabric mass that follows air temperature on the hour scale).
    initial_temp_c:
        Starting node temperature.
    """

    def __init__(self, capacity_j_per_k: float, initial_temp_c: float) -> None:
        if capacity_j_per_k <= 0:
            raise ValueError("thermal capacity must be positive")
        self.capacity = capacity_j_per_k
        self.temp_c = initial_temp_c

    def __repr__(self) -> str:
        return f"LumpedThermalNode(T={self.temp_c:.2f}degC, C={self.capacity:.0f}J/K)"

    def step(self, dt_s: float, heat_in_w: float, ua_w_per_k: float, ambient_c: float) -> float:
        """Advance ``dt_s`` seconds; return the new node temperature.

        ``heat_in_w`` is the net internal gain (IT load + solar); the
        conductance ``ua_w_per_k`` couples the node to ``ambient_c``.
        """
        if dt_s < 0:
            raise ValueError("dt must be non-negative")
        if ua_w_per_k < 0:
            raise ValueError("UA must be non-negative")
        if dt_s == 0:
            return self.temp_c
        # Substep for stability: explicit Euler needs dt < 2C/UA; use C/(2UA).
        if ua_w_per_k > 0:
            max_dt = self.capacity / (2.0 * ua_w_per_k)
            substeps = max(1, int(math.ceil(dt_s / max_dt)))
        else:
            substeps = 1
        h = dt_s / substeps
        t = self.temp_c
        for _ in range(substeps):
            dT = (heat_in_w - ua_w_per_k * (t - ambient_c)) * h / self.capacity
            t += dT
        self.temp_c = t
        return t

    def equilibrium(self, heat_in_w: float, ua_w_per_k: float, ambient_c: float) -> float:
        """Steady-state temperature for constant forcing (for tests/sizing)."""
        if ua_w_per_k <= 0:
            raise ValueError("equilibrium undefined for UA <= 0")
        return ambient_c + heat_in_w / ua_w_per_k

    def time_constant_s(self, ua_w_per_k: float) -> float:
        """First-order time constant ``C / UA`` in seconds."""
        if ua_w_per_k <= 0:
            raise ValueError("time constant undefined for UA <= 0")
        return self.capacity / ua_w_per_k


class MoistureNode:
    """Inside absolute humidity relaxing toward the outside value.

    Ventilation exchanges air, not just heat: the inside vapor density
    approaches the outside vapor density at the air-change rate.  The tent
    adds no moisture of its own (no occupants, sealed hardware), matching
    the paper's observation that inside RH is a *smoothed* copy of outside
    conditions re-expressed at the warmer inside temperature.
    """

    def __init__(self, initial_temp_c: float, initial_rh_percent: float) -> None:
        self.vapor_g_m3 = float(absolute_humidity(initial_temp_c, initial_rh_percent))

    def __repr__(self) -> str:
        return f"MoistureNode(vapor={self.vapor_g_m3:.2f} g/m^3)"

    def step(
        self,
        dt_s: float,
        air_changes_per_hour: float,
        outside_temp_c: float,
        outside_rh_percent: float,
    ) -> float:
        """Advance ``dt_s`` seconds; return the inside vapor density (g/m^3)."""
        if dt_s < 0:
            raise ValueError("dt must be non-negative")
        if air_changes_per_hour < 0:
            raise ValueError("air-change rate must be non-negative")
        target = float(absolute_humidity(outside_temp_c, outside_rh_percent))
        rate = air_changes_per_hour / 3600.0
        # Exact solution of the linear relaxation over the step.
        decay = math.exp(-rate * dt_s)
        self.vapor_g_m3 = target + (self.vapor_g_m3 - target) * decay
        return self.vapor_g_m3

    def relative_humidity(self, inside_temp_c: float) -> float:
        """Inside RH (%) given the current vapor content and temperature."""
        return float(rh_from_absolute_humidity(inside_temp_c, self.vapor_g_m3))
