"""The tent: a three-person camping tent sheltering nine computers.

The paper (Section 3.2) describes a tube-shaped, double-layered polyester
tent that turned out to be "surprisingly good at retaining heat", forcing a
series of modifications, marked in Fig. 3 as

- ``R`` -- partial reflective foil cover (rescue-sheet material) cutting
  solar gain,
- ``I`` -- the inner tent fabric cut open and removed,
- ``B`` -- the protective bottom tarpaulin partially removed, letting cool
  air circulate up through the elevated terrace floor,
- ``F`` -- a standard tabletop motorised fan installed,

plus leaving the outer front door half-open.  Each modification raises the
effective envelope conductance and ventilation rate; the foil lowers solar
gain.  The four factors the paper lists for inside temperature -- outside
air, sun and wind, equipment power, and flap configuration -- are exactly
the terms of the heat balance here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.climate.generator import WeatherGenerator
from repro.thermal.enclosure import Enclosure
from repro.thermal.heatbalance import LumpedThermalNode, MoistureNode


class Modification(enum.Enum):
    """The heat-shedding interventions marked beneath the paper's Fig. 3."""

    REFLECTIVE_FOIL = "R"
    INNER_TENT_REMOVED = "I"
    BOTTOM_TARP_REMOVED = "B"
    FAN_INSTALLED = "F"
    DOOR_HALF_OPEN = "D"  # mentioned in the text, not lettered in Fig. 3

    @property
    def letter(self) -> str:
        """The single-letter code used under Fig. 3."""
        return self.value


@dataclass(frozen=True)
class TentEnvelope:
    """Envelope configuration and the thermal parameters it implies.

    The baseline tent is nearly sealed: a small conductance dominated by
    fabric conduction, little ventilation, and the full solar cross-section
    of dark fabric.  Modifications multiply conductance and ventilation and
    scale solar absorption.
    """

    reflective_foil: bool = False
    inner_tent_removed: bool = False
    bottom_tarp_removed: bool = False
    fan_installed: bool = False
    door_half_open: bool = False

    #: Sealed-tent envelope conductance, W/K.  Calibrated so that three
    #: freshly installed vendor-A hosts (~255 W) keep the sealed tent about
    #: ten degrees above outside air -- warm enough to alarm the operators,
    #: cold enough that the -22 degC episode still drives tent CPUs below
    #: the -4 degC the paper's lm-sensors logged.
    base_ua_w_per_k: float = 20.0
    #: Wind multiplier: UA grows (1 + coefficient * wind m/s).
    wind_ua_coefficient: float = 0.10
    #: Effective solar aperture of the fabric, m^2.
    solar_aperture_m2: float = 1.2
    #: Fabric absorptivity without foil.
    solar_absorptivity: float = 0.65
    #: Fraction of solar gain remaining under the partial foil cover.
    foil_transmission: float = 0.35
    #: Sealed-tent ventilation, air changes per hour.
    base_ach: float = 2.5

    _UA_FACTORS: Tuple[Tuple[str, float], ...] = (
        ("inner_tent_removed", 1.9),
        ("bottom_tarp_removed", 1.8),
        ("fan_installed", 1.5),
        ("door_half_open", 1.35),
    )
    _ACH_FACTORS: Tuple[Tuple[str, float], ...] = (
        ("inner_tent_removed", 2.0),
        ("bottom_tarp_removed", 2.5),
        ("fan_installed", 3.0),
        ("door_half_open", 1.8),
    )

    def with_modification(self, mod: Modification) -> "TentEnvelope":
        """A copy with one modification applied (idempotent)."""
        flag = {
            Modification.REFLECTIVE_FOIL: "reflective_foil",
            Modification.INNER_TENT_REMOVED: "inner_tent_removed",
            Modification.BOTTOM_TARP_REMOVED: "bottom_tarp_removed",
            Modification.FAN_INSTALLED: "fan_installed",
            Modification.DOOR_HALF_OPEN: "door_half_open",
        }[mod]
        return replace(self, **{flag: True})

    def ua_w_per_k(self, wind_ms: float) -> float:
        """Envelope conductance at the given wind speed."""
        ua = self.base_ua_w_per_k
        for flag, factor in self._UA_FACTORS:
            if getattr(self, flag):
                ua *= factor
        return ua * (1.0 + self.wind_ua_coefficient * max(0.0, wind_ms))

    def air_changes_per_hour(self, wind_ms: float) -> float:
        """Ventilation rate at the given wind speed."""
        ach = self.base_ach
        for flag, factor in self._ACH_FACTORS:
            if getattr(self, flag):
                ach *= factor
        return ach * (1.0 + 0.15 * max(0.0, wind_ms))

    def solar_gain_w(self, irradiance_wm2: float) -> float:
        """Heat input from sunlight on the fabric."""
        gain = self.solar_aperture_m2 * self.solar_absorptivity * max(0.0, irradiance_wm2)
        if self.reflective_foil:
            gain *= self.foil_transmission
        return gain

    def active_modifications(self) -> List[Modification]:
        """Modifications currently applied, in Fig. 3 letter order."""
        order = (
            (Modification.REFLECTIVE_FOIL, self.reflective_foil),
            (Modification.INNER_TENT_REMOVED, self.inner_tent_removed),
            (Modification.BOTTOM_TARP_REMOVED, self.bottom_tarp_removed),
            (Modification.FAN_INSTALLED, self.fan_installed),
            (Modification.DOOR_HALF_OPEN, self.door_half_open),
        )
        return [mod for mod, active in order if active]


class ModifiableEnvelopeMixin:
    """Shared modification bookkeeping for tent-like enclosures.

    Both the campaign's single-node :class:`Tent` and the fidelity-check
    :class:`~repro.thermal.twonode.TwoNodeTent` carry a
    :class:`TentEnvelope` and receive the same R/I/B/F interventions; the
    mixin provides the apply/log machinery so either can serve as the
    experiment's tent.
    """

    envelope: TentEnvelope

    def _init_modifications(self) -> None:
        #: ``(time, Modification)`` log of applied interventions.
        self.modification_log: List[Tuple[float, Modification]] = []
        #: Plant-fault airflow multipliers (chaos plane): a dead blower
        #: or blocked intake scales conductance/ventilation below 1.0,
        #: the emergency flap above it.  1.0 = healthy plant; the update
        #: loops skip the multiply entirely then, so an unconfigured
        #: plant leaves the thermal trace byte-identical.
        self.plant_ua_factor: float = 1.0
        self.plant_ach_factor: float = 1.0

    def set_plant_airflow(self, ua_factor: float, ach_factor: float) -> None:
        """Set the chaos plane's airflow degradation (1.0/1.0 = healthy)."""
        if ua_factor <= 0.0 or ach_factor <= 0.0:
            raise ValueError("airflow factors must be positive")
        self.plant_ua_factor = float(ua_factor)
        self.plant_ach_factor = float(ach_factor)

    def apply_modification(self, mod: Modification, time: float) -> None:
        """Apply one intervention (the paper's R/I/B/F events) at ``time``."""
        self.envelope = self.envelope.with_modification(mod)
        self.modification_log.append((time, mod))

    def modification_times(self) -> Dict[str, float]:
        """Map of Fig. 3 letter -> first application time."""
        times: Dict[str, float] = {}
        for time, mod in self.modification_log:
            times.setdefault(mod.letter, time)
        return times

    # ------------------------------------------------------------------
    # Snapshot support shared by both tent models
    # ------------------------------------------------------------------
    def _envelope_state(self) -> Dict[str, Any]:
        """The mutable part of the envelope (the five flags) plus the log.

        The thermal parameters are construction-fixed; restore re-applies
        the flags onto the reconstructed envelope with ``replace``.
        """
        return {
            "flags": {
                "reflective_foil": self.envelope.reflective_foil,
                "inner_tent_removed": self.envelope.inner_tent_removed,
                "bottom_tarp_removed": self.envelope.bottom_tarp_removed,
                "fan_installed": self.envelope.fan_installed,
                "door_half_open": self.envelope.door_half_open,
            },
            "log": [[time, mod.value] for time, mod in self.modification_log],
            "plant": [self.plant_ua_factor, self.plant_ach_factor],
        }

    def _load_envelope_state(self, state: Dict[str, Any]) -> None:
        self.envelope = replace(
            self.envelope, **{k: bool(v) for k, v in state["flags"].items()}
        )
        self.modification_log = [
            (float(time), Modification(letter)) for time, letter in state["log"]
        ]
        plant = state.get("plant", [1.0, 1.0])
        self.plant_ua_factor = float(plant[0])
        self.plant_ach_factor = float(plant[1])


class Tent(ModifiableEnvelopeMixin, Enclosure):
    """The roof-terrace tent as a heat-and-moisture balance.

    Parameters
    ----------
    name:
        Enclosure label (e.g. ``"tent"``).
    weather:
        The synthetic atmosphere.
    envelope:
        Initial configuration (default: factory-fresh sealed tent).
    capacity_j_per_k:
        Effective thermal mass (air volume plus fast-coupled equipment and
        fabric mass).
    """

    def __init__(
        self,
        name: str,
        weather: WeatherGenerator,
        envelope: Optional[TentEnvelope] = None,
        capacity_j_per_k: float = 90_000.0,
    ) -> None:
        super().__init__(name, weather)
        self.envelope = envelope if envelope is not None else TentEnvelope()
        first = weather.sample(weather.start_time)
        self._node = LumpedThermalNode(capacity_j_per_k, first.temp_c)
        self._moisture = MoistureNode(first.temp_c, first.rh_percent)
        self.intake_temp_c = first.temp_c
        self.intake_rh_percent = first.rh_percent
        self._init_modifications()

    # ------------------------------------------------------------------
    def _update(self, time: float, dt_s: float) -> None:
        sample = self.weather.sample(time)
        ua = self.envelope.ua_w_per_k(sample.wind_ms)
        if self.plant_ua_factor != 1.0:
            ua *= self.plant_ua_factor
        heat_in = self.it_load_w + self.envelope.solar_gain_w(sample.solar_wm2)
        self._node.step(dt_s, heat_in, ua, sample.temp_c)
        ach = self.envelope.air_changes_per_hour(sample.wind_ms)
        if self.plant_ach_factor != 1.0:
            ach *= self.plant_ach_factor
        self._moisture.step(dt_s, ach, sample.temp_c, sample.rh_percent)
        self.intake_temp_c = self._node.temp_c
        self.intake_rh_percent = self._moisture.relative_humidity(self._node.temp_c)

    # ------------------------------------------------------------------
    # Snapshot protocol (extends the Enclosure base state)
    # ------------------------------------------------------------------
    def _extra_state(self) -> Dict[str, Any]:
        return {
            "node_temp_c": self._node.temp_c,
            "vapor_g_m3": self._moisture.vapor_g_m3,
            "envelope": self._envelope_state(),
        }

    def _load_extra_state(self, extra: Dict[str, Any]) -> None:
        self._node.temp_c = float(extra["node_temp_c"])
        self._moisture.vapor_g_m3 = float(extra["vapor_g_m3"])
        self._load_envelope_state(extra["envelope"])

    # ------------------------------------------------------------------
    # Introspection used by tests and the ablation benchmarks
    # ------------------------------------------------------------------
    def steady_state_excess_c(self, wind_ms: float, irradiance_wm2: float = 0.0) -> float:
        """Equilibrium inside-minus-outside temperature for current forcing."""
        ua = self.envelope.ua_w_per_k(wind_ms)
        heat_in = self.it_load_w + self.envelope.solar_gain_w(irradiance_wm2)
        return heat_in / ua
