"""A two-node tent: the fidelity check for DESIGN.md decision 1.

The campaign model treats the tent as a *single* thermal mass.  Physically
the tent is at least two: the air (tiny capacity, directly ventilated)
and the "mass" -- equipment chassis and fabric -- that stores most of the
heat and talks to the air through a film conductance.  This module
implements that richer model::

    C_a dT_a/dt = q_air + h (T_m - T_a) - UA (T_a - T_out)
    C_m dT_m/dt = q_mass - h (T_m - T_a)

so the A4 ablation can show the two models share steady states exactly
and differ only in sub-hour transients -- below the resolution of the
paper's figures, which is what justifies the simpler node.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

from repro.climate.generator import WeatherGenerator
from repro.thermal.enclosure import Enclosure
from repro.thermal.heatbalance import MoistureNode
from repro.thermal.tent import ModifiableEnvelopeMixin, TentEnvelope


class TwoNodeTent(ModifiableEnvelopeMixin, Enclosure):
    """Air + equipment-mass tent model sharing :class:`TentEnvelope`.

    Parameters
    ----------
    name / weather / envelope:
        As for :class:`repro.thermal.tent.Tent`.
    air_capacity_j_per_k:
        The tent's air volume (~15 m^3 of air ~ 18 kJ/K, padded for the
        boundary layer).
    mass_capacity_j_per_k:
        Chassis and fabric mass that follows the air on the hour scale.
    coupling_w_per_k:
        Film conductance between mass and air.
    mass_heat_fraction:
        Share of the IT load dissipated into the mass node (heat leaves
        hosts through their chassis before it reaches tent air).
    """

    def __init__(
        self,
        name: str,
        weather: WeatherGenerator,
        envelope: Optional[TentEnvelope] = None,
        air_capacity_j_per_k: float = 22_000.0,
        mass_capacity_j_per_k: float = 140_000.0,
        coupling_w_per_k: float = 65.0,
        mass_heat_fraction: float = 0.6,
    ) -> None:
        if not 0.0 <= mass_heat_fraction <= 1.0:
            raise ValueError("mass_heat_fraction must be in [0, 1]")
        if min(air_capacity_j_per_k, mass_capacity_j_per_k, coupling_w_per_k) <= 0:
            raise ValueError("capacities and coupling must be positive")
        super().__init__(name, weather)
        self.envelope = envelope if envelope is not None else TentEnvelope()
        self.air_capacity = air_capacity_j_per_k
        self.mass_capacity = mass_capacity_j_per_k
        self.coupling = coupling_w_per_k
        self.mass_heat_fraction = mass_heat_fraction
        first = weather.sample(weather.start_time)
        self.air_temp_c = first.temp_c
        self.mass_temp_c = first.temp_c
        self._moisture = MoistureNode(first.temp_c, first.rh_percent)
        self.intake_temp_c = first.temp_c
        self.intake_rh_percent = first.rh_percent
        self._init_modifications()

    def __repr__(self) -> str:
        return (
            f"TwoNodeTent({self.name!r}, air={self.air_temp_c:.1f}degC, "
            f"mass={self.mass_temp_c:.1f}degC)"
        )

    # ------------------------------------------------------------------
    def _update(self, time: float, dt_s: float) -> None:
        sample = self.weather.sample(time)
        ua = self.envelope.ua_w_per_k(sample.wind_ms)
        if self.plant_ua_factor != 1.0:
            ua *= self.plant_ua_factor
        solar = self.envelope.solar_gain_w(sample.solar_wm2)
        q_mass = self.mass_heat_fraction * self.it_load_w + solar
        q_air = (1.0 - self.mass_heat_fraction) * self.it_load_w

        if dt_s > 0:
            # Explicit Euler stability: the air node is the stiff one.
            max_dt = min(
                self.air_capacity / (2.0 * (self.coupling + ua)),
                self.mass_capacity / (2.0 * self.coupling),
            )
            substeps = max(1, int(math.ceil(dt_s / max_dt)))
            h = dt_s / substeps
            t_a, t_m = self.air_temp_c, self.mass_temp_c
            for _ in range(substeps):
                flow_me = self.coupling * (t_m - t_a)
                d_a = (q_air + flow_me - ua * (t_a - sample.temp_c)) * h / self.air_capacity
                d_m = (q_mass - flow_me) * h / self.mass_capacity
                t_a += d_a
                t_m += d_m
            self.air_temp_c, self.mass_temp_c = t_a, t_m

        ach = self.envelope.air_changes_per_hour(sample.wind_ms)
        if self.plant_ach_factor != 1.0:
            ach *= self.plant_ach_factor
        self._moisture.step(dt_s, ach, sample.temp_c, sample.rh_percent)
        self.intake_temp_c = self.air_temp_c
        self.intake_rh_percent = self._moisture.relative_humidity(self.air_temp_c)

    # ------------------------------------------------------------------
    # Snapshot protocol (extends the Enclosure base state)
    # ------------------------------------------------------------------
    def _extra_state(self) -> Dict[str, Any]:
        return {
            "air_temp_c": self.air_temp_c,
            "mass_temp_c": self.mass_temp_c,
            "vapor_g_m3": self._moisture.vapor_g_m3,
            "envelope": self._envelope_state(),
        }

    def _load_extra_state(self, extra: Dict[str, Any]) -> None:
        self.air_temp_c = float(extra["air_temp_c"])
        self.mass_temp_c = float(extra["mass_temp_c"])
        self._moisture.vapor_g_m3 = float(extra["vapor_g_m3"])
        self._load_envelope_state(extra["envelope"])

    # ------------------------------------------------------------------
    def steady_state_air_excess_c(self, wind_ms: float, irradiance_wm2: float = 0.0) -> float:
        """Equilibrium air excess: identical to the single-node value.

        At steady state every watt entering the mass flows on into the
        air and out through the envelope, so ``(q_air + q_mass) / UA`` --
        the same expression the single node uses.  This identity is the
        core of the A4 ablation.
        """
        ua = self.envelope.ua_w_per_k(wind_ms)
        total = self.it_load_w + self.envelope.solar_gain_w(irradiance_wm2)
        return total / ua

    def steady_state_mass_excess_c(self, wind_ms: float, irradiance_wm2: float = 0.0) -> float:
        """Equilibrium mass excess over *outside*: air excess plus the
        film drop needed to push the mass's own heat into the air."""
        solar = self.envelope.solar_gain_w(irradiance_wm2)
        q_mass = self.mass_heat_fraction * self.it_load_w + solar
        return self.steady_state_air_excess_c(wind_ms, irradiance_wm2) + q_mass / self.coupling
