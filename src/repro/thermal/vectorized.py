"""Vectorized tent thermal bank for fleet-scale cohorts.

The paper ran one tent.  A scaled cohort (``repro run --hosts N``) runs
many replicas of that tent -- one per 19-host pod -- and stepping each
replica through its own :class:`~repro.thermal.twonode.TwoNodeTent`
object would put thousands of Python enclosures back on the hot path the
columnar refactor just cleared.  :class:`TwoNodeTentBank` instead holds
the air and thermal-mass temperatures of *P* tent replicas as two numpy
vectors and advances all of them with the same explicit-Euler substep
scheme as :meth:`TwoNodeTent._update`.

Two properties make the vectorization cheap and faithful:

- Every replica shares one :class:`~repro.thermal.tent.TentEnvelope`
  (the campaign applies the paper's R/I/B/F/door modifications fleet
  wide), so ``ua``, ``ach``, solar gain, and the stability-bound substep
  count are *scalars* computed once per tick.
- Only the IT load differs per pod (pods lose hosts to failures at
  different times), so the inner loop is pure ``P``-wide vector
  arithmetic: two fused multiply-adds per substep.

The bank deliberately omits the per-tent moisture node: fleet-scale
monitoring aggregates temperatures and failure counts, not logger RH
traces.  The 19-host paper configuration never uses this class -- it
keeps the byte-identical per-object enclosures.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.thermal.tent import Modification, TentEnvelope


class TwoNodeTentBank:
    """Air/mass temperature state for ``n_tents`` identical tent replicas.

    Parameters mirror :class:`~repro.thermal.twonode.TwoNodeTent` so the
    single-tent defaults (22 kJ/K air, 140 kJ/K mass, 65 W/K coupling,
    60 % of IT heat into the mass node) carry over unchanged.
    """

    def __init__(
        self,
        n_tents: int,
        initial_temp_c: float,
        envelope: Optional[TentEnvelope] = None,
        air_capacity_j_per_k: float = 22_000.0,
        mass_capacity_j_per_k: float = 140_000.0,
        coupling_w_per_k: float = 65.0,
        mass_heat_fraction: float = 0.6,
    ) -> None:
        if n_tents <= 0:
            raise ValueError("need at least one tent replica")
        if air_capacity_j_per_k <= 0 or mass_capacity_j_per_k <= 0 or coupling_w_per_k <= 0:
            raise ValueError("capacities and coupling must be positive")
        if not 0.0 <= mass_heat_fraction <= 1.0:
            raise ValueError("mass heat fraction must be in [0, 1]")
        self.n_tents = int(n_tents)
        self.envelope = envelope if envelope is not None else TentEnvelope()
        self.air_capacity = float(air_capacity_j_per_k)
        self.mass_capacity = float(mass_capacity_j_per_k)
        self.coupling = float(coupling_w_per_k)
        self.mass_heat_fraction = float(mass_heat_fraction)
        self.air_temp_c = np.full(self.n_tents, float(initial_temp_c), dtype=np.float64)
        self.mass_temp_c = np.full(self.n_tents, float(initial_temp_c), dtype=np.float64)

    def __repr__(self) -> str:
        return (
            f"TwoNodeTentBank(n={self.n_tents}, "
            f"air_mean={float(self.air_temp_c.mean()):.1f}degC)"
        )

    # ------------------------------------------------------------------
    def apply_modification(self, modification: Modification) -> None:
        """Apply one envelope intervention fleet-wide (all replicas)."""
        self.envelope = self.envelope.with_modification(modification)

    # ------------------------------------------------------------------
    def step(
        self,
        dt_s: float,
        it_load_w: np.ndarray,
        outside_temp_c: float,
        wind_ms: float,
        solar_wm2: float,
        ua_factor: Optional[np.ndarray] = None,
    ) -> None:
        """Advance every replica by ``dt_s`` under shared weather.

        ``it_load_w`` is the per-tent IT dissipation vector (watts,
        shape ``(n_tents,)``); weather inputs are the scalars of the one
        shared :class:`~repro.climate.generator.WeatherSample`.

        ``ua_factor``, when given, is a per-tent multiplier on the
        envelope conductance (the chaos plane's degraded-airflow /
        emergency-flap vector).  ``None`` keeps the historical all-scalar
        fast path byte-identical.
        """
        if dt_s < 0:
            raise ValueError("dt cannot be negative")
        if dt_s == 0:
            return
        ua = self.envelope.ua_w_per_k(wind_ms)
        ua_max = ua
        if ua_factor is not None:
            ua = ua * np.asarray(ua_factor, dtype=np.float64)
            ua_max = float(ua.max())
        solar = self.envelope.solar_gain_w(solar_wm2)
        q_mass = self.mass_heat_fraction * it_load_w + solar
        q_air = (1.0 - self.mass_heat_fraction) * it_load_w

        # Same explicit-Euler stability bound as TwoNodeTent._update; the
        # substep count is one scalar for the bank, sized for the
        # stiffest (largest effective ua) replica.
        max_dt = min(
            self.air_capacity / (2.0 * (self.coupling + ua_max)),
            self.mass_capacity / (2.0 * self.coupling),
        )
        substeps = max(1, int(math.ceil(dt_s / max_dt)))
        h = dt_s / substeps
        t_a = self.air_temp_c
        t_m = self.mass_temp_c
        k_air = h / self.air_capacity
        k_mass = h / self.mass_capacity
        for _ in range(substeps):
            flow_me = self.coupling * (t_m - t_a)
            d_a = (q_air + flow_me - ua * (t_a - outside_temp_c)) * k_air
            d_m = (q_mass - flow_me) * k_mass
            t_a += d_a
            t_m += d_m

    # ------------------------------------------------------------------
    @property
    def intake_temp_c(self) -> np.ndarray:
        """Per-tent intake air temperature (hosts breathe the air node)."""
        return self.air_temp_c
