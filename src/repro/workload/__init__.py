"""The synthetic load of Section 3.5.

Every host packs a Linux kernel source directory with ``tar`` and ``bzip2``
every 10 minutes, verifies the tarball's ``md5sum`` against a reference
computed before installation, and stores the tarball if the hashes differ.
A 0-119 second start fuzz de-synchronises the fleet.

The reproduction models the pipeline at the level the paper's analysis
needs: page operations through the memory bank (where bit flips originate),
a 396-block bzip2 archive structure (so a single flip corrupts exactly one
block, recoverable by ``bzip2recover``-style triage), and digest
verification that fails precisely when at least one block is corrupted.
"""

from repro.workload.archiver import ArchiverProcess, CycleResult, WorkloadLedger
from repro.workload.bzip2 import Archive, Bzip2Model, bzip2recover
from repro.workload.digest import block_digest, reference_digest, verify_archive
from repro.workload.kernel_tree import KernelSourceTree
from repro.workload.tar import FileCensus, census_for_tree, synthetic_kernel_census

__all__ = [
    "KernelSourceTree",
    "FileCensus",
    "census_for_tree",
    "synthetic_kernel_census",
    "Bzip2Model",
    "Archive",
    "bzip2recover",
    "block_digest",
    "reference_digest",
    "verify_archive",
    "ArchiverProcess",
    "CycleResult",
    "WorkloadLedger",
]
