"""The 10-minute archival loop each host executes.

Section 3.5, mechanised:

- every 10 minutes: ``tar`` + ``bzip2`` the kernel tree, ``md5sum`` the
  tarball, compare with the reference; a mismatch *stores* the tarball
  (for later ``bzip2recover`` inspection), a match overwrites it next
  cycle;
- a one-off start fuzz of 0-119 seconds de-synchronises hosts;
- the CPU is busy for the duration of the burst, idle otherwise (which is
  what modulates host power and CPU temperature between polls).

Results accumulate in a :class:`WorkloadLedger`: total run counts per host
and a full record of every wrong hash -- the paper's "5 out of a total of
27627 test runs" census.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.hardware.faults import FaultEvent, FaultKind, FaultLog
from repro.hardware.host import Host
from repro.sim.clock import MINUTE
from repro.sim.engine import EventHandle, Simulator
from repro.sim.events import EventBus, WrongHash
from repro.state.protocol import check_version
from repro.workload.bzip2 import Archive, Bzip2Model
from repro.workload.digest import verify_archive
from repro.workload.kernel_tree import KernelSourceTree

_STATE_VERSION = 1

#: The paper's cycle period: "Each host executes its synthetic load every
#: 10 minutes."
CYCLE_PERIOD_S = 10 * MINUTE
#: Start fuzz: "each host sleeps for 0 to 119 seconds".
START_FUZZ_MAX_S = 119


@dataclass(frozen=True)
class CycleResult:
    """Outcome of one archive-and-verify run."""

    time: float
    host_id: int
    hash_ok: bool
    corrupted_block_count: int
    stored: bool  # mismatching tarballs are kept for inspection

    def __post_init__(self) -> None:
        if self.hash_ok and self.corrupted_block_count:
            raise ValueError("a clean archive cannot have corrupted blocks")


class WorkloadLedger:
    """Fleet-wide census of synthetic-load runs.

    Stores per-host totals and every wrong-hash event (with its archive,
    so the analysis can run ``bzip2recover`` on "the most recent" as the
    paper did).  When built with a campaign event bus, each mismatch is
    published as a :class:`~repro.sim.events.WrongHash` event, which the
    subscribed fault log turns into the census entry.
    """

    def __init__(self, bus: Optional[EventBus] = None) -> None:
        self.runs_per_host: Dict[int, int] = {}
        self.wrong_per_host: Dict[int, int] = {}
        self.wrong_hash_results: List[CycleResult] = []
        self.stored_archives: List[Archive] = []
        self.bus = bus

    def __repr__(self) -> str:
        return f"WorkloadLedger(runs={self.total_runs}, wrong={self.total_wrong_hashes})"

    def record(self, result: CycleResult, archive: Optional[Archive] = None) -> None:
        """Account one cycle."""
        self.runs_per_host[result.host_id] = self.runs_per_host.get(result.host_id, 0) + 1
        if not result.hash_ok:
            self.wrong_per_host[result.host_id] = (
                self.wrong_per_host.get(result.host_id, 0) + 1
            )
            self.wrong_hash_results.append(result)
            if archive is not None:
                self.stored_archives.append(archive)
            if self.bus is not None:
                self.bus.publish(
                    WrongHash(
                        time=result.time,
                        host_id=result.host_id,
                        corrupted_blocks=result.corrupted_block_count,
                    )
                )

    @property
    def total_runs(self) -> int:
        """All synthetic-load runs across the fleet."""
        return sum(self.runs_per_host.values())

    @property
    def total_wrong_hashes(self) -> int:
        """Runs whose md5sum differed from the reference."""
        return sum(self.wrong_per_host.values())

    @property
    def wrong_hash_ratio(self) -> float:
        """Wrong hashes per run (0 when nothing ran)."""
        if self.total_runs == 0:
            return 0.0
        return self.total_wrong_hashes / self.total_runs

    def hosts_with_wrong_hashes(self) -> List[int]:
        """Host ids that reported at least one wrong hash, sorted."""
        return sorted(self.wrong_per_host)

    def most_recent_stored_archive(self) -> Optional[Archive]:
        """The archive the paper recovered ("the most recent")."""
        return self.stored_archives[-1] if self.stored_archives else None

    # ------------------------------------------------------------------
    # Snapshot protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        return {
            "version": _STATE_VERSION,
            "runs_per_host": {
                str(k): v for k, v in sorted(self.runs_per_host.items())
            },
            "wrong_per_host": {
                str(k): v for k, v in sorted(self.wrong_per_host.items())
            },
            "wrong_hash_results": [
                [r.time, r.host_id, r.hash_ok, r.corrupted_block_count, r.stored]
                for r in self.wrong_hash_results
            ],
            "stored_archives": [
                [a.host_id, a.time, a.block_count, sorted(a.corrupted_blocks)]
                for a in self.stored_archives
            ],
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        check_version("workload_ledger", state, _STATE_VERSION)
        self.runs_per_host = {int(k): int(v) for k, v in state["runs_per_host"].items()}
        self.wrong_per_host = {
            int(k): int(v) for k, v in state["wrong_per_host"].items()
        }
        self.wrong_hash_results = [
            CycleResult(
                time=float(t),
                host_id=int(h),
                hash_ok=bool(ok),
                corrupted_block_count=int(blocks),
                stored=bool(stored),
            )
            for t, h, ok, blocks, stored in state["wrong_hash_results"]
        ]
        self.stored_archives = [
            Archive(
                host_id=int(h),
                time=float(t),
                block_count=int(n),
                corrupted_blocks=frozenset(int(b) for b in blocks),
            )
            for h, t, n, blocks in state["stored_archives"]
        ]


class ArchiverProcess:
    """The synthetic-load loop on one host.

    The loop is an explicit two-phase state machine driven through the
    engine registry (key ``archiver.step.<host_id>``) so its position --
    which phase the host is in and when the current cycle started -- can
    be snapshotted and restored mid-cycle:

    - ``cycle-start``: the 10-minute mark.  A running host goes CPU-busy
      and sleeps ``burst_duration_s`` into the ``burst`` phase; a down
      host sleeps a whole cycle.
    - ``burst``: the tar+bzip2+md5sum burst just finished.  A still-running
      host completes the cycle (hash verify, census record); either way the
      CPU goes idle and the machine sleeps out the cycle remainder.

    Parameters
    ----------
    sim:
        The simulator.
    host:
        The host running the load.
    ledger:
        Fleet-wide census to report into.
    tree:
        Source tree (shared across the fleet; the department installed the
        same kernel snapshot everywhere).
    fault_log:
        Experiment fault log for wrong-hash events.
    burst_duration_s:
        How long one tar+bzip2+md5sum burst keeps the CPU busy.  Defaults
        to the vendor's compression throughput applied to the tree size
        (bzip2 is CPU-bound, so slower platforms stay busy longer).
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        ledger: WorkloadLedger,
        tree: Optional[KernelSourceTree] = None,
        fault_log: Optional[FaultLog] = None,
        burst_duration_s: Optional[float] = None,
    ) -> None:
        if burst_duration_s is None:
            size_mb = (tree if tree is not None else KernelSourceTree()).total_bytes / 1e6
            burst_duration_s = size_mb / host.spec.compress_mb_per_s
        if burst_duration_s <= 0 or burst_duration_s >= CYCLE_PERIOD_S:
            raise ValueError("burst must be positive and shorter than the cycle period")
        self.sim = sim
        self.host = host
        self.ledger = ledger
        self.tree = tree if tree is not None else KernelSourceTree()
        self.model = Bzip2Model(self.tree)
        self.fault_log = fault_log
        self.burst_duration_s = burst_duration_s
        self._rng = host._streams.stream("workload")
        self._key = f"archiver.step.{host.host_id}"
        self._label = f"archiver.{host.hostname}"
        self._phase = "cycle-start"
        self._cycle_start: Optional[float] = None
        self.alive = True
        self._pending: Optional[EventHandle] = None
        sim.register(self._key, self._step)
        # "some fuzz is added to the starting phase: each host sleeps for
        # 0 to 119 seconds before commencing the archival process."
        fuzz = float(self._rng.integers(0, START_FUZZ_MAX_S + 1))
        self._sleep(fuzz)

    def __repr__(self) -> str:
        return f"ArchiverProcess({self.host.hostname}, alive={self.alive})"

    def stop(self) -> None:
        """Terminate the loop (host retired or experiment over)."""
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        self.alive = False
        self.host.cpu.busy = False

    # ------------------------------------------------------------------
    def _sleep(self, delay_s: float) -> None:
        self._pending = self.sim.schedule_at_key(
            self.sim.now + delay_s, self._key, label=self._label
        )

    def _step(self) -> None:
        self._pending = None
        if not self.alive:
            return
        if self._phase == "cycle-start":
            self._cycle_start = self.sim.now
            if self.host.running:
                self.host.cpu.busy = True
                self._phase = "burst"
                self._sleep(self.burst_duration_s)
                return
            self._sleep(CYCLE_PERIOD_S)
            return
        # burst phase: the tar+bzip2+md5sum run just ended.  The burst may
        # have ended with the host failed mid-cycle; such a run produces no
        # result (the monitoring host simply finds no new md5sum).
        if self.host.running:
            self._complete_cycle(self.sim.now)
        self.host.cpu.busy = False
        remainder = CYCLE_PERIOD_S - (self.sim.now - self._cycle_start)
        self._phase = "cycle-start"
        self._sleep(max(0.0, remainder))

    # ------------------------------------------------------------------
    # Snapshot protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        return {
            "version": _STATE_VERSION,
            "phase": self._phase,
            "cycle_start": self._cycle_start,
            "alive": self.alive,
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        check_version("archiver", state, _STATE_VERSION)
        self._phase = state["phase"]
        self._cycle_start = (
            None if state["cycle_start"] is None else float(state["cycle_start"])
        )
        self.alive = bool(state["alive"])
        self._pending = None

    def rebind(self, sim: Simulator) -> None:
        """Re-link the pending sleep after the engine's state is loaded."""
        if not self.alive:
            return
        handles = sim.find_key_handles(self._key)
        live = [h for h in handles if not h.cancelled]
        if len(live) != 1:
            raise RuntimeError(
                f"{self._label}: expected one pending step, found {len(live)}"
            )
        self._pending = live[0]

    def _complete_cycle(self, time: float) -> None:
        uncorrected = self.host.memory.perform_page_ops(
            self.tree.page_ops_per_cycle(), time
        )
        archive = self.model.compress(self.host.host_id, time, uncorrected, self._rng)
        ok = verify_archive(self.tree, archive)
        result = CycleResult(
            time=time,
            host_id=self.host.host_id,
            hash_ok=ok,
            corrupted_block_count=len(archive.corrupted_blocks),
            stored=not ok,
        )
        # With a bus-wired ledger the publish inside ``record`` reaches the
        # subscribed fault log; the direct write below covers bare setups.
        self.ledger.record(result, archive=None if ok else archive)
        if not ok and self.fault_log is not None and self.ledger.bus is None:
            self.fault_log.record(
                FaultEvent(
                    time=time,
                    kind=FaultKind.WRONG_HASH,
                    host_id=self.host.host_id,
                    detail=f"{len(archive.corrupted_blocks)} corrupted block(s)",
                )
            )
