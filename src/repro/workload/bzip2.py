"""Block-structured bzip2 model and the ``bzip2recover`` triage.

bzip2 compresses independent blocks of (at the default ``-9`` level)
900 kB of input; a corrupted archive can therefore be salvaged block by
block, which is exactly what the paper did: "While inspecting the tarball
with the bzip2recover utility, it became clear that only a single one of
the 396 bzip2 compression blocks had been corrupted."

:class:`Bzip2Model` turns a source tree plus a set of uncorrected memory
faults into an :class:`Archive` whose corrupted-block set reflects where
the flipped bits landed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional

import numpy as np

from repro.workload.kernel_tree import KernelSourceTree

#: bzip2 -9 block size (uncompressed input per block).
BZIP2_BLOCK_BYTES = 900 * 1000


@dataclass(frozen=True)
class Archive:
    """One compressed tarball.

    Attributes
    ----------
    host_id / time:
        Provenance of the cycle that produced it.
    block_count:
        Number of bzip2 blocks (396 for the paper's tree).
    corrupted_blocks:
        Indices of blocks whose content a memory fault damaged.  Empty for
        a clean archive.
    """

    host_id: int
    time: float
    block_count: int
    corrupted_blocks: FrozenSet[int] = frozenset()

    def __post_init__(self) -> None:
        if self.block_count <= 0:
            raise ValueError("archive must have at least one block")
        bad = [b for b in self.corrupted_blocks if not 0 <= b < self.block_count]
        if bad:
            raise ValueError(f"corrupted block indices out of range: {bad}")

    @property
    def clean(self) -> bool:
        """Whether every block carries the intended bytes."""
        return not self.corrupted_blocks


@dataclass(frozen=True)
class RecoveryReport:
    """What ``bzip2recover`` finds when fed a damaged archive."""

    total_blocks: int
    damaged_blocks: FrozenSet[int]

    @property
    def recoverable_blocks(self) -> int:
        """Blocks that extract cleanly."""
        return self.total_blocks - len(self.damaged_blocks)

    def summary(self) -> str:
        """The paper-style sentence about the damage extent."""
        n = len(self.damaged_blocks)
        noun = "block" if n == 1 else "blocks"
        return f"{n} of the {self.total_blocks} bzip2 compression {noun} corrupted"


def bzip2recover(archive: Archive) -> RecoveryReport:
    """Triage a damaged archive block by block."""
    return RecoveryReport(
        total_blocks=archive.block_count, damaged_blocks=archive.corrupted_blocks
    )


class Bzip2Model:
    """Compression pipeline: source tree + memory faults -> archive.

    Parameters
    ----------
    tree:
        The source being archived.
    """

    def __init__(self, tree: Optional[KernelSourceTree] = None) -> None:
        self.tree = tree if tree is not None else KernelSourceTree()

    def __repr__(self) -> str:
        return f"Bzip2Model(blocks={self.block_count})"

    @property
    def block_count(self) -> int:
        """Blocks in the archive of this tree (396 for the default tree)."""
        return -(-self.tree.total_bytes // BZIP2_BLOCK_BYTES)

    def compress(
        self,
        host_id: int,
        time: float,
        uncorrected_faults: int,
        rng: np.random.Generator,
    ) -> Archive:
        """Produce the cycle's archive.

        Each uncorrected memory fault lands in one uniformly random block
        (a flipped bit in the compressor's working set damages whatever
        block was in flight).  Multiple faults may collide on a block;
        the corrupted set is whatever distinct blocks were hit.
        """
        if uncorrected_faults < 0:
            raise ValueError("fault count cannot be negative")
        corrupted: FrozenSet[int]
        if uncorrected_faults == 0:
            corrupted = frozenset()
        else:
            hits = rng.integers(0, self.block_count, size=uncorrected_faults)
            corrupted = frozenset(int(h) for h in hits)
        return Archive(
            host_id=host_id,
            time=time,
            block_count=self.block_count,
            corrupted_blocks=corrupted,
        )
