"""md5sum verification of archives.

The paper's loads compare each cycle's tarball hash with "an initial value
calculated before installation".  Content is not simulated byte-for-byte;
instead a digest is a deterministic function of the tree identity and the
archive's corrupted-block set, which preserves the only property the
experiment uses: *digest mismatch iff at least one block is corrupted*.

Real MD5 (via :mod:`hashlib`) is used over a canonical encoding, so digests
look and behave like the 32-hex-digit strings the monitoring host rsyncs.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

from repro.workload.bzip2 import Archive
from repro.workload.kernel_tree import KernelSourceTree


def _tree_fingerprint(tree: KernelSourceTree) -> str:
    """Stable identity of the source content."""
    return f"{tree.total_bytes}:{tree.file_count}:{tree.compression_ratio:.6f}"


def block_digest(tree: KernelSourceTree, corrupted_blocks: Iterable[int]) -> str:
    """MD5 hex digest of an archive of ``tree`` with the given damage."""
    payload = _tree_fingerprint(tree) + "|" + ",".join(
        str(b) for b in sorted(set(corrupted_blocks))
    )
    return hashlib.md5(payload.encode("ascii")).hexdigest()


def reference_digest(tree: KernelSourceTree) -> str:
    """The "initial value calculated before installation": a clean archive."""
    return block_digest(tree, ())


def archive_digest(tree: KernelSourceTree, archive: Archive) -> str:
    """Digest of a concrete archive produced by one cycle."""
    return block_digest(tree, archive.corrupted_blocks)


def verify_archive(tree: KernelSourceTree, archive: Archive) -> bool:
    """The md5sum comparison each cycle performs; True when hashes match."""
    return archive_digest(tree, archive) == reference_digest(tree)
