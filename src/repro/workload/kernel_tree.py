"""The Linux kernel source directory being archived.

The paper never states the exact kernel version; what its analysis uses is
the *size arithmetic*: "By calculating the size of the source directory to
be compressed, the average block size of the compressed tarball, and the
amount of cycles we have estimated the amount of memory pages read and
written to lie in the ballpark of 3.2 billion" across 27 627 runs -- about
116 k page operations per cycle -- and the resulting tarball had 396 bzip2
blocks.

:class:`KernelSourceTree` encodes a tree whose numbers reproduce both: a
~356 MB source (396 blocks at bzip2's 900 kB block granularity) and a page
census near the paper's per-cycle estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Memory page size assumed by the paper-era x86 kernels.
PAGE_SIZE_BYTES = 4096


@dataclass(frozen=True)
class KernelSourceTree:
    """A synthetic source directory with the paper's size arithmetic.

    Parameters
    ----------
    total_bytes:
        Uncompressed size of the tree.  The default (~356 MB) yields 396
        bzip2 blocks of 900 kB, matching Section 4.2.2.
    file_count:
        Number of files (affects nothing quantitative; kept for realism
        and for examples that print a census).
    compression_ratio:
        Compressed/uncompressed size for kernel source under bzip2.
    """

    total_bytes: int = 396 * 900 * 1000
    file_count: int = 30_826
    compression_ratio: float = 0.24

    def __post_init__(self) -> None:
        if self.total_bytes <= 0:
            raise ValueError("tree size must be positive")
        if self.file_count <= 0:
            raise ValueError("file count must be positive")
        if not 0.0 < self.compression_ratio < 1.0:
            raise ValueError("compression ratio must be in (0, 1)")

    # ------------------------------------------------------------------
    # Size arithmetic
    # ------------------------------------------------------------------
    @property
    def compressed_bytes(self) -> int:
        """Expected tarball size after bzip2."""
        return int(self.total_bytes * self.compression_ratio)

    @property
    def source_pages(self) -> int:
        """Pages read when tar walks the tree."""
        return -(-self.total_bytes // PAGE_SIZE_BYTES)  # ceil division

    @property
    def archive_pages(self) -> int:
        """Pages written for the compressed tarball."""
        return -(-self.compressed_bytes // PAGE_SIZE_BYTES)

    def page_ops_per_cycle(self) -> int:
        """Total page operations of one archive-and-verify cycle.

        One cycle reads every source page (tar+bzip2), writes every archive
        page, and reads every archive page back (md5sum verification).
        """
        return self.source_pages + 2 * self.archive_pages

    def estimated_page_ops(self, cycles: int) -> int:
        """The Section 4.2.2 ballpark: page ops across ``cycles`` runs."""
        if cycles < 0:
            raise ValueError("cycle count cannot be negative")
        return cycles * self.page_ops_per_cycle()

    def describe(self) -> str:
        """One-line census for examples and reports."""
        return (
            f"kernel tree: {self.file_count} files, "
            f"{self.total_bytes / 1e6:.0f} MB -> "
            f"{self.compressed_bytes / 1e6:.0f} MB tarball, "
            f"{self.page_ops_per_cycle():,} page ops/cycle"
        )
