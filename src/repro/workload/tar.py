"""A tar-stream model over a synthetic file census.

``tar`` is the first stage of the paper's pipeline and its format shapes
the byte counts the rest of the model consumes: every file costs a 512 B
header plus its payload rounded up to 512 B blocks, and the archive ends
with two zero blocks.  This module generates a deterministic synthetic
file census shaped like a Linux source tree (tens of thousands of small
files, a long tail of large ones) and computes the exact tar-stream size
for it -- grounding :class:`~repro.workload.kernel_tree.KernelSourceTree`'s
``total_bytes`` in an actual file population rather than a bare constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

TAR_BLOCK_BYTES = 512
#: Every member costs one header block.
HEADER_BLOCKS = 1
#: An archive ends with two zero blocks.
TRAILER_BLOCKS = 2


@dataclass(frozen=True)
class FileCensus:
    """A population of file sizes (bytes), plus derived tar arithmetic."""

    sizes: np.ndarray

    def __post_init__(self) -> None:
        sizes = np.asarray(self.sizes)
        if sizes.ndim != 1:
            raise ValueError("sizes must be a 1-D array")
        if len(sizes) == 0:
            raise ValueError("census cannot be empty")
        if np.any(sizes < 0):
            raise ValueError("file sizes cannot be negative")

    @property
    def file_count(self) -> int:
        """Number of files in the tree."""
        return len(self.sizes)

    @property
    def content_bytes(self) -> int:
        """Raw payload bytes (what ``du --apparent-size`` would say)."""
        return int(self.sizes.sum())

    @property
    def tar_stream_bytes(self) -> int:
        """Exact size of the tar stream for this census.

        Header block per file, payload padded to 512 B, two trailer
        blocks.  (Directory entries are ignored: they are a sub-percent
        correction on a kernel tree.)
        """
        payload_blocks = -(-self.sizes // TAR_BLOCK_BYTES)  # ceil div
        member_blocks = int(payload_blocks.sum()) + HEADER_BLOCKS * self.file_count
        return (member_blocks + TRAILER_BLOCKS) * TAR_BLOCK_BYTES

    @property
    def padding_overhead(self) -> float:
        """Fraction of the tar stream that is headers and padding."""
        stream = self.tar_stream_bytes
        if stream == 0:
            return 0.0
        return 1.0 - self.content_bytes / stream

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"{self.file_count} files, {self.content_bytes / 1e6:.0f} MB content, "
            f"{self.tar_stream_bytes / 1e6:.0f} MB tar stream "
            f"({100 * self.padding_overhead:.1f} % header/padding overhead)"
        )


def synthetic_kernel_census(
    file_count: int = 30_826,
    target_content_bytes: Optional[int] = None,
    seed: int = 2010,
) -> FileCensus:
    """A deterministic file-size population shaped like kernel source.

    Kernel trees are dominated by small C files with a heavy tail of
    large generated/firmware files; a log-normal (median ~6 KiB,
    sigma ~1.3) matches that shape.  When ``target_content_bytes`` is
    given, sizes are rescaled so the census content matches it exactly
    (the paper's arithmetic fixes the total, not the distribution).
    """
    if file_count <= 0:
        raise ValueError("file count must be positive")
    rng = np.random.default_rng(seed)
    sizes = rng.lognormal(mean=np.log(6144.0), sigma=1.3, size=file_count)
    if target_content_bytes is not None:
        if target_content_bytes <= 0:
            raise ValueError("target content size must be positive")
        sizes *= target_content_bytes / sizes.sum()
    census = FileCensus(sizes=np.floor(sizes).astype(np.int64))
    if target_content_bytes is not None:
        # Flooring undershoots by < file_count bytes; put the remainder on
        # the largest file so the total is exact.
        deficit = target_content_bytes - census.content_bytes
        if deficit:
            adjusted = census.sizes.copy()
            adjusted[int(np.argmax(adjusted))] += deficit
            census = FileCensus(sizes=adjusted)
    return census


def census_for_tree(tree) -> FileCensus:
    """The census matching a :class:`KernelSourceTree`'s stated totals."""
    return synthetic_kernel_census(
        file_count=tree.file_count, target_content_bytes=tree.total_bytes
    )
