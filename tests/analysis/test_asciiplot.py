"""Tests for the terminal chart renderer."""

import numpy as np
import pytest

from repro.analysis.asciiplot import ChartCanvas, dual_series_chart, sparkline
from repro.analysis.series import TimeSeries


def series(values, start=0.0, step=60.0):
    values = np.asarray(values, dtype=float)
    return TimeSeries(start + step * np.arange(len(values)), values)


class TestSparkline:
    def test_width_respected(self):
        assert len(sparkline(range(100), width=40)) == 40

    def test_monotone_input_monotone_glyphs(self):
        line = sparkline(range(64), width=8)
        levels = [" ▁▂▃▄▅▆▇█".index(c) for c in line]
        assert levels == sorted(levels)

    def test_constant_input_renders_mid_level(self):
        line = sparkline([5.0] * 30, width=10)
        assert len(set(line)) == 1

    def test_empty_input(self):
        assert sparkline([]) == ""

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            sparkline([1, 2], width=0)


class TestChartCanvas:
    def test_render_dimensions(self):
        canvas = ChartCanvas(40, 10, (0.0, 100.0), (0.0, 1.0))
        rendered = canvas.render()
        lines = rendered.splitlines()
        assert len(lines) == 11  # grid rows + axis line
        assert all(len(line) >= 40 for line in lines[:-1])

    def test_series_lands_in_the_right_rows(self):
        canvas = ChartCanvas(20, 11, (0.0, 19.0), (0.0, 10.0))
        low = series([0.0] * 20, step=1.0)
        canvas.plot_series(low, "x")
        rendered = canvas.render().splitlines()
        # Bottom grid row (index 10) holds the zeros.
        assert "x" in rendered[10]
        assert "x" not in rendered[0]

    def test_event_marks_bottom_row(self):
        canvas = ChartCanvas(20, 10, (0.0, 100.0), (0.0, 1.0))
        canvas.mark_event(50.0, "R")
        rendered = canvas.render().splitlines()
        assert "R" in rendered[9]

    def test_out_of_range_event_ignored(self):
        canvas = ChartCanvas(20, 10, (0.0, 100.0), (0.0, 1.0))
        canvas.mark_event(500.0, "R")
        assert "R" not in canvas.render()

    def test_too_small_canvas_rejected(self):
        with pytest.raises(ValueError):
            ChartCanvas(5, 2, (0.0, 1.0), (0.0, 1.0))

    def test_zero_extent_range_rejected(self):
        with pytest.raises(ValueError):
            ChartCanvas(40, 10, (1.0, 1.0), (0.0, 1.0))

    def test_multichar_glyph_rejected(self):
        canvas = ChartCanvas(20, 10, (0.0, 10.0), (0.0, 1.0))
        with pytest.raises(ValueError):
            canvas.plot_series(series([0.5]), "ab")


class TestDualSeriesChart:
    def test_both_glyphs_appear(self):
        a = series(np.sin(np.linspace(0, 6, 200)) * 10)
        b = series(np.cos(np.linspace(0, 6, 200)) * 10)
        chart = dual_series_chart(a, b, "o", ".", width=60, height=12)
        assert "o" in chart and "." in chart

    def test_events_rendered(self):
        a = series(np.linspace(-5, 5, 100))
        b = series(np.linspace(5, -5, 100))
        chart = dual_series_chart(a, b, events={"R": 3000.0}, width=40, height=10)
        assert "R" in chart

    def test_y_label_shown(self):
        a = series([1.0, 2.0, 3.0])
        chart = dual_series_chart(a, a, y_label="degC", width=40, height=10)
        assert "degC" in chart

    def test_empty_pair_rejected(self):
        empty = TimeSeries(np.zeros(0), np.zeros(0))
        with pytest.raises(ValueError):
            dual_series_chart(empty, empty)

    def test_one_empty_series_tolerated(self):
        a = series([1.0, 2.0, 3.0])
        empty = TimeSeries(np.zeros(0), np.zeros(0))
        chart = dual_series_chart(a, empty, width=40, height=10)
        assert "o" in chart
