"""Tests for the run-comparison tool."""

import datetime as dt

import pytest

from repro import Experiment
from repro.analysis.comparison import SeriesDelta, compare_runs
from repro.core.scenarios import no_modifications, paper_campaign


@pytest.fixture(scope="module")
def run_pair():
    until = dt.datetime(2010, 3, 20)
    modded = Experiment(paper_campaign(seed=5)).run(until=until)
    sealed = Experiment(no_modifications(seed=5)).run(until=until)
    return modded, sealed


class TestCompareRuns:
    def test_sealed_tent_shows_as_warmer(self, run_pair):
        modded, sealed = run_pair
        comparison = compare_runs(modded, sealed, "paper", "sealed")
        assert comparison.tent_temperature is not None
        assert comparison.tent_temperature.mean_delta > 3.0

    def test_workload_census_carried_over(self, run_pair):
        modded, sealed = run_pair
        comparison = compare_runs(modded, sealed)
        assert comparison.total_runs[0] == modded.ledger.total_runs
        assert comparison.total_runs[1] == sealed.ledger.total_runs

    def test_describe_renders_table(self, run_pair):
        modded, sealed = run_pair
        text = compare_runs(modded, sealed, "paper", "sealed").describe()
        assert "paper" in text and "sealed" in text
        assert "tent mean temp" in text
        assert "wrong hashes" in text

    def test_window_is_the_overlap(self, run_pair):
        modded, sealed = run_pair
        comparison = compare_runs(modded, sealed)
        assert comparison.window == (0.0, min(modded.end_time, sealed.end_time))

    def test_identical_runs_have_zero_delta(self, run_pair):
        modded, _ = run_pair
        comparison = compare_runs(modded, modded)
        assert comparison.tent_temperature.mean_delta == pytest.approx(0.0)
        assert comparison.failure_events[0] == comparison.failure_events[1]

    def test_series_delta_arithmetic(self):
        delta = SeriesDelta("x", mean_a=1.0, mean_b=3.5, max_a=2.0, max_b=4.0)
        assert delta.mean_delta == pytest.approx(2.5)
