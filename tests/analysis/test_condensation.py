"""Tests for the condensation-sweep analysis."""

import numpy as np
import pytest

from repro.analysis.condensation import (
    describe_sweep,
    minimum_safe_rise_c,
    sweep_case_rises,
)
from repro.analysis.series import TimeSeries


def humid_cold_series(n=200, rh_percent=97.0):
    times = 600.0 * np.arange(n)
    temps = -5.0 + 3.0 * np.sin(np.linspace(0, 8, n))
    rh = np.full(n, rh_percent)
    return TimeSeries(times, temps), TimeSeries(times, rh)


class TestSweep:
    def test_zero_rise_condenses_in_saturated_air(self):
        temp, rh = humid_cold_series()
        points = sweep_case_rises(temp, rh, [0.0, 5.0])
        assert points[0].condensing_fraction == 0.0 or points[0].min_margin_c <= 1.0
        # 97 % RH: dewpoint sits ~0.4 degC below air; a 5 degC rise is safe.
        assert points[1].safe

    def test_margin_grows_with_rise(self):
        temp, rh = humid_cold_series()
        points = sweep_case_rises(temp, rh, [0.0, 2.0, 4.0, 8.0])
        margins = [p.min_margin_c for p in points]
        assert margins == sorted(margins)
        fractions = [p.condensing_fraction for p in points]
        assert fractions == sorted(fractions, reverse=True)

    def test_campaign_sweep_matches_paper_claim(self, full_results):
        temp = full_results.inside_temperature_raw()
        rh = full_results.inside_humidity_raw()
        points = sweep_case_rises(temp, rh, [2.9])  # vendor-A average rise
        assert points[0].safe

    def test_mismatched_series_rejected(self):
        temp, rh = humid_cold_series()
        with pytest.raises(ValueError):
            sweep_case_rises(temp, rh.window(0.0, 600.0 * 100), [1.0])

    def test_negative_rise_rejected(self):
        temp, rh = humid_cold_series()
        with pytest.raises(ValueError):
            sweep_case_rises(temp, rh, [-1.0])

    def test_empty_series_rejected(self):
        empty = TimeSeries(np.zeros(0), np.zeros(0))
        with pytest.raises(ValueError):
            sweep_case_rises(empty, empty, [1.0])


class TestMinimumSafeRise:
    def test_saturated_air_needs_a_real_rise(self):
        # At exactly 100 % RH the dewpoint equals the air temperature, so
        # an unheated case condenses and any positive rise rescues it.
        temp, rh = humid_cold_series(rh_percent=100.0)
        safe = minimum_safe_rise_c(temp, rh)
        assert 0.0 < safe < 2.0

    def test_dry_air_needs_nothing(self):
        times = 600.0 * np.arange(50)
        temp = TimeSeries(times, np.full(50, 10.0))
        rh = TimeSeries(times, np.full(50, 30.0))
        assert minimum_safe_rise_c(temp, rh) == 0.0

    def test_campaign_minimum_is_modest(self, full_results):
        # The design takeaway: a watt-scale idle load keeps gear dry.
        safe = minimum_safe_rise_c(
            full_results.inside_temperature_raw(),
            full_results.inside_humidity_raw(),
        )
        assert safe < 4.0

    def test_resolution_validated(self):
        temp, rh = humid_cold_series()
        with pytest.raises(ValueError):
            minimum_safe_rise_c(temp, rh, resolution_c=0.0)


class TestDescribe:
    def test_table_renders(self):
        temp, rh = humid_cold_series()
        table = describe_sweep(sweep_case_rises(temp, rh, [0.0, 4.0]))
        assert "case rise" in table
        assert "min margin" in table
