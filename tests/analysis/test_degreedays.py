"""Tests for the degree-day arithmetic."""

import numpy as np
import pytest

from repro.analysis.degreedays import DegreeDays, degree_days, profile_degree_days
from repro.analysis.series import TimeSeries
from repro.climate.sites import HELSINKI_FULL_YEAR, SINGAPORE_FULL_YEAR
from repro.sim.clock import DAY, HOUR


def constant_series(temp_c, days=10):
    times = HOUR * np.arange(days * 24 + 1)
    return TimeSeries(times, np.full(len(times), float(temp_c)))


class TestDegreeDays:
    def test_constant_cold_is_pure_heating(self):
        dd = degree_days(constant_series(8.0, days=10), base_c=18.0)
        assert dd.heating == pytest.approx(100.0, rel=0.01)  # 10 degC x 10 d
        assert dd.cooling == pytest.approx(0.0, abs=1e-9)
        assert dd.cooling_fraction == 0.0

    def test_constant_hot_is_pure_cooling(self):
        dd = degree_days(constant_series(28.0, days=5), base_c=18.0)
        assert dd.cooling == pytest.approx(50.0, rel=0.01)
        assert dd.heating == pytest.approx(0.0, abs=1e-9)
        assert dd.cooling_fraction == 1.0

    def test_at_base_nothing_accrues(self):
        dd = degree_days(constant_series(18.0), base_c=18.0)
        assert dd.heating == pytest.approx(0.0, abs=1e-9)
        assert dd.cooling == pytest.approx(0.0, abs=1e-9)

    def test_span_reported(self):
        dd = degree_days(constant_series(0.0, days=7))
        assert dd.span_days == pytest.approx(7.0)

    def test_validation(self):
        empty = TimeSeries(np.zeros(0), np.zeros(0))
        with pytest.raises(ValueError):
            degree_days(empty)
        single = TimeSeries(np.array([0.0]), np.array([5.0]))
        with pytest.raises(ValueError):
            degree_days(single)

    def test_describe(self):
        text = degree_days(constant_series(8.0)).describe()
        assert "heating degree-days" in text


class TestProfileDegreeDays:
    def test_helsinki_is_a_heating_climate(self):
        dd = profile_degree_days(HELSINKI_FULL_YEAR, base_c=18.0, seed=0)
        # Nordic rule of thumb: ~4000-5000 HDD at an 18 degC base.
        assert 3000 < dd.heating < 6500
        assert dd.cooling < 0.1 * dd.heating
        assert dd.cooling_fraction < 0.1

    def test_singapore_is_a_cooling_climate(self):
        dd = profile_degree_days(SINGAPORE_FULL_YEAR, base_c=18.0, seed=0)
        assert dd.cooling > 10 * max(dd.heating, 1.0)
        assert dd.cooling_fraction > 0.9

    def test_cooling_fraction_tracks_free_cooling_ranking(self):
        # The facilities view and the free-cooling view must agree on
        # which site wants chillers.
        helsinki = profile_degree_days(HELSINKI_FULL_YEAR, seed=0)
        singapore = profile_degree_days(SINGAPORE_FULL_YEAR, seed=0)
        assert helsinki.cooling_fraction < singapore.cooling_fraction
