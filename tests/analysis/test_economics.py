"""Tests for the site-economics layer."""

import pytest

from repro.analysis.economics import SiteEconomics, economics_for
from repro.analysis.freecooling import SiteAssessment, assess_site
from repro.analysis.pue import FREE_AIR_PLANT, PAPER_CLUSTER_PLANT
from repro.climate.sites import HELSINKI_FULL_YEAR, SINGAPORE_FULL_YEAR


def _assessment(hours_free, hours_total=8760):
    return SiteAssessment(
        site="x", intake_limit_c=27.0, approach_c=2.0,
        hours_total=hours_total, hours_free=hours_free,
        outside_min_c=-10.0, outside_max_c=30.0,
        chiller_cooling_kw=55.4, fan_kw=3.0,
    )


class TestEconomics:
    def test_savings_fraction_matches_the_assessment(self):
        assessment = assess_site(HELSINKI_FULL_YEAR, seed=0)
        economics = economics_for(assessment)
        assert economics.savings_fraction == pytest.approx(
            assessment.cooling_energy_savings
        )

    def test_baseline_energy_is_chillers_alone(self):
        # The documented convention: no economizer fans in the baseline.
        economics = economics_for(_assessment(hours_free=0))
        assert economics.baseline_kwh_per_year == pytest.approx(55.4 * 8760)

    def test_all_free_year_priced_at_ten_cents(self):
        economics = economics_for(
            _assessment(hours_free=8760), electricity_price_usd_per_kwh=0.10
        )
        # Saved energy: chillers all year minus fans all year.
        expected_kwh = (55.4 - 3.0) * 8760
        assert economics.savings_kwh_per_year == pytest.approx(expected_kwh)
        assert economics.savings_usd_per_year == pytest.approx(0.10 * expected_kwh)

    def test_no_free_hours_costs_money(self):
        # Negative savings survive the dollar conversion: the retrofit
        # only added fan draw.
        economics = economics_for(_assessment(hours_free=0))
        assert economics.savings_kwh_per_year == pytest.approx(-3.0 * 8760)
        assert economics.savings_usd_per_year < 0

    def test_savings_scale_linearly_with_price(self):
        cheap = economics_for(_assessment(4000), electricity_price_usd_per_kwh=0.05)
        dear = economics_for(_assessment(4000), electricity_price_usd_per_kwh=0.15)
        assert dear.savings_usd_per_year == pytest.approx(3 * cheap.savings_usd_per_year)
        assert dear.savings_kwh_per_year == pytest.approx(cheap.savings_kwh_per_year)

    def test_pue_brackets_the_paper_plants(self):
        economics = economics_for(_assessment(hours_free=8760))
        # Fully free cooling approaches the free-air plant's PUE; the
        # baseline is the retrofitted-CRAC plant's 1.74.
        assert economics.pue_baseline == pytest.approx(PAPER_CLUSTER_PLANT.pue)
        assert economics.pue_economizer == pytest.approx(FREE_AIR_PLANT.pue)

    def test_singapore_pue_stays_near_baseline(self):
        assessment = assess_site(SINGAPORE_FULL_YEAR, seed=0)
        economics = economics_for(assessment)
        assert economics.pue_economizer > 1.7
        # ~9 % of hours are free, so the economizer shaves only a few
        # hundredths off the chiller-bound PUE.
        assert economics.pue_baseline - economics.pue_economizer < 0.05


class TestValidation:
    def test_mismatched_plant_rejected(self):
        assessment = assess_site(HELSINKI_FULL_YEAR, seed=0)
        with pytest.raises(ValueError, match="assessed under"):
            economics_for(assessment, plant=FREE_AIR_PLANT)

    def test_non_positive_price_rejected(self):
        with pytest.raises(ValueError):
            economics_for(_assessment(100), electricity_price_usd_per_kwh=0.0)

    def test_negative_energy_rejected(self):
        with pytest.raises(ValueError):
            SiteEconomics(
                site="x", electricity_price_usd_per_kwh=0.1,
                baseline_kwh_per_year=-1.0, economizer_kwh_per_year=0.0,
                pue_baseline=1.7, pue_economizer=1.1,
            )
