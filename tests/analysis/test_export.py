"""Tests for flat-file export of a finished run."""

import json

import numpy as np
import pytest

from repro.analysis.export import (
    export_run,
    fault_log_from_tsv,
    fault_log_to_tsv,
    read_series_csv,
    series_from_csv,
    series_to_csv,
    write_series_csv,
)
from repro.analysis.series import TimeSeries
from repro.hardware.faults import FaultEvent, FaultKind, FaultLog


def sample_series():
    return TimeSeries(np.array([0.0, 60.0, 120.0]), np.array([-9.25, -9.5, -10.0]))


class TestSeriesCsv:
    def test_roundtrip(self):
        text = series_to_csv(sample_series(), "temp_c")
        parsed, name = series_from_csv(text)
        assert name == "temp_c"
        assert list(parsed.times) == [0.0, 60.0, 120.0]
        assert parsed.values == pytest.approx(sample_series().values)

    def test_header_required(self):
        with pytest.raises(ValueError):
            series_from_csv("a,b\n1,2\n")

    def test_malformed_row_rejected(self):
        with pytest.raises(ValueError):
            series_from_csv("time_s,temp_c\n1,2,3\n")

    def test_file_roundtrip(self, tmp_path):
        path = write_series_csv(sample_series(), tmp_path / "t.csv", "temp_c")
        parsed, name = read_series_csv(path)
        assert name == "temp_c"
        assert len(parsed) == 3

    def test_empty_series(self):
        empty = TimeSeries(np.zeros(0), np.zeros(0))
        parsed, _name = series_from_csv(series_to_csv(empty))
        assert parsed.empty


class TestFaultLogTsv:
    def sample_log(self):
        log = FaultLog()
        log.record(FaultEvent(100.0, FaultKind.TRANSIENT_SYSTEM, host_id=15))
        log.record(FaultEvent(200.0, FaultKind.SWITCH, host_id=None, detail="tent-sw1"))
        log.record(FaultEvent(300.0, FaultKind.WRONG_HASH, host_id=3, detail="1 block"))
        return log

    def test_roundtrip(self):
        log = self.sample_log()
        parsed = fault_log_from_tsv(fault_log_to_tsv(log))
        assert len(parsed) == 3
        assert parsed.events[0].kind is FaultKind.TRANSIENT_SYSTEM
        assert parsed.events[1].host_id is None
        assert parsed.events[1].detail == "tent-sw1"
        assert parsed.events[2].detail == "1 block"

    def test_header_required(self):
        with pytest.raises(ValueError):
            fault_log_from_tsv("nope\n")

    def test_unknown_kind_rejected(self):
        text = "time_s\tkind\thost_id\tdetail\n1.0\tGREMLIN\t1\t\n"
        with pytest.raises(ValueError):
            fault_log_from_tsv(text)


class TestExportRun:
    def test_exports_all_artifacts(self, short_results, tmp_path):
        written = export_run(short_results, tmp_path / "dump")
        expected = {
            "outside_temperature",
            "outside_humidity",
            "inside_temperature",
            "inside_humidity",
            "faults",
            "meta",
        }
        assert set(written) == expected
        for path in written.values():
            assert path.exists()

    def test_meta_json_contents(self, short_results, tmp_path):
        written = export_run(short_results, tmp_path)
        meta = json.loads(written["meta"].read_text())
        assert meta["seed"] == short_results.config.seed
        assert meta["total_runs"] == short_results.ledger.total_runs
        assert "Zero Degrees" in meta["paper"]

    def test_exported_series_roundtrip(self, short_results, tmp_path):
        written = export_run(short_results, tmp_path)
        parsed, name = read_series_csv(written["outside_temperature"])
        assert name == "temp_c"
        assert len(parsed) == len(short_results.outside_temperature())

    def test_exported_faults_roundtrip(self, short_results, tmp_path):
        written = export_run(short_results, tmp_path)
        parsed = fault_log_from_tsv(written["faults"].read_text())
        assert len(parsed) == len(short_results.fault_log)
