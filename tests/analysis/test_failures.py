"""Tests for failure-rate census and common-cause clustering."""

import pytest

from repro.analysis.failures import (
    INTEL_FAILURE_RATE_PERCENT,
    CommonCauseCluster,
    FailureCensus,
    census_from_events,
    failures_by_host,
    find_common_cause_clusters,
)
from repro.hardware.faults import FaultEvent, FaultKind
from repro.sim.clock import DAY, HOUR


def transient(time, host_id):
    return FaultEvent(time=time, kind=FaultKind.TRANSIENT_SYSTEM, host_id=host_id)


class TestFailureCensus:
    def test_paper_headline_rate(self):
        # "Of the eighteen hosts installed initially, one has encountered
        # two transient system failures ... A failure rate of 5.6%."
        census = FailureCensus(group="all", hosts_total=18, hosts_failed=1)
        assert census.failure_rate_percent == pytest.approx(5.6, abs=0.1)

    def test_comparable_to_intel(self):
        census = FailureCensus(group="all", hosts_total=18, hosts_failed=1)
        assert census.comparable_to_intel()
        assert INTEL_FAILURE_RATE_PERCENT == 4.46

    def test_wildly_higher_rate_not_comparable(self):
        census = FailureCensus(group="all", hosts_total=18, hosts_failed=9)
        assert not census.comparable_to_intel()

    def test_zero_hosts_rate_zero(self):
        assert FailureCensus("x", 0, 0).failure_rate_percent == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FailureCensus("x", 3, 5)
        with pytest.raises(ValueError):
            FailureCensus("x", -1, 0)

    def test_describe_mentions_intel(self):
        text = FailureCensus("tent", 9, 1).describe()
        assert "tent" in text and "4.46" in text


class TestCensusFromEvents:
    def test_counts_distinct_failed_hosts(self):
        events = [transient(0.0, 15), transient(100.0, 15), transient(200.0, 3)]
        census = census_from_events("all", list(range(1, 19)), events)
        assert census.hosts_failed == 2  # host 15 counted once

    def test_ignores_hosts_outside_group(self):
        events = [transient(0.0, 15)]
        census = census_from_events("basement", [4, 5, 7], events)
        assert census.hosts_failed == 0

    def test_wrong_hash_not_a_system_failure(self):
        events = [FaultEvent(0.0, FaultKind.WRONG_HASH, host_id=3)]
        census = census_from_events("all", [3], events)
        assert census.hosts_failed == 0

    def test_disk_loss_counts(self):
        events = [FaultEvent(0.0, FaultKind.DISK, host_id=14)]
        census = census_from_events("all", [14], events)
        assert census.hosts_failed == 1


class TestCommonCauseClustering:
    def test_simultaneous_failures_cluster(self):
        events = [transient(0.0, 1), transient(HOUR, 2), transient(2 * HOUR, 3)]
        clusters = find_common_cause_clusters(events, window_hours=48.0)
        assert len(clusters) == 1
        assert clusters[0].host_ids == (1, 2, 3)

    def test_distant_failures_do_not_cluster(self):
        events = [transient(0.0, 1), transient(10 * DAY, 2)]
        assert find_common_cause_clusters(events, window_hours=48.0) == []

    def test_repeat_failures_on_one_host_do_not_cluster(self):
        # The paper's host #15 failing twice is not a common cause.
        events = [transient(0.0, 15), transient(HOUR, 15)]
        assert find_common_cause_clusters(events) == []

    def test_different_kinds_kept_apart(self):
        events = [
            transient(0.0, 1),
            FaultEvent(HOUR, FaultKind.DISK, host_id=2),
        ]
        assert find_common_cause_clusters(events) == []

    def test_chained_window_extends_cluster(self):
        # Each event within 48h of the previous: one long cluster.
        events = [transient(i * 40 * HOUR, i) for i in range(1, 5)]
        clusters = find_common_cause_clusters(events, window_hours=48.0)
        assert len(clusters) == 1
        assert clusters[0].span_hours == pytest.approx(120.0)

    def test_infrastructure_events_ignored(self):
        events = [
            FaultEvent(0.0, FaultKind.SWITCH, host_id=None),
            FaultEvent(HOUR, FaultKind.SWITCH, host_id=None),
        ]
        assert find_common_cause_clusters(events) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            find_common_cause_clusters([], window_hours=0.0)
        with pytest.raises(ValueError):
            find_common_cause_clusters([], min_hosts=1)


class TestFailuresByHost:
    def test_counts_system_failures_only(self):
        events = [
            transient(0.0, 15),
            transient(1.0, 15),
            FaultEvent(2.0, FaultKind.WRONG_HASH, host_id=15),
            FaultEvent(3.0, FaultKind.MEMTEST, host_id=15),
            FaultEvent(4.0, FaultKind.SWITCH, host_id=None),
        ]
        counts = failures_by_host(events)
        assert counts == {15: 3}
