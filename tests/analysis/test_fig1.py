"""Tests for the Fig. 1 schematic rendering."""

from repro.analysis.figures import fig1_schematic


class TestFig1Schematic:
    def test_mentions_every_modification_letter(self):
        text = fig1_schematic()
        for marker in ("foil cover R", "removed at I", "removed at B", "at F", "door D"):
            assert marker in text

    def test_mentions_the_structural_elements(self):
        text = fig1_schematic()
        for element in ("outer fabric", "inner tent", "tarpaulin", "terrace"):
            assert element in text

    def test_shows_the_hosts(self):
        assert "[HOST]" in fig1_schematic()

    def test_stable_render(self):
        assert fig1_schematic() == fig1_schematic()

    def test_no_leading_or_trailing_blank_lines(self):
        text = fig1_schematic()
        assert not text.startswith("\n")
        assert not text.endswith("\n")
