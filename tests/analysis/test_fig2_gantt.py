"""Tests for the Fig. 2 Gantt rendering and the engine trace hook."""

import pytest

from repro.analysis.asciiplot import render_fig2_gantt
from repro.analysis.figures import fig2_timeline
from repro.sim.engine import Simulator


class TestFig2Gantt:
    def test_one_row_per_tent_host(self, full_results):
        timeline = fig2_timeline(full_results)
        gantt = render_fig2_gantt(timeline, full_results.clock)
        rows = [line for line in gantt.splitlines() if line.startswith("host #")]
        assert len(rows) == len(timeline.rows)

    def test_replacement_annotated(self, full_results):
        timeline = fig2_timeline(full_results)
        gantt = render_fig2_gantt(timeline, full_results.clock)
        assert "(replaces #15)" in gantt

    def test_removed_host_marked(self, full_results):
        timeline = fig2_timeline(full_results)
        gantt = render_fig2_gantt(timeline, full_results.clock)
        host15_row = next(
            line for line in gantt.splitlines() if line.startswith("host #15")
        )
        assert "x" in host15_row
        assert "taken indoors" in host15_row

    def test_header_carries_dates(self, full_results):
        gantt = render_fig2_gantt(fig2_timeline(full_results), full_results.clock)
        header = gantt.splitlines()[0]
        assert "2010-02-19" in header

    def test_later_installs_start_further_right(self, full_results):
        timeline = fig2_timeline(full_results)
        gantt = render_fig2_gantt(timeline, full_results.clock, width=60)
        starts = {}
        for line in gantt.splitlines()[1:]:
            host_id = int(line[6:8])
            starts[host_id] = line.index("|")
        assert starts[1] < starts[10] < starts[18]

    def test_width_validated(self, full_results):
        with pytest.raises(ValueError):
            render_fig2_gantt(fig2_timeline(full_results), full_results.clock, width=5)


class TestEngineTrace:
    def test_trace_hook_sees_labels_in_order(self):
        sim = Simulator()
        trace = []
        sim.on_event = lambda t, label: trace.append((t, label))
        sim.schedule(10.0, lambda: None, label="first")
        sim.schedule(20.0, lambda: None, label="second")
        sim.run()
        assert trace == [(10.0, "first"), (20.0, "second")]

    def test_cancelled_events_not_traced(self):
        sim = Simulator()
        trace = []
        sim.on_event = lambda t, label: trace.append(label)
        handle = sim.schedule(10.0, lambda: None, label="gone")
        handle.cancel()
        sim.run()
        assert trace == []

    def test_no_hook_no_overhead(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()  # simply must not raise
        assert sim.events_fired == 1
