"""Tests for the figure-data builders."""

import pytest

from repro.analysis.figures import (
    daily_envelope,
    fig2_timeline,
    fig3_temperatures,
    fig4_humidities,
)


class TestFig2:
    def test_nine_initial_tent_rows_plus_replacement(self, full_results):
        timeline = fig2_timeline(full_results)
        assert len(timeline.rows) == 10
        assert timeline.host_ids()[-1] == 19  # replacement installed last

    def test_rows_sorted_by_install_time(self, full_results):
        rows = fig2_timeline(full_results).rows
        times = [r.install_time for r in rows]
        assert times == sorted(times)

    def test_first_installs_on_feb_19(self, full_results):
        timeline = fig2_timeline(full_results)
        first = timeline.rows[0]
        assert full_results.clock.format(first.install_time).startswith("2010-02-19")
        assert timeline.test_start < first.install_time + 1.0

    def test_replacement_row_links_to_host_15(self, full_results):
        rows = fig2_timeline(full_results).rows
        replacement = next(r for r in rows if r.host_id == 19)
        assert replacement.replacement_for == 15
        removed = next(r for r in rows if r.host_id == 15)
        assert removed.removed_time is not None

    def test_short_run_has_only_early_rows(self, short_results):
        timeline = fig2_timeline(short_results)
        assert 3 <= len(timeline.rows) <= 5  # Feb 19 trio + Feb 24 host


class TestFig3:
    def test_series_cover_campaign(self, full_results):
        data = fig3_temperatures(full_results)
        assert len(data.outside) > 1000
        assert len(data.inside) > 1000

    def test_inside_starts_at_lascar_arrival(self, full_results):
        data = fig3_temperatures(full_results)
        assert data.inside.times[0] >= full_results.lascar.arrival_time

    def test_events_include_all_four_letters(self, full_results):
        data = fig3_temperatures(full_results)
        assert set("RIBF") <= set(data.events)

    def test_events_in_paper_order(self, full_results):
        events = fig3_temperatures(full_results).events
        assert events["R"] < events["I"] < events["B"] < events["F"]

    def test_outliers_removed_from_inside_series(self, full_results):
        data = fig3_temperatures(full_results)
        raw = full_results.inside_temperature_raw()
        assert len(data.inside) < len(raw)

    def test_modifications_narrow_the_excess(self, full_results):
        data = fig3_temperatures(full_results)
        excess = data.inside_excess()
        clock = full_results.clock
        before = excess.window(clock.at(2010, 3, 1), clock.at(2010, 3, 5))
        after = excess.window(clock.at(2010, 4, 10), clock.at(2010, 5, 10))
        assert after.mean() < 0.6 * before.mean()


class TestFig4:
    def test_inside_rh_smoother_than_outside(self, full_results):
        data = fig4_humidities(full_results)
        assert data.stability_ratio() > 1.0

    def test_inside_series_cleaned_with_companion(self, full_results):
        data = fig4_humidities(full_results)
        raw = full_results.inside_humidity_raw()
        assert len(data.inside) < len(raw)

    def test_rh_bounds(self, full_results):
        data = fig4_humidities(full_results)
        for series in (data.inside, data.outside):
            assert series.min() >= 0.0
            assert series.max() <= 100.0

    def test_humidity_varies_more_after_airflow_mods(self, full_results):
        # "As we increase air flow ... the humidity also begins to vary
        # more intensely."
        data = fig4_humidities(full_results)
        clock = full_results.clock
        before = data.inside.window(clock.at(2010, 3, 1), clock.at(2010, 3, 12))
        after = data.inside.window(clock.at(2010, 4, 1), clock.at(2010, 5, 10))
        assert after.std() > before.std()


class TestDailyEnvelope:
    def test_envelope_ordering(self, full_results):
        outside = full_results.outside_temperature()
        envelope = daily_envelope(outside, full_results.clock)
        assert (envelope.minimum <= envelope.mean).all()
        assert (envelope.mean <= envelope.maximum).all()
        assert len(envelope.days) > 80
