"""Tests for the free-cooling feasibility analysis."""

import pytest

from repro.analysis.freecooling import (
    SiteAssessment,
    assess_site,
    compare_sites,
    intake_limit_sensitivity,
)
from repro.climate.sites import (
    ALL_SITES,
    HELSINKI_FULL_YEAR,
    NEW_MEXICO_FULL_YEAR,
    SINGAPORE_FULL_YEAR,
)


@pytest.fixture(scope="module")
def helsinki():
    return assess_site(HELSINKI_FULL_YEAR, seed=0)


class TestAssessment:
    def test_helsinki_is_essentially_always_free(self, helsinki):
        # The paper's thesis: a Finnish site needs no chillers.
        assert helsinki.free_fraction > 0.97

    def test_singapore_is_essentially_never_free(self):
        assessment = assess_site(SINGAPORE_FULL_YEAR, seed=0)
        assert assessment.free_fraction < 0.3

    def test_new_mexico_between(self):
        assessment = assess_site(NEW_MEXICO_FULL_YEAR, seed=0)
        assert 0.6 < assessment.free_fraction < 0.98

    def test_savings_increase_with_free_fraction(self):
        ranked = compare_sites(ALL_SITES, seed=0)
        savings = [a.cooling_energy_savings for a in ranked]
        assert savings == sorted(savings, reverse=True)

    def test_blended_cooling_bounds(self, helsinki):
        # Blended draw sits between fans-only and fans + full chillers.
        assert helsinki.fan_kw <= helsinki.blended_cooling_kw
        assert helsinki.blended_cooling_kw <= (
            helsinki.fan_kw + helsinki.chiller_cooling_kw
        )

    def test_full_year_swept(self, helsinki):
        assert helsinki.hours_total >= 364 * 24

    def test_describe_mentions_site(self, helsinki):
        assert "helsinki" in helsinki.describe()


class TestCompareSites:
    def test_ranked_best_first(self):
        ranked = compare_sites(ALL_SITES, seed=0)
        fractions = [a.free_fraction for a in ranked]
        assert fractions == sorted(fractions, reverse=True)

    def test_helsinki_beats_new_mexico(self):
        # The geographic-extension claim, quantified.
        ranked = {a.site: a.free_fraction for a in compare_sites(ALL_SITES, seed=0)}
        assert ranked["helsinki-2010-full-year"] > ranked["new-mexico-full-year"]
        assert ranked["new-mexico-full-year"] > ranked["singapore-full-year"]


class TestSensitivity:
    def test_fraction_monotone_in_ceiling(self):
        points = intake_limit_sensitivity(
            NEW_MEXICO_FULL_YEAR, limits_c=[20.0, 25.0, 30.0, 35.0], seed=0
        )
        fractions = [f for _limit, f in points]
        assert fractions == sorted(fractions)

    def test_generous_ceiling_reaches_unity(self):
        points = intake_limit_sensitivity(
            SINGAPORE_FULL_YEAR, limits_c=[45.0], seed=0
        )
        assert points[0][1] == pytest.approx(1.0)


class TestValidation:
    def test_free_hours_bounded(self):
        with pytest.raises(ValueError):
            SiteAssessment(
                site="x", intake_limit_c=27.0, approach_c=2.0,
                hours_total=10, hours_free=11, outside_min_c=0.0,
                outside_max_c=1.0, chiller_cooling_kw=55.4, fan_kw=3.0,
            )

    def test_negative_approach_rejected(self):
        with pytest.raises(ValueError):
            assess_site(HELSINKI_FULL_YEAR, approach_c=-1.0)

    def test_empty_assessment_fraction_zero(self):
        assessment = SiteAssessment(
            site="x", intake_limit_c=27.0, approach_c=2.0,
            hours_total=0, hours_free=0, outside_min_c=0.0,
            outside_max_c=1.0, chiller_cooling_kw=55.4, fan_kw=3.0,
        )
        assert assessment.free_fraction == 0.0
