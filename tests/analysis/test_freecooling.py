"""Tests for the free-cooling feasibility analysis."""

import itertools

import pytest

from repro.analysis.freecooling import (
    SiteAssessment,
    assess_site,
    compare_sites,
    intake_limit_sensitivity,
)
from repro.climate.sites import (
    ALL_SITES,
    HELSINKI_FULL_YEAR,
    NE_ENGLAND_FULL_YEAR,
    NEW_MEXICO_FULL_YEAR,
    SINGAPORE_FULL_YEAR,
)


@pytest.fixture(scope="module")
def helsinki():
    return assess_site(HELSINKI_FULL_YEAR, seed=0)


class TestAssessment:
    def test_helsinki_is_essentially_always_free(self, helsinki):
        # The paper's thesis: a Finnish site needs no chillers.
        assert helsinki.free_fraction > 0.97

    def test_singapore_is_essentially_never_free(self):
        assessment = assess_site(SINGAPORE_FULL_YEAR, seed=0)
        assert assessment.free_fraction < 0.3

    def test_new_mexico_between(self):
        assessment = assess_site(NEW_MEXICO_FULL_YEAR, seed=0)
        assert 0.6 < assessment.free_fraction < 0.98

    def test_savings_increase_with_free_fraction(self):
        ranked = compare_sites(ALL_SITES, seed=0)
        savings = [a.cooling_energy_savings for a in ranked]
        assert savings == sorted(savings, reverse=True)

    def test_blended_cooling_bounds(self, helsinki):
        # Blended draw sits between fans-only and fans + full chillers.
        assert helsinki.fan_kw <= helsinki.blended_cooling_kw
        assert helsinki.blended_cooling_kw <= (
            helsinki.fan_kw + helsinki.chiller_cooling_kw
        )

    def test_full_year_swept(self, helsinki):
        assert helsinki.hours_total >= 364 * 24

    def test_grid_covers_span_inclusively(self, helsinki):
        # 365 days of hourly grid = 8760 intervals = 8761 points; the old
        # half-open ``np.arange`` silently dropped the final hour.
        assert helsinki.hours_total == 365 * 24 + 1

    def test_hours_above_limit_complements_free(self, helsinki):
        assert helsinki.hours_above_limit == (
            helsinki.hours_total - helsinki.hours_free
        )

    def test_describe_mentions_site(self, helsinki):
        assert "helsinki" in helsinki.describe()


class TestSavingsRegression:
    """Pins for the fixed savings baseline (chillers alone, no fans).

    ``savings = free_fraction - fan_kw / chiller_kw``: the paper-plant
    numbers put the cold sites comfortably past Intel's ~67 % claim and
    HP's ~40 % claim, and leave Singapore barely positive.  These values
    regress only if the baseline convention or the weather grid drifts.
    """

    EXPECTED = {
        "ne-england-full-year": (1.0000, 0.9458),
        "helsinki-2010-full-year": (0.9999, 0.9457),
        "new-mexico-full-year": (0.8895, 0.8354),
        "singapore-full-year": (0.0885, 0.0343),
    }

    def test_stock_site_pins(self):
        for profile in ALL_SITES:
            assessment = assess_site(profile, seed=0)
            fraction, savings = self.EXPECTED[profile.name]
            assert assessment.free_fraction == pytest.approx(fraction, abs=5e-4)
            assert assessment.cooling_energy_savings == pytest.approx(
                savings, abs=5e-4
            )

    def test_cold_sites_beat_the_industry_claims(self):
        helsinki = assess_site(HELSINKI_FULL_YEAR, seed=0)
        ne_england = assess_site(NE_ENGLAND_FULL_YEAR, seed=0)
        assert helsinki.cooling_energy_savings > 0.67  # Intel's number
        assert ne_england.cooling_energy_savings > 0.40  # HP's number

    def test_no_free_hours_means_negative_savings(self):
        # The retrofit adds fan draw without displacing chiller energy.
        assessment = SiteAssessment(
            site="x", intake_limit_c=27.0, approach_c=2.0,
            hours_total=100, hours_free=0, outside_min_c=30.0,
            outside_max_c=40.0, chiller_cooling_kw=55.4, fan_kw=3.0,
        )
        assert assessment.cooling_energy_savings == pytest.approx(-3.0 / 55.4)

    def test_all_free_hours_savings_below_unity_by_fan_share(self):
        assessment = SiteAssessment(
            site="x", intake_limit_c=27.0, approach_c=2.0,
            hours_total=100, hours_free=100, outside_min_c=-20.0,
            outside_max_c=10.0, chiller_cooling_kw=55.4, fan_kw=3.0,
        )
        assert assessment.cooling_energy_savings == pytest.approx(
            1.0 - 3.0 / 55.4
        )


class TestCompareSites:
    def test_ranked_best_first(self):
        ranked = compare_sites(ALL_SITES, seed=0)
        fractions = [a.free_fraction for a in ranked]
        assert fractions == sorted(fractions, reverse=True)

    def test_helsinki_beats_new_mexico(self):
        # The geographic-extension claim, quantified.
        ranked = {a.site: a.free_fraction for a in compare_sites(ALL_SITES, seed=0)}
        assert ranked["helsinki-2010-full-year"] > ranked["new-mexico-full-year"]
        assert ranked["new-mexico-full-year"] > ranked["singapore-full-year"]

    def test_ranking_is_permutation_invariant(self):
        # Ties (two 100 %-free cold sites) used to leave the order at the
        # mercy of the input ordering; the (-fraction, -savings, name)
        # key makes it a total order.
        reference = [a.site for a in compare_sites(ALL_SITES, seed=0)]
        for ordering in itertools.permutations(ALL_SITES):
            assert [a.site for a in compare_sites(ordering, seed=0)] == reference

    def test_exact_ties_break_by_name(self):
        # Two copies of the always-free site under different names must
        # rank alphabetically regardless of input order.
        import dataclasses

        clone = dataclasses.replace(
            NE_ENGLAND_FULL_YEAR, name="aa-clone-of-ne-england"
        )
        for pair in ([NE_ENGLAND_FULL_YEAR, clone], [clone, NE_ENGLAND_FULL_YEAR]):
            ranked = compare_sites(pair, seed=0)
            assert [a.site for a in ranked] == [
                "aa-clone-of-ne-england", "ne-england-full-year",
            ]


class TestSensitivity:
    def test_fraction_monotone_in_ceiling(self):
        points = intake_limit_sensitivity(
            NEW_MEXICO_FULL_YEAR, limits_c=[20.0, 25.0, 30.0, 35.0], seed=0
        )
        fractions = [f for _limit, f in points]
        assert fractions == sorted(fractions)

    def test_generous_ceiling_reaches_unity(self):
        points = intake_limit_sensitivity(
            SINGAPORE_FULL_YEAR, limits_c=[45.0], seed=0
        )
        assert points[0][1] == pytest.approx(1.0)

    @pytest.mark.parametrize("profile", ALL_SITES, ids=lambda p: p.name)
    def test_property_higher_ceiling_never_loses_hours(self, profile):
        # Monotonicity property over a dense ceiling ladder: raising the
        # intake limit can only admit more outside-air hours.
        limits = [float(c) for c in range(-5, 46, 2)]
        points = intake_limit_sensitivity(profile, limits_c=limits, seed=0)
        fractions = [f for _limit, f in points]
        assert all(a <= b for a, b in zip(fractions, fractions[1:]))


class TestValidation:
    def test_free_hours_bounded(self):
        with pytest.raises(ValueError):
            SiteAssessment(
                site="x", intake_limit_c=27.0, approach_c=2.0,
                hours_total=10, hours_free=11, outside_min_c=0.0,
                outside_max_c=1.0, chiller_cooling_kw=55.4, fan_kw=3.0,
            )

    def test_negative_approach_rejected(self):
        with pytest.raises(ValueError):
            assess_site(HELSINKI_FULL_YEAR, approach_c=-1.0)

    def test_zero_hour_assessment_rejected(self):
        # The hours_total == 0 guard in free_fraction was unreachable
        # from assess_site and silently reported 0.0; degenerate
        # assessments are now a construction-time error.
        with pytest.raises(ValueError):
            SiteAssessment(
                site="x", intake_limit_c=27.0, approach_c=2.0,
                hours_total=0, hours_free=0, outside_min_c=0.0,
                outside_max_c=1.0, chiller_cooling_kw=55.4, fan_kw=3.0,
            )

    def test_degenerate_profile_span_rejected(self):
        import datetime as dt

        from repro.climate.profiles import ClimateProfile

        flat = ClimateProfile(
            name="instant",
            anchors=(
                (dt.datetime(2010, 1, 1), 0.0),
                (dt.datetime(2010, 1, 1), 0.0),
            ),
        )
        with pytest.raises(ValueError, match="spans no time"):
            assess_site(flat, seed=0)
