"""Tests for the empirical heat-budget (UA recovery) analysis."""

import pytest

from repro.analysis.heatbudget import (
    EraEstimate,
    conductance_increased_after,
    estimate_ua_by_era,
    summarize,
)


class TestEraEstimates:
    def test_one_era_per_intervention(self, full_results):
        estimates = estimate_ua_by_era(full_results)
        labels = [e.label for e in estimates]
        assert labels[0] == "pre-mods"
        for letter in "IBF":  # R precedes the Lascar? no: R is Mar 5, arrival Mar 1
            assert f"after-{letter}" in labels

    def test_eras_are_contiguous(self, full_results):
        estimates = estimate_ua_by_era(full_results)
        for previous, current in zip(estimates, estimates[1:]):
            assert current.start == pytest.approx(previous.end)

    def test_ua_estimates_are_physical(self, full_results):
        estimates = estimate_ua_by_era(full_results)
        for est in estimates:
            if est.ua_w_per_k is not None:
                assert 5.0 < est.ua_w_per_k < 500.0

    def test_conductance_rises_through_the_campaign(self, full_results):
        # The identifiability check: the estimated envelope opens up.
        estimates = estimate_ua_by_era(full_results)
        usable = [e.ua_w_per_k for e in estimates if e.ua_w_per_k is not None]
        assert len(usable) >= 3
        assert usable[-1] > 1.5 * usable[0]

    def test_airflow_mods_detected(self, full_results):
        estimates = estimate_ua_by_era(full_results)
        # I, B, F all raise conductance; the foil (R) does not.
        for letter in "IBF":
            verdict = conductance_increased_after(estimates, letter)
            assert verdict is None or verdict is True

    def test_gap_narrows_as_ua_grows(self, full_results):
        estimates = [
            e for e in estimate_ua_by_era(full_results) if e.mean_gap_c is not None
        ]
        assert estimates[-1].mean_gap_c < estimates[0].mean_gap_c


class TestHelpers:
    def test_summarize_renders_table(self, full_results):
        estimates = estimate_ua_by_era(full_results)
        table = summarize(estimates, full_results.clock)
        assert "UA (W/K)" in table
        assert "pre-mods" in table

    def test_missing_era_returns_none(self):
        assert conductance_increased_after([], "F") is None

    def test_era_validation(self):
        with pytest.raises(ValueError):
            EraEstimate("x", 10.0, 10.0, 0, None, None, None)

    def test_empty_without_lascar_data(self, short_results):
        # The short run ends Mar 3; the logger arrived Mar 1, so this has
        # data -- but a run truncated before arrival must return [].
        import datetime as dt

        from repro import Experiment, ExperimentConfig

        results = Experiment(ExperimentConfig(seed=2)).run(
            until=dt.datetime(2010, 2, 25)
        )
        assert estimate_ua_by_era(results) == []
