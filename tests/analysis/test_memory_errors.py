"""Tests for the Section 4.2.2 memory-error arithmetic."""

import pytest

from repro.analysis.memory_errors import (
    PAPER_RATIO_ONE_IN,
    MemoryErrorEstimate,
    estimate_memory_error_ratio,
    paper_estimate,
)
from repro.workload.archiver import CycleResult, WorkloadLedger
from repro.workload.kernel_tree import KernelSourceTree


class TestPaperEstimate:
    def test_paper_numbers_give_paper_ratio(self):
        est = paper_estimate()
        # 3.2e9 / 6 ~ 533 M; the paper rounds to "around one in 570 million".
        assert est.ratio_one_in == pytest.approx(533e6, rel=0.01)
        assert est.within_factor_of_paper(factor=1.5)

    def test_paper_constant(self):
        assert PAPER_RATIO_ONE_IN == 570e6

    def test_describe_sentence(self):
        text = paper_estimate().describe()
        assert "million" in text and "27627" in text


class TestEstimateFromLedger:
    def _ledger(self, runs, wrong):
        ledger = WorkloadLedger()
        for i in range(runs):
            ok = i >= wrong
            ledger.record(
                CycleResult(float(i), host_id=1, hash_ok=ok,
                            corrupted_block_count=0 if ok else 1, stored=not ok)
            )
        return ledger

    def test_ratio_from_run_census(self):
        tree = KernelSourceTree()
        ledger = self._ledger(runs=1000, wrong=2)
        est = estimate_memory_error_ratio(ledger, tree)
        assert est.total_runs == 1000
        assert est.faulty_archives == 2
        assert est.total_page_ops == 1000 * tree.page_ops_per_cycle()
        assert est.ratio_one_in == pytest.approx(
            1000 * tree.page_ops_per_cycle() / 2
        )

    def test_no_faults_means_no_ratio(self):
        est = estimate_memory_error_ratio(self._ledger(runs=10, wrong=0))
        assert est.ratio_one_in is None
        assert est.fault_probability_per_page_op is None
        assert not est.within_factor_of_paper()
        assert "no faulty archives" in est.describe()

    def test_paper_scale_census_lands_near_paper_ratio(self):
        # 27,627 runs with 5 wrong hashes -> ratio within ~2x of 570 M.
        est = estimate_memory_error_ratio(self._ledger(runs=27_627, wrong=5))
        assert est.within_factor_of_paper(factor=2.0)

    def test_probability_is_inverse_of_ratio(self):
        est = estimate_memory_error_ratio(self._ledger(runs=1000, wrong=4))
        assert est.fault_probability_per_page_op == pytest.approx(
            1.0 / est.ratio_one_in
        )


class TestValidation:
    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            MemoryErrorEstimate(total_runs=-1, total_page_ops=0, faulty_archives=0)
