"""Tests for the fleet-observatory dashboard rendering."""

import numpy as np
import pytest

from repro.analysis.observatory import (
    DASHBOARD_SIGNALS,
    pod_anomalies,
    render_observatory,
    render_phase_profile,
    render_pod_drilldown,
)
from repro.sim.clock import SimClock
from repro.telemetry.hub import Telemetry
from repro.telemetry.timeseries import SeriesRecorder


def make_recorder(n_pods=6, frames=24, hot_pod=None):
    rec = SeriesRecorder({"tent_air_c": n_pods, "outside_temp_c": 1}, capacity=64)
    for i in range(frames):
        temps = np.full(n_pods, 10.0 + 0.1 * (np.arange(n_pods) % 3))
        if hot_pod is not None:
            temps[hot_pod] = 35.0
        rec.record(1800.0 * i, {"tent_air_c": temps, "outside_temp_c": -5.0})
    return rec


class TestPodAnomalies:
    def test_hot_pod_flagged_first(self):
        rec = make_recorder(hot_pod=4)
        rows = pod_anomalies(rec, "tent_air_c")
        assert rows
        pod, z, value = rows[0]
        assert pod == 4
        assert abs(z) >= 3.5
        assert value == pytest.approx(35.0)

    def test_healthy_fleet_has_no_rows(self):
        assert pod_anomalies(make_recorder(), "tent_air_c") == []

    def test_single_row_signals_never_flag(self):
        rec = make_recorder(hot_pod=2)
        assert pod_anomalies(rec, "outside_temp_c") == []

    def test_empty_recorder_has_no_rows(self):
        rec = SeriesRecorder({"tent_air_c": 4}, capacity=8)
        assert pod_anomalies(rec, "tent_air_c") == []


class TestRenderObservatory:
    def test_mentions_known_signals_and_sample_count(self):
        rec = make_recorder()
        text = render_observatory(rec, width=30)
        assert "24 samples" in text
        assert "stride 1" in text
        assert "tent air (fleet median)" in text
        assert "outside air" in text
        # Signals the recorder does not carry are simply absent.
        assert "archive cycles" not in text

    def test_anomaly_table_rendered(self):
        text = render_observatory(make_recorder(hot_pod=1), width=30)
        assert "pod anomalies" in text
        assert "pod     1" in text

    def test_healthy_fleet_says_none(self):
        text = render_observatory(make_recorder(), width=30)
        assert "pod anomalies: none" in text

    def test_clock_renders_date_span(self):
        text = render_observatory(make_recorder(), clock=SimClock(), width=30)
        assert "2009-" in text or "2010-" in text

    def test_empty_recorder_short_circuits(self):
        rec = SeriesRecorder({"tent_air_c": 4}, capacity=8)
        assert "no frames" in render_observatory(rec)

    def test_dashboard_signal_table_is_well_formed(self):
        names = [signal for signal, _, _ in DASHBOARD_SIGNALS]
        assert len(names) == len(set(names))
        for _, unit, desc in DASHBOARD_SIGNALS:
            assert unit and desc


class TestRenderDrilldown:
    def test_chart_contains_both_glyph_series(self):
        rec = make_recorder(hot_pod=3)
        text = render_pod_drilldown(rec, "tent_air_c", 3, width=40, height=10)
        assert "pod 3 vs fleet median" in text
        assert "o" in text and "." in text

    def test_bad_row_rejected(self):
        with pytest.raises(ValueError):
            render_pod_drilldown(make_recorder(), "tent_air_c", 99)


class TestRenderPhaseProfile:
    def test_phases_sorted_by_total_time(self):
        telemetry = Telemetry()
        telemetry.spans.record("fleetscale.weather", 0.010)
        telemetry.spans.record("fleetscale.thermal", 0.100)
        telemetry.spans.record("fleetscale.hazards", 0.050)
        telemetry.spans.record("other.span", 9.0)  # ignored
        text = render_phase_profile(telemetry, frames=10)
        lines = [l for l in text.splitlines() if "fleetscale." in l]
        assert "thermal" in lines[0]
        assert "hazards" in lines[1]
        assert "weather" in lines[2]
        assert "other.span" not in text
        assert "10 frames" in text

    def test_no_spans_is_a_sentence_not_a_crash(self):
        assert "no fleetscale" in render_phase_profile(Telemetry(), frames=0)
