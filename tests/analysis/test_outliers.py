"""Tests for logger-removal outlier detection."""

import numpy as np
import pytest

from repro.analysis.outliers import (
    detect_removal_outliers,
    remove_removal_outliers,
    remove_with_companion,
)
from repro.analysis.series import TimeSeries


def cold_background(n, temp=-5.0):
    return np.full(n, temp)


class TestDetection:
    def test_download_trip_detected(self):
        temps = cold_background(30)
        temps[10:15] = 21.0  # carried indoors
        mask = detect_removal_outliers(temps)
        assert mask[10:15].all()
        assert not mask[:10].any()
        assert not mask[15:].any()

    def test_slow_warm_drift_not_flagged(self):
        # A genuinely warm spring afternoon climbs gradually into the
        # indoor band; no door-jump, no flag.
        temps = np.linspace(5.0, 21.0, 40)
        mask = detect_removal_outliers(temps)
        assert not mask.any()

    def test_trip_at_start_of_record_flagged_when_short(self):
        temps = cold_background(20)
        temps[:3] = 21.0
        mask = detect_removal_outliers(temps)
        assert mask[:3].all()

    def test_long_boundary_stretch_kept(self):
        # A record that *ends* with a week of mild weather is weather.
        temps = np.concatenate([cold_background(10), np.full(20, 19.0)])
        # Entered gradually (no jump >= 4 degC within one step)?  Here the
        # step is 24 degrees, so craft a gradual entry instead.
        temps = np.concatenate([np.linspace(-5, 19, 15), np.full(20, 19.0)])
        mask = detect_removal_outliers(temps)
        assert not mask[-20:].any()

    def test_cold_samples_never_flagged(self):
        temps = cold_background(50, temp=-15.0)
        assert not detect_removal_outliers(temps).any()

    def test_exit_jump_alone_suffices(self):
        # Logger placed indoors before the record started warm... the trip
        # ends with the drop back outdoors.
        temps = np.concatenate([np.full(4, 21.0), cold_background(20)])
        mask = detect_removal_outliers(temps)
        assert mask[:4].all()

    def test_empty_input(self):
        assert detect_removal_outliers(np.zeros(0)).shape == (0,)

    def test_validation(self):
        with pytest.raises(ValueError):
            detect_removal_outliers(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            detect_removal_outliers(np.zeros(3), jump_c=0.0)
        with pytest.raises(ValueError):
            detect_removal_outliers(np.zeros(3), indoor_band_c=(25.0, 18.0))


class TestRemoval:
    def test_remove_returns_clean_series(self):
        temps = cold_background(30)
        temps[10:13] = 21.0
        ts = TimeSeries(60.0 * np.arange(30), temps)
        cleaned = remove_removal_outliers(ts)
        assert len(cleaned) == 27
        assert cleaned.max() < 0.0

    def test_companion_dropped_on_same_timestamps(self):
        temps = cold_background(30)
        temps[10:13] = 21.0
        rh = np.linspace(60.0, 90.0, 30)
        t = 60.0 * np.arange(30)
        temp_ts = TimeSeries(t, temps)
        rh_ts = TimeSeries(t, rh)
        clean_t, clean_rh = remove_with_companion(temp_ts, rh_ts)
        assert len(clean_t) == len(clean_rh) == 27
        assert np.array_equal(clean_t.times, clean_rh.times)

    def test_companion_timestamp_mismatch_rejected(self):
        a = TimeSeries(np.arange(3.0), np.zeros(3))
        b = TimeSeries(np.arange(3.0) + 1.0, np.zeros(3))
        with pytest.raises(ValueError):
            remove_with_companion(a, b)


class TestFleetZScores:
    def test_single_outlier_flagged(self):
        from repro.analysis.outliers import flag_fleet_anomalies, fleet_zscores

        values = np.array([10.0, 10.1, 9.9, 10.0, 10.2, 9.8, 25.0])
        scores = fleet_zscores(values)
        assert abs(scores[-1]) > 3.5
        assert np.abs(scores[:-1]).max() < 3.5
        mask = flag_fleet_anomalies(values)
        assert mask.tolist() == [False] * 6 + [True]

    def test_robust_to_a_contaminated_tail(self):
        from repro.analysis.outliers import fleet_zscores

        # A quarter of the fleet misbehaving must not drag the baseline:
        # the MAD keeps the healthy pods' scores small.
        values = np.array(
            [10.0, 10.1, 9.9, 10.05, 9.95, 10.02, 9.98, 10.03, 9.97]
            + [100.0, 110.0, 120.0]
        )
        scores = fleet_zscores(values)
        assert np.abs(scores[:9]).max() < 3.5
        assert scores[9:].min() > 3.5

    def test_uniform_fleet_scores_all_zero(self):
        from repro.analysis.outliers import fleet_zscores

        assert fleet_zscores(np.full(8, 3.0)).tolist() == [0.0] * 8

    def test_mad_zero_falls_back_to_std(self):
        from repro.analysis.outliers import fleet_zscores

        # More than half the fleet identical -> MAD 0; std still scores
        # the stragglers instead of dividing by zero.
        values = np.array([5.0] * 6 + [6.0, 7.0])
        scores = fleet_zscores(values)
        assert np.isfinite(scores).all()
        assert scores[-1] > 0.0

    def test_empty_and_shape_validation(self):
        from repro.analysis.outliers import fleet_zscores

        assert fleet_zscores(np.zeros(0)).size == 0
        with pytest.raises(ValueError):
            fleet_zscores(np.zeros((2, 2)))

    def test_threshold_must_be_positive(self):
        from repro.analysis.outliers import flag_fleet_anomalies

        with pytest.raises(ValueError):
            flag_fleet_anomalies(np.zeros(3), z_threshold=0.0)
