"""Tests for logger-removal outlier detection."""

import numpy as np
import pytest

from repro.analysis.outliers import (
    detect_removal_outliers,
    remove_removal_outliers,
    remove_with_companion,
)
from repro.analysis.series import TimeSeries


def cold_background(n, temp=-5.0):
    return np.full(n, temp)


class TestDetection:
    def test_download_trip_detected(self):
        temps = cold_background(30)
        temps[10:15] = 21.0  # carried indoors
        mask = detect_removal_outliers(temps)
        assert mask[10:15].all()
        assert not mask[:10].any()
        assert not mask[15:].any()

    def test_slow_warm_drift_not_flagged(self):
        # A genuinely warm spring afternoon climbs gradually into the
        # indoor band; no door-jump, no flag.
        temps = np.linspace(5.0, 21.0, 40)
        mask = detect_removal_outliers(temps)
        assert not mask.any()

    def test_trip_at_start_of_record_flagged_when_short(self):
        temps = cold_background(20)
        temps[:3] = 21.0
        mask = detect_removal_outliers(temps)
        assert mask[:3].all()

    def test_long_boundary_stretch_kept(self):
        # A record that *ends* with a week of mild weather is weather.
        temps = np.concatenate([cold_background(10), np.full(20, 19.0)])
        # Entered gradually (no jump >= 4 degC within one step)?  Here the
        # step is 24 degrees, so craft a gradual entry instead.
        temps = np.concatenate([np.linspace(-5, 19, 15), np.full(20, 19.0)])
        mask = detect_removal_outliers(temps)
        assert not mask[-20:].any()

    def test_cold_samples_never_flagged(self):
        temps = cold_background(50, temp=-15.0)
        assert not detect_removal_outliers(temps).any()

    def test_exit_jump_alone_suffices(self):
        # Logger placed indoors before the record started warm... the trip
        # ends with the drop back outdoors.
        temps = np.concatenate([np.full(4, 21.0), cold_background(20)])
        mask = detect_removal_outliers(temps)
        assert mask[:4].all()

    def test_empty_input(self):
        assert detect_removal_outliers(np.zeros(0)).shape == (0,)

    def test_validation(self):
        with pytest.raises(ValueError):
            detect_removal_outliers(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            detect_removal_outliers(np.zeros(3), jump_c=0.0)
        with pytest.raises(ValueError):
            detect_removal_outliers(np.zeros(3), indoor_band_c=(25.0, 18.0))


class TestRemoval:
    def test_remove_returns_clean_series(self):
        temps = cold_background(30)
        temps[10:13] = 21.0
        ts = TimeSeries(60.0 * np.arange(30), temps)
        cleaned = remove_removal_outliers(ts)
        assert len(cleaned) == 27
        assert cleaned.max() < 0.0

    def test_companion_dropped_on_same_timestamps(self):
        temps = cold_background(30)
        temps[10:13] = 21.0
        rh = np.linspace(60.0, 90.0, 30)
        t = 60.0 * np.arange(30)
        temp_ts = TimeSeries(t, temps)
        rh_ts = TimeSeries(t, rh)
        clean_t, clean_rh = remove_with_companion(temp_ts, rh_ts)
        assert len(clean_t) == len(clean_rh) == 27
        assert np.array_equal(clean_t.times, clean_rh.times)

    def test_companion_timestamp_mismatch_rejected(self):
        a = TimeSeries(np.arange(3.0), np.zeros(3))
        b = TimeSeries(np.arange(3.0) + 1.0, np.zeros(3))
        with pytest.raises(ValueError):
            remove_with_companion(a, b)
