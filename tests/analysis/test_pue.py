"""Tests for the Section 5 PUE arithmetic."""

import pytest

from repro.analysis.pue import (
    FREE_AIR_PLANT,
    PAPER_CLUSTER_PLANT,
    CoolingPlant,
    paper_breakdown,
)


class TestPaperCluster:
    def test_it_load_is_75_kw(self):
        assert PAPER_CLUSTER_PLANT.it_load_kw == 75.0

    def test_cooling_components_sum(self):
        # 6.9 (CRACs) + 44.7 (HVAC chiller) + 3.8 (roof unit) = 55.4 kW.
        assert PAPER_CLUSTER_PLANT.cooling_total_kw == pytest.approx(55.4)

    def test_pue_is_1_74(self):
        # "the new cluster's power usage effectiveness (PUE) rating would
        # be a rather efficient 1.74"
        assert PAPER_CLUSTER_PLANT.pue == pytest.approx(1.74, abs=0.005)

    def test_cooling_overhead_fraction(self):
        assert PAPER_CLUSTER_PLANT.cooling_overhead_fraction == pytest.approx(
            55.4 / 130.4
        )

    def test_describe_table(self):
        text = PAPER_CLUSTER_PLANT.describe()
        assert "75.0 kW" in text
        assert "1.74" in text


class TestFreeAirAlternative:
    def test_free_air_pue_near_unity(self):
        assert 1.0 < FREE_AIR_PLANT.pue < 1.1

    def test_same_it_load(self):
        assert FREE_AIR_PLANT.it_load_kw == PAPER_CLUSTER_PLANT.it_load_kw

    def test_cooling_savings_large(self):
        savings = PAPER_CLUSTER_PLANT.cooling_energy_savings_vs(FREE_AIR_PLANT)
        assert savings > 0.9

    def test_breakdown_rows(self):
        breakdown = paper_breakdown()
        rows = breakdown.summary_rows()
        assert len(rows) == 2
        names, cooling, facility, pues = zip(*rows)
        assert cooling[0] > cooling[1]
        assert pues[0] > pues[1]
        assert breakdown.pue_delta == pytest.approx(pues[0] - pues[1])


class TestCoolingPlant:
    def test_replace_cooling(self):
        plant = PAPER_CLUSTER_PLANT.replace_cooling("fans", {"fans": 2.0})
        assert plant.cooling_total_kw == 2.0
        assert plant.it_load_kw == 75.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CoolingPlant(name="bad", it_load_kw=0.0, cooling_components_kw=())
        with pytest.raises(ValueError):
            CoolingPlant(
                name="bad", it_load_kw=10.0,
                cooling_components_kw=(("crac", -1.0),),
            )

    def test_zero_cooling_savings(self):
        plant = PAPER_CLUSTER_PLANT.replace_cooling("none", {})
        assert plant.cooling_energy_savings_vs(FREE_AIR_PLANT) == 0.0
        assert plant.pue == pytest.approx(1.0)
