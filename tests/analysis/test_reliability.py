"""Tests for the reliability statistics."""

import pytest

from repro.analysis.reliability import (
    Lifetime,
    SurvivalPoint,
    kaplan_meier,
    lifetimes_from_results,
    mtbf_hours,
    rates_are_consistent,
    wilson_interval,
)
from repro.sim.clock import DAY


class TestWilsonInterval:
    def test_paper_census_interval(self):
        # 1 failure in 18 hosts: the interval is wide and contains both
        # the paper's 5.6 % and Intel's 4.46 % -- the statistical meaning
        # of "a comparable rate".
        lo, hi = wilson_interval(1, 18)
        assert lo < 0.0446 < hi
        assert lo < 0.056 < hi

    def test_zero_failures_interval_starts_at_zero(self):
        lo, hi = wilson_interval(0, 18)
        assert lo == 0.0
        assert 0.0 < hi < 0.25

    def test_all_failures_interval_ends_at_one(self):
        lo, hi = wilson_interval(18, 18)
        assert hi == 1.0
        assert 0.75 < lo < 1.0

    def test_interval_narrows_with_more_hosts(self):
        lo_small, hi_small = wilson_interval(10, 180)
        lo_big, hi_big = wilson_interval(100, 1800)
        assert (hi_big - lo_big) < (hi_small - lo_small)

    def test_interval_contains_point_estimate(self):
        lo, hi = wilson_interval(3, 20)
        assert lo < 3 / 20 < hi

    def test_higher_confidence_wider(self):
        lo95, hi95 = wilson_interval(1, 18, confidence=0.95)
        lo99, hi99 = wilson_interval(1, 18, confidence=0.99)
        assert (hi99 - lo99) > (hi95 - lo95)

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(1, 18, confidence=0.42)


class TestRateComparison:
    def test_paper_vs_intel_is_consistent(self):
        # 1/18 vs Intel's 4.46 % of ~900 blades: not distinguishable.
        assert rates_are_consistent(1, 18, 40, 896)

    def test_wildly_different_rates_inconsistent(self):
        assert not rates_are_consistent(15, 18, 40, 896)

    def test_identical_zero_rates_consistent(self):
        assert rates_are_consistent(0, 18, 0, 896)

    def test_validation(self):
        with pytest.raises(ValueError):
            rates_are_consistent(0, 0, 1, 10)


class TestMtbf:
    def test_simple_ratio(self):
        assert mtbf_hours(7200.0 * 10, 2) == pytest.approx(10.0)

    def test_no_failures_yet(self):
        assert mtbf_hours(1e6, 0) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            mtbf_hours(-1.0, 1)
        with pytest.raises(ValueError):
            mtbf_hours(1.0, -1)


class TestKaplanMeier:
    def test_no_failures_flat_curve(self):
        lifetimes = [Lifetime(i, 100.0 * DAY, failed=False) for i in range(5)]
        assert kaplan_meier(lifetimes) == []

    def test_single_failure_steps_once(self):
        lifetimes = [
            Lifetime(1, 10.0, failed=True),
            Lifetime(2, 20.0, failed=False),
            Lifetime(3, 20.0, failed=False),
        ]
        points = kaplan_meier(lifetimes)
        assert len(points) == 1
        assert points[0].survival == pytest.approx(2.0 / 3.0)
        assert points[0].at_risk == 3

    def test_censoring_reduces_risk_set(self):
        lifetimes = [
            Lifetime(1, 10.0, failed=False),  # censored before the failure
            Lifetime(2, 20.0, failed=True),
            Lifetime(3, 30.0, failed=False),
        ]
        points = kaplan_meier(lifetimes)
        # At t=20 only hosts 2 and 3 are at risk.
        assert points[0].at_risk == 2
        assert points[0].survival == pytest.approx(0.5)

    def test_survival_non_increasing(self):
        lifetimes = [Lifetime(i, float(i), failed=i % 2 == 0) for i in range(1, 20)]
        points = kaplan_meier(lifetimes)
        values = [p.survival for p in points]
        assert values == sorted(values, reverse=True)

    def test_empty_input(self):
        assert kaplan_meier([]) == []

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Lifetime(1, -1.0, failed=True)


class TestFromResults:
    def test_one_observation_per_installed_host(self, short_results):
        lifetimes = lifetimes_from_results(short_results)
        installed = [
            hid
            for hid in short_results.tent_host_ids()
            + short_results.basement_host_ids()
            if short_results.fleet.host(hid).installed_at is not None
        ]
        assert len(lifetimes) == len(installed)

    def test_survivors_censored_at_end(self, short_results):
        lifetimes = lifetimes_from_results(short_results)
        for lt in lifetimes:
            host = short_results.fleet.host(lt.host_id)
            if not lt.failed:
                expected = short_results.end_time - host.installed_at
                assert lt.duration_s == pytest.approx(expected)

    def test_full_campaign_has_failures(self, full_results):
        lifetimes = lifetimes_from_results(full_results)
        assert any(lt.failed for lt in lifetimes)
        points = kaplan_meier(lifetimes)
        assert points and points[-1].survival < 1.0
