"""Tests for the reliability statistics."""

import pytest

from repro.analysis.reliability import (
    InterpolatedReading,
    Lifetime,
    ObservationCoverage,
    SurvivalPoint,
    interpolate_readings,
    kaplan_meier,
    lifetimes_from_results,
    mtbf_hours,
    observation_coverage,
    rates_are_consistent,
    wilson_interval,
)
from repro.monitoring.collector import CollectionRound
from repro.monitoring.records import SensorRecord
from repro.sim.clock import DAY


class TestWilsonInterval:
    def test_paper_census_interval(self):
        # 1 failure in 18 hosts: the interval is wide and contains both
        # the paper's 5.6 % and Intel's 4.46 % -- the statistical meaning
        # of "a comparable rate".
        lo, hi = wilson_interval(1, 18)
        assert lo < 0.0446 < hi
        assert lo < 0.056 < hi

    def test_zero_failures_interval_starts_at_zero(self):
        lo, hi = wilson_interval(0, 18)
        assert lo == 0.0
        assert 0.0 < hi < 0.25

    def test_all_failures_interval_ends_at_one(self):
        lo, hi = wilson_interval(18, 18)
        assert hi == 1.0
        assert 0.75 < lo < 1.0

    def test_interval_narrows_with_more_hosts(self):
        lo_small, hi_small = wilson_interval(10, 180)
        lo_big, hi_big = wilson_interval(100, 1800)
        assert (hi_big - lo_big) < (hi_small - lo_small)

    def test_interval_contains_point_estimate(self):
        lo, hi = wilson_interval(3, 20)
        assert lo < 3 / 20 < hi

    def test_higher_confidence_wider(self):
        lo95, hi95 = wilson_interval(1, 18, confidence=0.95)
        lo99, hi99 = wilson_interval(1, 18, confidence=0.99)
        assert (hi99 - lo99) > (hi95 - lo95)

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(1, 18, confidence=0.42)


class TestRateComparison:
    def test_paper_vs_intel_is_consistent(self):
        # 1/18 vs Intel's 4.46 % of ~900 blades: not distinguishable.
        assert rates_are_consistent(1, 18, 40, 896)

    def test_wildly_different_rates_inconsistent(self):
        assert not rates_are_consistent(15, 18, 40, 896)

    def test_identical_zero_rates_consistent(self):
        assert rates_are_consistent(0, 18, 0, 896)

    def test_validation(self):
        with pytest.raises(ValueError):
            rates_are_consistent(0, 0, 1, 10)


class TestMtbf:
    def test_simple_ratio(self):
        assert mtbf_hours(7200.0 * 10, 2) == pytest.approx(10.0)

    def test_no_failures_yet(self):
        assert mtbf_hours(1e6, 0) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            mtbf_hours(-1.0, 1)
        with pytest.raises(ValueError):
            mtbf_hours(1.0, -1)


class TestKaplanMeier:
    def test_no_failures_flat_curve(self):
        lifetimes = [Lifetime(i, 100.0 * DAY, failed=False) for i in range(5)]
        assert kaplan_meier(lifetimes) == []

    def test_single_failure_steps_once(self):
        lifetimes = [
            Lifetime(1, 10.0, failed=True),
            Lifetime(2, 20.0, failed=False),
            Lifetime(3, 20.0, failed=False),
        ]
        points = kaplan_meier(lifetimes)
        assert len(points) == 1
        assert points[0].survival == pytest.approx(2.0 / 3.0)
        assert points[0].at_risk == 3

    def test_censoring_reduces_risk_set(self):
        lifetimes = [
            Lifetime(1, 10.0, failed=False),  # censored before the failure
            Lifetime(2, 20.0, failed=True),
            Lifetime(3, 30.0, failed=False),
        ]
        points = kaplan_meier(lifetimes)
        # At t=20 only hosts 2 and 3 are at risk.
        assert points[0].at_risk == 2
        assert points[0].survival == pytest.approx(0.5)

    def test_survival_non_increasing(self):
        lifetimes = [Lifetime(i, float(i), failed=i % 2 == 0) for i in range(1, 20)]
        points = kaplan_meier(lifetimes)
        values = [p.survival for p in points]
        assert values == sorted(values, reverse=True)

    def test_empty_input(self):
        assert kaplan_meier([]) == []

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Lifetime(1, -1.0, failed=True)


class TestFromResults:
    def test_one_observation_per_installed_host(self, short_results):
        lifetimes = lifetimes_from_results(short_results)
        installed = [
            hid
            for hid in short_results.tent_host_ids()
            + short_results.basement_host_ids()
            if short_results.fleet.host(hid).installed_at is not None
        ]
        assert len(lifetimes) == len(installed)

    def test_survivors_censored_at_end(self, short_results):
        lifetimes = lifetimes_from_results(short_results)
        for lt in lifetimes:
            host = short_results.fleet.host(lt.host_id)
            if not lt.failed:
                expected = short_results.end_time - host.installed_at
                assert lt.duration_s == pytest.approx(expected)

    def test_full_campaign_has_failures(self, full_results):
        lifetimes = lifetimes_from_results(full_results)
        assert any(lt.failed for lt in lifetimes)
        points = kaplan_meier(lifetimes)
        assert points and points[-1].survival < 1.0


def _round(time, collected=(), unreachable=(), down=(), degraded=()):
    return CollectionRound(
        time=time,
        collected_host_ids=tuple(collected),
        unreachable_host_ids=tuple(unreachable),
        down_host_ids=tuple(down),
        sensor_anomaly_host_ids=(),
        degraded_host_ids=tuple(degraded),
    )


class TestObservationCoverage:
    def test_fully_observed_host(self):
        rounds = [_round(t * 1200.0, collected=(1,)) for t in range(5)]
        (cov,) = observation_coverage(rounds)
        assert cov == ObservationCoverage(1, 5, 5, 0)
        assert cov.coverage == 1.0

    def test_missed_rounds_lower_coverage(self):
        rounds = [
            _round(0.0, collected=(1,)),
            _round(1200.0, down=(1,)),
            _round(2400.0, down=(1,)),
            _round(3600.0, collected=(1,)),
        ]
        (cov,) = observation_coverage(rounds)
        assert cov.rounds_expected == 4
        assert cov.rounds_observed == 2
        assert cov.coverage == 0.5
        assert cov.longest_gap_rounds == 2

    def test_degraded_rounds_count_as_missed(self):
        rounds = [
            _round(0.0, collected=(1,)),
            _round(1200.0, degraded=(1,)),
            _round(2400.0, collected=(1,)),
        ]
        (cov,) = observation_coverage(rounds)
        assert cov.rounds_expected == 3
        assert cov.rounds_observed == 2
        assert cov.longest_gap_rounds == 1

    def test_gap_streak_resets_on_observation(self):
        rounds = [
            _round(0.0, down=(1,)),
            _round(1200.0, collected=(1,)),
            _round(2400.0, down=(1,)),
            _round(3600.0, down=(1,)),
            _round(4800.0, down=(1,)),
            _round(6000.0, collected=(1,)),
        ]
        (cov,) = observation_coverage(rounds)
        assert cov.longest_gap_rounds == 3

    def test_hosts_ordered_by_id(self):
        rounds = [_round(0.0, collected=(3, 1), unreachable=(2,))]
        covs = observation_coverage(rounds)
        assert [c.host_id for c in covs] == [1, 2, 3]

    def test_never_expected_defaults_to_full_coverage(self):
        assert ObservationCoverage(9, 0, 0, 0).coverage == 1.0

    def test_campaign_coverage_is_consistent(self, short_results):
        rounds = short_results.monitoring.rounds
        covs = observation_coverage(rounds)
        assert covs
        for cov in covs:
            assert 0.0 < cov.coverage <= 1.0
            # Observed tallies agree with a direct recount.
            assert cov.rounds_observed == sum(
                1 for r in rounds if cov.host_id in r.collected_host_ids
            )
        # Without link faults the only misses are genuine hardware
        # outages; most of the fleet is watched every single round.
        assert sum(1 for c in covs if c.coverage == 1.0) >= len(covs) // 2


def _rec(time, temp, host_id=1):
    return SensorRecord(time=time, host_id=host_id, cpu_temp_c=temp)


class TestInterpolateReadings:
    def test_contiguous_series_passes_through(self):
        records = [_rec(t * 1200.0, 30.0 + t) for t in range(4)]
        out = interpolate_readings(records)
        assert [(p.time, p.cpu_temp_c, p.observed) for p in out] == [
            (t * 1200.0, 30.0 + t, True) for t in range(4)
        ]

    def test_single_gap_filled_linearly(self):
        records = [_rec(0.0, 30.0), _rec(3600.0, 36.0)]  # 2 missed rounds
        out = interpolate_readings(records)
        assert len(out) == 4
        synth = [p for p in out if not p.observed]
        assert [p.time for p in synth] == [1200.0, 2400.0]
        assert [p.cpu_temp_c for p in synth] == pytest.approx([32.0, 34.0])

    def test_wide_gap_left_open_when_capped(self):
        records = [_rec(0.0, 30.0), _rec(12000.0, 40.0)]  # 9 missed rounds
        out = interpolate_readings(records, max_gap_rounds=3)
        assert len(out) == 2
        assert all(p.observed for p in out)

    def test_mute_readings_are_not_anchors(self):
        records = [_rec(0.0, 30.0), _rec(1200.0, None), _rec(2400.0, 32.0)]
        out = interpolate_readings(records)
        times = [p.time for p in out]
        assert 1200.0 in times  # the hole is interpolated over
        filled = next(p for p in out if p.time == 1200.0)
        assert not filled.observed
        assert filled.cpu_temp_c == pytest.approx(31.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            interpolate_readings([], period_s=0.0)
        with pytest.raises(ValueError):
            interpolate_readings([], max_gap_rounds=-1)

    def test_empty_and_single_records(self):
        assert interpolate_readings([]) == []
        out = interpolate_readings([_rec(0.0, 30.0)])
        assert len(out) == 1 and out[0].observed
