"""Tests for the seed-sweep aggregator."""

import datetime as dt

import pytest

from repro.analysis.seedsweep import (
    SeedOutcome,
    SweepSummary,
    outcome_from_results,
    sweep_seeds,
)


@pytest.fixture(scope="module")
def small_sweep():
    return sweep_seeds(seeds=[1, 2], until=dt.datetime(2010, 2, 24))


class TestSeedOutcome:
    def test_rates(self):
        outcome = SeedOutcome(
            seed=1, hosts_installed=18, hosts_failed=1,
            wrong_hashes=5, total_runs=27_627, sensor_latches=1,
        )
        assert outcome.failure_rate_percent == pytest.approx(5.6, abs=0.1)
        assert outcome.wrong_hash_rate == pytest.approx(5 / 27_627)

    def test_zero_denominators(self):
        outcome = SeedOutcome(1, 0, 0, 0, 0, 0)
        assert outcome.failure_rate_percent == 0.0
        assert outcome.wrong_hash_rate == 0.0


class TestSweep:
    def test_one_outcome_per_seed(self, small_sweep):
        assert [o.seed for o in small_sweep.outcomes] == [1, 2]

    def test_outcomes_reflect_real_runs(self, small_sweep):
        for outcome in small_sweep.outcomes:
            assert outcome.hosts_installed == 18
            assert outcome.total_runs > 500  # the Feb 19 trio ran for days

    def test_pooled_interval_is_a_probability_band(self, small_sweep):
        lo, hi = small_sweep.pooled_failure_interval()
        assert 0.0 <= lo <= hi <= 1.0

    def test_describe_table(self, small_sweep):
        text = small_sweep.describe()
        assert "pooled failure rate" in text
        assert "5.6" in text

    def test_outcome_from_results(self, short_results):
        outcome = outcome_from_results(7, short_results)
        assert outcome.hosts_installed == 18
        assert outcome.wrong_hashes == short_results.ledger.total_wrong_hashes

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            sweep_seeds(seeds=[])
        with pytest.raises(ValueError):
            SweepSummary(outcomes=())

    def test_paper_rate_inside_pooled_band_of_paper_horizon(self, full_results):
        # The default run's own census should sit inside its interval.
        summary = SweepSummary(outcomes=(outcome_from_results(7, full_results),))
        census = full_results.overall_census()
        assert summary.rate_within(census.failure_rate_percent)
