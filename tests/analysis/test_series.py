"""Tests for the TimeSeries container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.series import TimeSeries
from repro.sim.clock import DAY, HOUR, SimClock


def make_series(n=10, start=0.0, step=600.0, values=None):
    times = start + step * np.arange(n)
    if values is None:
        values = np.sin(np.arange(n))
    return TimeSeries(times, np.asarray(values, dtype=float))


class TestConstruction:
    def test_parallel_arrays(self):
        ts = make_series(5)
        assert len(ts) == 5
        assert not ts.empty

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries(np.arange(3.0), np.arange(4.0))

    def test_non_increasing_times_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries(np.array([0.0, 2.0, 1.0]), np.zeros(3))

    def test_duplicate_times_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries(np.array([0.0, 1.0, 1.0]), np.zeros(3))

    def test_from_pairs(self):
        ts = TimeSeries.from_pairs([(0.0, 1.0), (60.0, 2.0)])
        assert list(ts) == [(0.0, 1.0), (60.0, 2.0)]

    def test_from_empty_pairs(self):
        assert TimeSeries.from_pairs([]).empty


class TestStatistics:
    def test_min_max_mean_std(self):
        ts = make_series(values=[1.0, 2.0, 3.0, 4.0], n=4)
        assert ts.min() == 1.0
        assert ts.max() == 4.0
        assert ts.mean() == 2.5
        assert ts.std() == pytest.approx(np.std([1, 2, 3, 4]))

    def test_empty_statistics_raise(self):
        empty = TimeSeries(np.zeros(0), np.zeros(0))
        for op in (empty.min, empty.max, empty.mean, empty.std):
            with pytest.raises(ValueError):
                op()


class TestSelection:
    def test_window_half_open(self):
        ts = make_series(n=5, step=10.0)
        window = ts.window(10.0, 30.0)
        assert list(window.times) == [10.0, 20.0]

    def test_window_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            make_series().window(10.0, 0.0)

    def test_where_mask(self):
        ts = make_series(n=4, values=[1.0, -1.0, 2.0, -2.0])
        positive = ts.where(ts.values > 0)
        assert list(positive.values) == [1.0, 2.0]

    def test_where_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            make_series(n=4).where(np.array([True, False]))


class TestResample:
    def test_interpolates_linearly(self):
        ts = TimeSeries(np.array([0.0, 10.0]), np.array([0.0, 10.0]))
        out = ts.resample(np.array([5.0]))
        assert out.values[0] == pytest.approx(5.0)

    def test_grid_outside_span_rejected(self):
        ts = make_series(n=3, step=10.0)
        with pytest.raises(ValueError):
            ts.resample(np.array([-5.0]))


class TestRollingMean:
    def test_constant_series_unchanged(self):
        ts = make_series(n=20, values=np.full(20, 3.0))
        smoothed = ts.rolling_mean(HOUR)
        assert np.allclose(smoothed.values, 3.0)

    def test_smooths_alternating_series(self):
        values = np.tile([0.0, 10.0], 50)
        ts = TimeSeries(600.0 * np.arange(100), values)
        smoothed = ts.rolling_mean(2 * HOUR)
        assert smoothed.values[10:-10].std() < ts.values.std() / 2

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            make_series().rolling_mean(0.0)

    @given(st.lists(st.floats(min_value=-50.0, max_value=50.0), min_size=2, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_rolling_mean_bounded_by_extremes(self, values):
        ts = TimeSeries(60.0 * np.arange(len(values)), np.array(values))
        smoothed = ts.rolling_mean(10 * 60.0)
        assert smoothed.values.min() >= min(values) - 1e-9
        assert smoothed.values.max() <= max(values) + 1e-9


class TestDailyAggregate:
    def test_daily_min(self):
        clock = SimClock()
        times = np.array([0.0, HOUR, DAY, DAY + HOUR])
        values = np.array([5.0, 3.0, 10.0, 20.0])
        ts = TimeSeries(times, values)
        daily = ts.daily_aggregate(clock, np.min)
        assert list(daily.times) == [0.0, DAY]
        assert list(daily.values) == [3.0, 10.0]

    def test_days_without_samples_skipped(self):
        clock = SimClock()
        ts = TimeSeries(np.array([0.0, 3 * DAY]), np.array([1.0, 2.0]))
        daily = ts.daily_aggregate(clock, np.mean)
        assert list(daily.times) == [0.0, 3 * DAY]


class TestAlignedDifference:
    def test_difference_on_shared_span(self):
        a = TimeSeries(np.array([0.0, 10.0, 20.0]), np.array([5.0, 6.0, 7.0]))
        b = TimeSeries(np.array([0.0, 20.0]), np.array([1.0, 3.0]))
        diff = a.aligned_difference(b)
        assert list(diff.values) == pytest.approx([4.0, 4.0, 4.0])

    def test_non_overlapping_rejected(self):
        a = TimeSeries(np.array([0.0, 1.0]), np.zeros(2))
        b = TimeSeries(np.array([100.0, 101.0]), np.zeros(2))
        with pytest.raises(ValueError):
            a.aligned_difference(b)

    def test_clips_to_overlap(self):
        a = TimeSeries(np.array([0.0, 10.0, 20.0, 30.0]), np.ones(4))
        b = TimeSeries(np.array([10.0, 20.0]), np.zeros(2))
        diff = a.aligned_difference(b)
        assert list(diff.times) == [10.0, 20.0]
