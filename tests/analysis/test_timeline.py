"""Tests for the census-timeline analysis."""

import pytest

from repro.analysis.timeline import CensusPoint, census_timeline, describe_timeline
from repro.sim.clock import DAY


class TestCensusTimeline:
    def test_weekly_points_cover_the_campaign(self, full_results):
        points = census_timeline(full_results, period_days=7.0)
        campaign_days = (
            full_results.end_time
            - full_results.clock.to_seconds(full_results.config.test_start)
        ) / DAY
        # Weekly points plus the closing end-of-campaign point.
        assert len(points) in (int(campaign_days // 7), int(campaign_days // 7) + 1)
        assert points[-1].time == pytest.approx(full_results.end_time)

    def test_installed_hosts_grow_to_eighteen(self, full_results):
        points = census_timeline(full_results)
        installed = [p.hosts_installed for p in points]
        assert installed == sorted(installed)
        assert installed[0] >= 6  # the Feb 19 pairs are in by week one
        assert installed[-1] == 18

    def test_cumulative_quantities_monotone(self, full_results):
        points = census_timeline(full_results)
        for attr in ("hosts_failed", "failure_events", "wrong_hashes", "runs"):
            values = [getattr(p, attr) for p in points]
            assert values == sorted(values), attr

    def test_final_point_matches_the_ledger(self, full_results):
        points = census_timeline(full_results)
        final = points[-1]
        assert final.wrong_hashes == full_results.ledger.total_wrong_hashes
        assert final.hosts_failed == full_results.overall_census().hosts_failed

    def test_snapshot_week_agrees_with_snapshot(self, full_results):
        snapshot = full_results.snapshot
        points = census_timeline(full_results)
        at_snapshot = max(
            (p for p in points if p.time <= snapshot.time), key=lambda p: p.time
        )
        assert at_snapshot.hosts_failed == len(snapshot.failed_host_ids)

    def test_rate_property(self):
        point = CensusPoint(0.0, 18, 1, 2, 5, 1000)
        assert point.failure_rate_percent == pytest.approx(100.0 / 18)
        empty = CensusPoint(0.0, 0, 0, 0, 0, 0)
        assert empty.failure_rate_percent == 0.0

    def test_invalid_period_rejected(self, full_results):
        with pytest.raises(ValueError):
            census_timeline(full_results, period_days=0.0)

    def test_describe_renders_table(self, full_results):
        points = census_timeline(full_results)
        table = describe_timeline(points, full_results.clock)
        assert "failed" in table
        assert "2010-" in table


class TestObservedFraction:
    def test_defaults_to_fully_observed(self):
        point = CensusPoint(0.0, 18, 1, 2, 5, 1000)
        assert point.observed_fraction == 1.0

    def test_clean_run_is_nearly_fully_observed(self, full_results):
        points = census_timeline(full_results)
        for point in points:
            assert 0.0 < point.observed_fraction <= 1.0
        # Hardware outages are rare: the campaign-wide cumulative
        # fraction stays high even though individual hosts die.
        assert points[-1].observed_fraction > 0.95

    def test_describe_shows_observed_column(self, full_results):
        points = census_timeline(full_results)
        table = describe_timeline(points, full_results.clock)
        assert "observed" in table
        assert "%" in table
