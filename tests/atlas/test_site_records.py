"""Tests for the portable atlas site records."""

import dataclasses

import pytest

from repro.atlas.records import ATLAS_SCHEMA, SiteRecord, site_record_from_json_dict


def _record(**overrides):
    base = dict(
        schema=ATLAS_SCHEMA,
        site="site-0001",
        spec_digest="ab" * 32,
        seed=42,
        latitude_deg=51.2,
        intake_limit_c=27.0,
        hours_total=8761,
        hours_free=8000,
        outside_min_c=-15.0,
        outside_max_c=31.0,
        pue_baseline=1.7387,
        pue_economizer=1.1,
        electricity_price_usd_per_kwh=0.12,
        savings_kwh_per_year=400_000.0,
        savings_usd_per_year=48_000.0,
        savings_fraction=0.85,
        elapsed_s=0.25,
    )
    base.update(overrides)
    return SiteRecord(**base)


class TestSiteRecord:
    def test_free_fraction_and_risk_proxy(self):
        record = _record()
        assert record.free_fraction == pytest.approx(8000 / 8761)
        assert record.hours_above_limit == 761

    def test_json_round_trip(self):
        record = _record()
        assert site_record_from_json_dict(record.to_json_dict()) == record

    def test_elapsed_excluded_from_equality(self):
        # A cache hit (elapsed from the original run) must compare equal
        # to the fresh computation it stands in for.
        assert _record(elapsed_s=1.0) == _record(elapsed_s=99.0)

    def test_malformed_dict_raises(self):
        data = _record().to_json_dict()
        del data["hours_total"]
        with pytest.raises(TypeError):
            site_record_from_json_dict(data)

    def test_zero_hours_rejected(self):
        with pytest.raises(ValueError):
            _record(hours_total=0, hours_free=0)

    def test_free_hours_bounded(self):
        with pytest.raises(ValueError):
            _record(hours_free=9000)
