"""Tests for the atlas sweep riding the runner's task plane."""

import os
import pickle

import pytest

from repro.atlas.sweep import (
    SITE_RECORD_CODEC,
    AtlasSpec,
    execute_site_attempt,
    run_atlas,
    specs_for_sites,
)
from repro.climate.sites import HELSINKI_FULL_YEAR
from repro.runner.pool import WorkItem


@pytest.fixture(scope="module")
def specs():
    return specs_for_sites(6, seed=7)


@pytest.fixture(scope="module")
def baseline(specs):
    return run_atlas(specs, jobs=1)


class TestSpecs:
    def test_specs_are_deterministic(self, specs):
        assert specs_for_sites(6, seed=7) == specs

    def test_spec_prefix_stable_as_atlas_grows(self, specs):
        assert specs_for_sites(12, seed=7)[:6] == specs

    def test_sites_get_distinct_weather_seeds(self, specs):
        seeds = {spec.seed for spec in specs}
        assert len(seeds) == len(specs)

    def test_cache_keys_distinct_and_filename_safe(self, specs):
        keys = [spec.cache_key() for spec in specs]
        assert len(set(keys)) == len(keys)
        for key in keys:
            assert all(ch.isalnum() or ch == "-" for ch in key)

    def test_scoring_policy_changes_the_digest(self):
        lax = AtlasSpec(
            profile=HELSINKI_FULL_YEAR,
            electricity_price_usd_per_kwh=0.1,
            intake_limit_c=35.0,
        )
        strict = AtlasSpec(
            profile=HELSINKI_FULL_YEAR,
            electricity_price_usd_per_kwh=0.1,
            intake_limit_c=20.0,
        )
        assert lax.spec_digest() != strict.spec_digest()

    def test_spec_is_picklable(self, specs):
        assert pickle.loads(pickle.dumps(specs[0])) == specs[0]

    def test_label_names_the_site(self, specs):
        assert specs[0].label == specs[0].profile.name

    def test_non_positive_price_rejected(self):
        with pytest.raises(ValueError):
            AtlasSpec(profile=HELSINKI_FULL_YEAR, electricity_price_usd_per_kwh=0.0)


class TestWorker:
    def test_stock_profile_scores_like_the_analysis_layer(self):
        from repro.analysis.freecooling import assess_site

        spec = AtlasSpec(
            profile=HELSINKI_FULL_YEAR, electricity_price_usd_per_kwh=0.1, seed=0
        )
        record = execute_site_attempt(WorkItem(index=0, spec=spec))
        assessment = assess_site(HELSINKI_FULL_YEAR, seed=0)
        assert record.hours_free == assessment.hours_free
        assert record.savings_fraction == pytest.approx(
            assessment.cooling_energy_savings
        )
        assert record.spec_digest == spec.spec_digest()

    def test_codec_round_trips_and_validates(self):
        spec = AtlasSpec(
            profile=HELSINKI_FULL_YEAR, electricity_price_usd_per_kwh=0.1, seed=0
        )
        record = execute_site_attempt(WorkItem(index=0, spec=spec))
        decoded = SITE_RECORD_CODEC.decode(SITE_RECORD_CODEC.encode(record))
        assert decoded == record
        assert SITE_RECORD_CODEC.validate(spec, decoded)
        other = AtlasSpec(
            profile=HELSINKI_FULL_YEAR,
            electricity_price_usd_per_kwh=0.1,
            intake_limit_c=35.0,
        )
        assert not SITE_RECORD_CODEC.validate(other, decoded)


class TestSweep:
    def test_records_in_spec_order(self, specs, baseline):
        assert [r.site for r in baseline.records] == [s.label for s in specs]

    def test_parallel_matches_serial(self, specs, baseline):
        pooled = run_atlas(specs, jobs=3)
        assert pooled.records == baseline.records

    def test_cache_serves_identical_records(self, specs, baseline, tmp_path):
        cache = str(tmp_path / "atlas")
        cold = run_atlas(specs, jobs=1, cache_dir=cache)
        assert (cold.cache_hits, cold.cache_misses) == (0, len(specs))
        warm = run_atlas(specs, jobs=1, cache_dir=cache)
        assert (warm.cache_hits, warm.cache_misses) == (len(specs), 0)
        assert warm.records == cold.records == baseline.records

    def test_partial_cache_resumes_to_identical_records(
        self, specs, baseline, tmp_path
    ):
        # The kill-and-resume contract: drop half the cache (as if the
        # sweep died mid-flight) and rerun -- hits plus recomputation
        # must reproduce the uninterrupted result exactly.
        cache = str(tmp_path / "atlas")
        run_atlas(specs, jobs=1, cache_dir=cache)
        entries = sorted(
            n for n in os.listdir(cache) if n.endswith(".json")
        )
        for name in entries[: len(entries) // 2]:
            os.unlink(os.path.join(cache, name))
        resumed = run_atlas(specs, jobs=2, cache_dir=cache)
        assert resumed.cache_hits > 0
        assert resumed.cache_misses > 0
        assert resumed.records == baseline.records

    def test_progress_events_cover_every_site(self, specs):
        events = []
        run_atlas(specs, jobs=1, progress=events.append)
        assert [e["kind"] for e in events] == ["completed"] * len(specs)
        assert {e["label"] for e in events} == {s.label for s in specs}
