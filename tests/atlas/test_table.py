"""Tests for the ranked feasibility table."""

import dataclasses
import itertools

import pytest

from repro.atlas.records import ATLAS_SCHEMA, SiteRecord
from repro.atlas.table import rank_records, render_atlas_table


def _record(site, hours_free, usd=10_000.0):
    return SiteRecord(
        schema=ATLAS_SCHEMA,
        site=site,
        spec_digest="00" * 32,
        seed=0,
        latitude_deg=45.0,
        intake_limit_c=27.0,
        hours_total=8760,
        hours_free=hours_free,
        outside_min_c=-5.0,
        outside_max_c=30.0,
        pue_baseline=1.74,
        pue_economizer=1.1,
        electricity_price_usd_per_kwh=0.1,
        savings_kwh_per_year=100_000.0,
        savings_usd_per_year=usd,
        savings_fraction=0.5,
    )


class TestRanking:
    def test_best_site_first(self):
        ranked = rank_records(
            [_record("cold", 8000), _record("hot", 1000), _record("mild", 5000)]
        )
        assert [r.site for r in ranked] == ["cold", "mild", "hot"]

    def test_dollar_savings_break_fraction_ties(self):
        ranked = rank_records(
            [_record("cheap-power", 8000, usd=5_000.0),
             _record("dear-power", 8000, usd=50_000.0)]
        )
        assert [r.site for r in ranked] == ["dear-power", "cheap-power"]

    def test_permutation_invariant(self):
        records = [
            _record("aa", 8000), _record("bb", 8000), _record("cc", 3000)
        ]
        reference = [r.site for r in rank_records(records)]
        for ordering in itertools.permutations(records):
            assert [r.site for r in rank_records(list(ordering))] == reference


class TestRendering:
    def test_table_lists_every_site_ranked(self):
        table = render_atlas_table(
            [_record("worst", 100), _record("best", 8000)]
        )
        lines = table.splitlines()
        assert "free%" in lines[0] and "USD/yr saved" in lines[0]
        assert lines[2].split()[1] == "best"
        assert lines[3].split()[1] == "worst"

    def test_top_truncates_but_notes_the_rest(self):
        table = render_atlas_table(
            [_record(f"site-{i}", 100 * i) for i in range(5)], top=2
        )
        assert len([l for l in table.splitlines() if l.startswith(" ")]) >= 2
        assert "3 more site(s) not shown" in table

    def test_rendering_ignores_wall_clock(self):
        fast = _record("x", 4000)
        slow = dataclasses.replace(fast, elapsed_s=99.9)
        assert render_atlas_table([fast]) == render_atlas_table([slow])

    def test_empty_records_rejected(self):
        with pytest.raises(ValueError):
            render_atlas_table([])
