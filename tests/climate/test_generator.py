"""Tests for the synthetic weather generator."""

import datetime as dt

import numpy as np
import pytest

from repro.climate.generator import WeatherGenerator, WeatherSample, solar_elevation_deg
from repro.climate.profiles import HELSINKI_2010
from repro.sim.clock import DAY, HOUR, SimClock
from repro.sim.rng import RngStreams


@pytest.fixture(scope="module")
def weather():
    return WeatherGenerator(HELSINKI_2010, RngStreams(7), SimClock())


@pytest.fixture(scope="module")
def campaign_times(weather):
    clock = SimClock()
    start = clock.at(2010, 2, 12)
    end = clock.at(2010, 5, 12)
    return np.arange(start, end, HOUR)


class TestDeterminism:
    def test_same_seed_reproduces_bitwise(self):
        a = WeatherGenerator(HELSINKI_2010, RngStreams(3))
        b = WeatherGenerator(HELSINKI_2010, RngStreams(3))
        t = SimClock().at(2010, 3, 1, 12)
        assert a.sample(t) == b.sample(t)

    def test_different_seeds_differ(self):
        a = WeatherGenerator(HELSINKI_2010, RngStreams(3))
        b = WeatherGenerator(HELSINKI_2010, RngStreams(4))
        t = SimClock().at(2010, 3, 1, 12)
        assert a.temperature(t) != b.temperature(t)


class TestPhysicalInvariants:
    def test_dewpoint_never_exceeds_temperature(self, weather, campaign_times):
        temp = weather.temperature(campaign_times)
        dew = weather.dewpoint(campaign_times)
        assert np.all(dew <= temp + 1e-9)

    def test_rh_within_bounds(self, weather, campaign_times):
        rh = weather.relative_humidity(campaign_times)
        assert np.all(rh >= 0.0) and np.all(rh <= 100.0)

    def test_wind_positive(self, weather, campaign_times):
        assert np.all(weather.wind_speed(campaign_times) > 0.0)

    def test_solar_non_negative(self, weather, campaign_times):
        assert np.all(weather.solar_irradiance(campaign_times) >= 0.0)

    def test_solar_zero_at_night(self, weather):
        t = SimClock().at(2010, 2, 20, 1, 0)  # 1 a.m. in February
        assert weather.solar_irradiance(t) == 0.0

    def test_solar_positive_at_spring_noon(self, weather):
        t = SimClock().at(2010, 4, 20, 12, 0)
        assert weather.solar_irradiance(t) > 20.0

    def test_cloud_fraction_in_unit_interval(self, weather, campaign_times):
        cloud = weather.cloud_fraction(campaign_times)
        assert np.all(cloud >= 0.0) and np.all(cloud <= 1.0)


class TestPaperAnchors:
    def test_prototype_weekend_is_deeply_cold(self, weather):
        clock = SimClock()
        t = np.arange(clock.at(2010, 2, 12, 16), clock.at(2010, 2, 15, 10), 600.0)
        temps = weather.temperature(t)
        # Paper: minimum -10.2 degC, average -9.2 degC.
        assert temps.mean() == pytest.approx(-9.2, abs=2.5)
        assert temps.min() == pytest.approx(-10.2, abs=4.0)

    def test_late_february_snap_reaches_about_minus_22(self, weather, campaign_times):
        feb = campaign_times[campaign_times < SimClock().at(2010, 3, 1)]
        assert weather.temperature(feb).min() == pytest.approx(-22.0, abs=3.0)

    def test_spring_is_warmer_than_winter(self, weather):
        clock = SimClock()
        feb = np.arange(clock.at(2010, 2, 12), clock.at(2010, 2, 26), HOUR)
        may = np.arange(clock.at(2010, 5, 1), clock.at(2010, 5, 12), HOUR)
        assert weather.temperature(may).mean() > weather.temperature(feb).mean() + 8.0

    def test_high_humidity_episodes_occur(self, weather, campaign_times):
        # Section 5: "relative humidities above 80% or 90%" were seen.
        rh = weather.relative_humidity(campaign_times)
        assert (rh > 90.0).mean() > 0.05


class TestQueries:
    def test_scalar_query_returns_float(self, weather):
        t = SimClock().at(2010, 3, 1)
        assert isinstance(weather.temperature(t), float)

    def test_array_query_returns_array(self, weather):
        t = SimClock().at(2010, 3, 1) + np.arange(3) * HOUR
        assert weather.temperature(t).shape == (3,)

    def test_out_of_span_raises(self, weather):
        with pytest.raises(ValueError):
            weather.temperature(weather.end_time + DAY)

    def test_sample_bundles_consistent_state(self, weather):
        t = SimClock().at(2010, 3, 1, 12)
        sample = weather.sample(t)
        assert isinstance(sample, WeatherSample)
        assert sample.temp_c == pytest.approx(weather.temperature(t))
        assert sample.dewpoint_c <= sample.temp_c

    def test_series_matches_individual_samples(self, weather):
        clock = SimClock()
        times = [clock.at(2010, 3, 1), clock.at(2010, 3, 2)]
        series = weather.series(times)
        assert [s.time for s in series] == times
        assert series[0] == weather.sample(times[0])

    def test_sample_validation_rejects_dewpoint_above_temp(self):
        with pytest.raises(ValueError):
            WeatherSample(
                time=0.0, temp_c=0.0, dewpoint_c=5.0, rh_percent=100.0,
                wind_ms=1.0, solar_wm2=0.0, cloud_fraction=0.5,
            )


class TestSolarElevation:
    def test_midnight_sun_absent_in_helsinki_february(self):
        assert solar_elevation_deg(60.2, 43.0, 0.0) < 0.0

    def test_noon_higher_than_morning(self):
        noon = solar_elevation_deg(60.2, 100.0, 12.0)
        morning = solar_elevation_deg(60.2, 100.0, 8.0)
        assert noon > morning

    def test_spring_noon_higher_than_winter_noon(self):
        winter = solar_elevation_deg(60.2, 43.0, 12.0)
        spring = solar_elevation_deg(60.2, 110.0, 12.0)
        assert spring > winter + 15.0
