"""Tests for the precipitation process and its enclosure coupling."""

import numpy as np
import pytest

from repro.climate.generator import WeatherGenerator, WeatherSample
from repro.climate.profiles import HELSINKI_2010
from repro.sim.clock import HOUR, SimClock
from repro.sim.rng import RngStreams
from repro.thermal.enclosure import BasementMachineRoom, OutdoorAmbient, PlasticBoxShelter
from repro.thermal.tent import Tent


@pytest.fixture(scope="module")
def weather():
    return WeatherGenerator(HELSINKI_2010, RngStreams(7))


@pytest.fixture(scope="module")
def campaign_times():
    clock = SimClock()
    return np.arange(clock.at(2010, 2, 12), clock.at(2010, 5, 12), HOUR)


class TestPrecipitationProcess:
    def test_non_negative_everywhere(self, weather, campaign_times):
        assert np.all(np.asarray(weather.precipitation(campaign_times)) >= 0.0)

    def test_it_does_precipitate_in_a_finnish_winter(self, weather, campaign_times):
        precip = np.asarray(weather.precipitation(campaign_times))
        wet_fraction = (precip > 0.0).mean()
        assert 0.02 < wet_fraction < 0.5

    def test_precipitation_requires_cloud(self, weather, campaign_times):
        precip = np.asarray(weather.precipitation(campaign_times))
        cloud = np.asarray(weather.cloud_fraction(campaign_times))
        assert np.all(cloud[precip > 0.1] > 0.6)

    def test_snow_flag_follows_temperature(self, weather, campaign_times):
        snowy = 0
        for t in campaign_times:
            sample = weather.sample(float(t))
            if sample.precip_mm_h > 0.0 and sample.snowing:
                snowy += 1
                assert sample.temp_c <= 0.5
                if snowy >= 20:
                    break
        assert snowy > 0  # February in Helsinki snows

    def test_sample_validation(self):
        with pytest.raises(ValueError):
            WeatherSample(
                time=0.0, temp_c=0.0, dewpoint_c=-1.0, rh_percent=90.0,
                wind_ms=1.0, solar_wm2=0.0, cloud_fraction=0.9, precip_mm_h=-1.0,
            )


class TestEnclosureProtection:
    def find_wet_instant(self, weather, campaign_times):
        for t in campaign_times:
            if float(weather.precipitation(float(t))) > 0.3:
                return float(t)
        pytest.skip("no precipitation at this seed")

    def test_bare_sky_passes_everything(self, weather, campaign_times):
        t = self.find_wet_instant(weather, campaign_times)
        outdoors = OutdoorAmbient("outside", weather)
        outdoors.advance(t)
        assert outdoors.intake_precip_mm_h == pytest.approx(
            float(weather.precipitation(t))
        )

    def test_tent_keeps_hardware_dry(self, weather, campaign_times):
        t = self.find_wet_instant(weather, campaign_times)
        tent = Tent("tent", weather)
        tent.advance(t)
        assert tent.intake_precip_mm_h == 0.0

    def test_basement_keeps_hardware_dry(self, weather, campaign_times):
        t = self.find_wet_instant(weather, campaign_times)
        basement = BasementMachineRoom("basement", weather)
        basement.advance(t)
        assert basement.intake_precip_mm_h == 0.0

    def test_plastic_boxes_leak_a_sliver(self, weather, campaign_times):
        t = self.find_wet_instant(weather, campaign_times)
        shelter = PlasticBoxShelter("boxes", weather)
        shelter.advance(t)
        full = float(weather.precipitation(t))
        assert 0.0 < shelter.intake_precip_mm_h < 0.1 * full
