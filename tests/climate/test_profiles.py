"""Tests for climate calibration profiles."""

import datetime as dt

import pytest

from repro.climate.profiles import HELSINKI_2010, ClimateProfile, ColdSnap


def make_profile(**overrides):
    base = dict(
        name="test",
        anchors=(
            (dt.datetime(2010, 2, 1), -8.0),
            (dt.datetime(2010, 3, 1), -4.0),
            (dt.datetime(2010, 4, 1), 2.0),
        ),
    )
    base.update(overrides)
    return ClimateProfile(**base)


class TestValidation:
    def test_needs_two_anchors(self):
        with pytest.raises(ValueError):
            make_profile(anchors=((dt.datetime(2010, 2, 1), -8.0),))

    def test_anchors_must_be_sorted(self):
        with pytest.raises(ValueError):
            make_profile(
                anchors=(
                    (dt.datetime(2010, 3, 1), -4.0),
                    (dt.datetime(2010, 2, 1), -8.0),
                )
            )

    def test_correlation_times_positive(self):
        with pytest.raises(ValueError):
            make_profile(synoptic_corr_hours=0.0)

    def test_cold_snap_depth_must_be_magnitude(self):
        with pytest.raises(ValueError):
            ColdSnap(peak=dt.datetime(2010, 2, 21), depth_c=-5.0)

    def test_cold_snap_sigma_positive(self):
        with pytest.raises(ValueError):
            ColdSnap(peak=dt.datetime(2010, 2, 21), depth_c=5.0, sigma_days=0.0)


class TestSeasonalMean:
    def test_interpolates_at_anchor(self):
        profile = make_profile()
        assert profile.seasonal_mean(dt.datetime(2010, 3, 1)) == pytest.approx(-4.0)

    def test_interpolates_between_anchors(self):
        profile = make_profile()
        # Halfway Feb 1 -> Mar 1 (14 days of 28).
        mid = dt.datetime(2010, 2, 15)
        assert profile.seasonal_mean(mid) == pytest.approx(-6.0, abs=0.01)

    def test_clamps_before_first_anchor(self):
        profile = make_profile()
        assert profile.seasonal_mean(dt.datetime(2010, 1, 1)) == -8.0

    def test_clamps_after_last_anchor(self):
        profile = make_profile()
        assert profile.seasonal_mean(dt.datetime(2010, 6, 1)) == 2.0

    def test_start_end_properties(self):
        profile = make_profile()
        assert profile.start == dt.datetime(2010, 2, 1)
        assert profile.end == dt.datetime(2010, 4, 1)


class TestHelsinki2010:
    def test_covers_the_campaign(self):
        assert HELSINKI_2010.start <= dt.datetime(2010, 2, 12)
        assert HELSINKI_2010.end >= dt.datetime(2010, 5, 12)

    def test_prototype_weekend_anchor(self):
        # Section 3.1: the prototype weekend averaged -9.2 degC.
        mean = HELSINKI_2010.seasonal_mean(dt.datetime(2010, 2, 13))
        assert -10.0 < mean < -8.5

    def test_has_the_minus_22_snap(self):
        feb_snaps = [s for s in HELSINKI_2010.cold_snaps if s.peak.month == 2]
        assert feb_snaps, "the late-February -22 degC episode must be scripted"
        # Seasonal (~ -9) minus depth must land near -20 before noise.
        snap = feb_snaps[0]
        base = HELSINKI_2010.seasonal_mean(snap.peak)
        assert base - snap.depth_c < -17.0

    def test_spring_warms_up(self):
        feb = HELSINKI_2010.seasonal_mean(dt.datetime(2010, 2, 15))
        may = HELSINKI_2010.seasonal_mean(dt.datetime(2010, 5, 10))
        assert may > feb + 10.0

    def test_helsinki_latitude(self):
        assert HELSINKI_2010.latitude_deg == pytest.approx(60.2)
