"""Tests for the Magnus-formula psychrometrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.climate.psychro import (
    absolute_humidity,
    condensation_margin,
    condenses,
    dewpoint,
    frost_point,
    mix_air,
    relative_humidity_from_dewpoint,
    rh_from_absolute_humidity,
    saturation_vapor_pressure,
    vapor_pressure,
)

temps = st.floats(min_value=-40.0, max_value=40.0)
humidities = st.floats(min_value=1.0, max_value=100.0)


class TestSaturationVaporPressure:
    def test_reference_value_at_zero(self):
        assert saturation_vapor_pressure(0.0) == pytest.approx(6.112, rel=1e-3)

    def test_reference_value_at_twenty(self):
        # Standard tables: ~23.4 hPa at 20 degC.
        assert saturation_vapor_pressure(20.0) == pytest.approx(23.4, rel=0.02)

    def test_monotone_in_temperature(self):
        t = np.linspace(-40.0, 40.0, 200)
        es = saturation_vapor_pressure(t)
        assert np.all(np.diff(es) > 0)

    def test_ice_branch_below_water_branch_subzero(self):
        # e_s over ice is lower than over supercooled water below 0 degC.
        assert saturation_vapor_pressure(-10.0, over_ice=True) < saturation_vapor_pressure(-10.0)

    def test_branches_agree_at_zero(self):
        assert saturation_vapor_pressure(0.0, over_ice=True) == pytest.approx(
            saturation_vapor_pressure(0.0), rel=1e-6
        )

    def test_vectorised(self):
        out = saturation_vapor_pressure(np.array([0.0, 10.0]))
        assert out.shape == (2,)


class TestDewpoint:
    def test_saturated_air_dewpoint_equals_temperature(self):
        assert dewpoint(5.0, 100.0) == pytest.approx(5.0, abs=0.01)

    def test_dewpoint_below_temperature_when_unsaturated(self):
        assert dewpoint(5.0, 60.0) < 5.0

    @given(temp=temps, rh=humidities)
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_rh_from_dewpoint(self, temp, rh):
        td = dewpoint(temp, rh)
        assert relative_humidity_from_dewpoint(temp, td) == pytest.approx(rh, abs=0.5)

    @given(temp=temps, rh=humidities)
    @settings(max_examples=200, deadline=None)
    def test_dewpoint_never_exceeds_temperature(self, temp, rh):
        assert dewpoint(temp, rh) <= temp + 1e-6

    def test_zero_rh_clipped_not_infinite(self):
        assert np.isfinite(dewpoint(10.0, 0.0))

    def test_supersaturation_reported_as_100(self):
        assert relative_humidity_from_dewpoint(5.0, 8.0) == 100.0


class TestAbsoluteHumidity:
    def test_reference_value(self):
        # Saturated air at 20 degC holds ~17.3 g/m^3.
        assert absolute_humidity(20.0, 100.0) == pytest.approx(17.3, rel=0.03)

    @given(temp=temps, rh=humidities)
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_through_vapor_density(self, temp, rh):
        ah = absolute_humidity(temp, rh)
        assert rh_from_absolute_humidity(temp, ah) == pytest.approx(rh, abs=0.5)

    def test_monotone_in_rh(self):
        assert absolute_humidity(10.0, 80.0) > absolute_humidity(10.0, 40.0)

    def test_warming_air_lowers_rh_at_fixed_vapor(self):
        # The tent mechanism: same vapor content, warmer air, lower RH.
        ah = absolute_humidity(-10.0, 90.0)
        assert rh_from_absolute_humidity(5.0, ah) < 90.0


class TestCondensation:
    def test_margin_positive_for_heated_case(self):
        # Paper Section 5: powered cases run warmer than ambient dewpoint.
        assert condensation_margin(10.0, 0.0, 90.0) > 0

    def test_condenses_when_surface_below_dewpoint(self):
        td = dewpoint(15.0, 95.0)
        assert condenses(td - 1.0, 15.0, 95.0)

    def test_no_condensation_at_exact_ambient_temperature_unsaturated(self):
        assert not condenses(15.0, 15.0, 80.0)

    def test_margin_scalar_type(self):
        assert isinstance(condensation_margin(10.0, 0.0, 90.0), float)


class TestMixAir:
    def test_equal_parcels_average_temperature(self):
        temp, _rh = mix_air(0.0, 80.0, 10.0, 80.0, fraction_b=0.5)
        assert temp == pytest.approx(5.0)

    def test_fraction_zero_returns_parcel_a(self):
        temp, rh = mix_air(0.0, 80.0, 10.0, 40.0, fraction_b=0.0)
        assert temp == pytest.approx(0.0)
        assert rh == pytest.approx(80.0, abs=0.5)

    def test_fraction_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            mix_air(0.0, 80.0, 10.0, 40.0, fraction_b=1.5)

    @given(
        ta=temps, rha=humidities, tb=temps, rhb=humidities,
        f=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_mixture_temperature_between_parcels(self, ta, rha, tb, rhb, f):
        temp, rh = mix_air(ta, rha, tb, rhb, f)
        assert min(ta, tb) - 1e-9 <= temp <= max(ta, tb) + 1e-9
        assert 0.0 <= rh <= 100.0


class TestFrostPoint:
    def test_frost_point_above_dewpoint_subzero(self):
        # Over ice, saturation comes sooner: frost point > dewpoint (< 0 degC).
        td = dewpoint(-10.0, 70.0)
        tf = frost_point(-10.0, 70.0)
        assert tf > td

    def test_frost_point_of_saturated_subzero_air_near_temp(self):
        assert frost_point(-10.0, 100.0) == pytest.approx(-10.0, abs=1.5)
