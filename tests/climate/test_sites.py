"""Tests for the multi-site climate profiles."""

import datetime as dt

import numpy as np
import pytest

from repro.climate.generator import WeatherGenerator
from repro.climate.sites import (
    ALL_SITES,
    HELSINKI_FULL_YEAR,
    NE_ENGLAND_FULL_YEAR,
    NEW_MEXICO_FULL_YEAR,
    SINGAPORE_FULL_YEAR,
    _monthly_anchors,
)
from repro.sim.clock import HOUR, SimClock
from repro.sim.rng import RngStreams


def annual_temps(profile, seed=3):
    clock = SimClock(profile.start)
    weather = WeatherGenerator(profile, RngStreams(seed), clock)
    times = np.arange(weather.start_time, weather.end_time, 6 * HOUR)
    return np.asarray(weather.temperature(times))


class TestMonthlyAnchors:
    def test_fourteen_anchor_points(self):
        anchors = _monthly_anchors(2010, list(range(12)))
        assert len(anchors) == 14
        assert anchors[0][0] == dt.datetime(2010, 1, 1)
        assert anchors[-1][0] == dt.datetime(2011, 1, 1)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            _monthly_anchors(2010, [0.0] * 11)

    def test_ends_clamped_to_adjacent_months(self):
        anchors = _monthly_anchors(2010, [5.0] + [0.0] * 10 + [7.0])
        assert anchors[0][1] == 5.0
        assert anchors[-1][1] == 7.0


class TestSiteCharacter:
    def test_all_sites_cover_a_full_year(self):
        for site in ALL_SITES:
            assert (site.end - site.start).days >= 364

    def test_helsinki_has_a_cold_winter(self):
        temps = annual_temps(HELSINKI_FULL_YEAR)
        assert temps.min() < -15.0

    def test_helsinki_summer_is_warm(self):
        # 2010's July heat wave: the follow-up campaign's stress case.
        temps = annual_temps(HELSINKI_FULL_YEAR)
        assert temps.max() > 20.0

    def test_new_mexico_is_a_high_desert(self):
        profile = NEW_MEXICO_FULL_YEAR
        # Big diurnal swing and very dry air are what made Intel's
        # economizer viable there.
        assert profile.diurnal_amplitude_c > 2 * HELSINKI_FULL_YEAR.diurnal_amplitude_c
        assert profile.dewpoint_depression_mean_c > 10.0

    def test_new_mexico_summers_exceed_intake_ceilings(self):
        temps = annual_temps(NEW_MEXICO_FULL_YEAR)
        assert temps.max() > 28.0

    def test_ne_england_is_mild_maritime(self):
        temps = annual_temps(NE_ENGLAND_FULL_YEAR)
        assert temps.min() > -12.0
        assert temps.max() < 28.0

    def test_singapore_never_cools_down(self):
        temps = annual_temps(SINGAPORE_FULL_YEAR)
        assert temps.min() > 18.0

    def test_site_names_distinct(self):
        names = [s.name for s in ALL_SITES]
        assert len(set(names)) == len(names)
