"""Tests for the multi-site climate profiles."""

import datetime as dt

import numpy as np
import pytest

from repro.climate.generator import WeatherGenerator
from repro.climate.sites import (
    ALL_SITES,
    HELSINKI_FULL_YEAR,
    NE_ENGLAND_FULL_YEAR,
    NEW_MEXICO_FULL_YEAR,
    SINGAPORE_FULL_YEAR,
    _monthly_anchors,
)
from repro.sim.clock import HOUR, SimClock
from repro.sim.rng import RngStreams


def annual_temps(profile, seed=3):
    clock = SimClock(profile.start)
    weather = WeatherGenerator(profile, RngStreams(seed), clock)
    times = np.arange(weather.start_time, weather.end_time, 6 * HOUR)
    return np.asarray(weather.temperature(times))


class TestMonthlyAnchors:
    def test_fourteen_anchor_points(self):
        anchors = _monthly_anchors(2010, list(range(12)))
        assert len(anchors) == 14
        assert anchors[0][0] == dt.datetime(2010, 1, 1)
        assert anchors[-1][0] == dt.datetime(2011, 1, 1)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            _monthly_anchors(2010, [0.0] * 11)

    def test_ends_clamped_to_dec_jan_midpoint(self):
        # Both year-end clamps sit at the Dec/Jan midpoint so the curve
        # is periodic; the old Jan-mean/Dec-mean split made the seasonal
        # curve jump by 2 degC at the wrap for this input.
        anchors = _monthly_anchors(2010, [5.0] + [0.0] * 10 + [7.0])
        assert anchors[0][1] == 6.0
        assert anchors[-1][1] == 6.0
        assert anchors[0][1] == anchors[-1][1]

    def test_seasonal_curve_periodic_across_year_boundary(self):
        from repro.climate.profiles import ClimateProfile

        means = [-11.0, -9.0, -4.0, 3.5, 10.5, 14.5,
                 21.5, 17.0, 11.0, 4.5, -1.0, -7.5]
        profile = ClimateProfile(
            name="wrap", anchors=_monthly_anchors(2010, means)
        )
        assert profile.seasonal_mean(dt.datetime(2011, 1, 1)) == pytest.approx(
            profile.seasonal_mean(dt.datetime(2010, 1, 1))
        )

    def test_stacked_years_continuous_at_the_boundary(self):
        # A multi-year profile built by concatenating per-year anchors
        # must not jump across New Year: approach the boundary from
        # December and leave it into January and compare.
        from repro.climate.profiles import ClimateProfile

        means = [-11.0, -9.0, -4.0, 3.5, 10.5, 14.5,
                 21.5, 17.0, 11.0, 4.5, -1.0, -7.5]
        anchors = _monthly_anchors(2010, means) + _monthly_anchors(2011, means)
        profile = ClimateProfile(name="two-years", anchors=anchors)
        boundary = dt.datetime(2011, 1, 1)
        step = dt.timedelta(hours=1)
        before = profile.seasonal_mean(boundary - step)
        at = profile.seasonal_mean(boundary)
        after = profile.seasonal_mean(boundary + step)
        slope_per_hour = abs(means[0] - means[11]) / (31 * 24)
        assert abs(at - before) < 2 * slope_per_hour + 1e-9
        assert abs(after - at) < 2 * slope_per_hour + 1e-9


class TestSiteCharacter:
    def test_all_sites_cover_a_full_year(self):
        for site in ALL_SITES:
            assert (site.end - site.start).days >= 364

    def test_helsinki_has_a_cold_winter(self):
        temps = annual_temps(HELSINKI_FULL_YEAR)
        assert temps.min() < -15.0

    def test_helsinki_summer_is_warm(self):
        # 2010's July heat wave: the follow-up campaign's stress case.
        temps = annual_temps(HELSINKI_FULL_YEAR)
        assert temps.max() > 20.0

    def test_new_mexico_is_a_high_desert(self):
        profile = NEW_MEXICO_FULL_YEAR
        # Big diurnal swing and very dry air are what made Intel's
        # economizer viable there.
        assert profile.diurnal_amplitude_c > 2 * HELSINKI_FULL_YEAR.diurnal_amplitude_c
        assert profile.dewpoint_depression_mean_c > 10.0

    def test_new_mexico_summers_exceed_intake_ceilings(self):
        temps = annual_temps(NEW_MEXICO_FULL_YEAR)
        assert temps.max() > 28.0

    def test_ne_england_is_mild_maritime(self):
        temps = annual_temps(NE_ENGLAND_FULL_YEAR)
        assert temps.min() > -12.0
        assert temps.max() < 28.0

    def test_singapore_never_cools_down(self):
        temps = annual_temps(SINGAPORE_FULL_YEAR)
        assert temps.min() > 18.0

    def test_site_names_distinct(self):
        names = [s.name for s in ALL_SITES]
        assert len(set(names)) == len(names)
