"""Tests for the SMEAR III-style weather station."""

import numpy as np
import pytest

from repro.climate.generator import WeatherGenerator
from repro.climate.profiles import HELSINKI_2010
from repro.climate.station import WeatherStation
from repro.sim.clock import HOUR, MINUTE, SimClock
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams


@pytest.fixture
def weather():
    return WeatherGenerator(HELSINKI_2010, RngStreams(5))


class TestObservation:
    def test_reading_close_to_truth(self, weather):
        station = WeatherStation(weather, RngStreams(5))
        t = SimClock().at(2010, 3, 1, 12)
        truth = weather.sample(t)
        reading = station.observe(t)
        assert reading.temp_c == pytest.approx(truth.temp_c, abs=0.6)
        assert reading.rh_percent == pytest.approx(truth.rh_percent, abs=5.0)

    def test_rh_clipped_to_valid_range(self, weather):
        station = WeatherStation(weather, RngStreams(5), rh_error_std=50.0)
        t = SimClock().at(2010, 3, 1, 12)
        for _ in range(50):
            reading = station.observe(t)
            assert 0.0 <= reading.rh_percent <= 100.0

    def test_readings_accumulate(self, weather):
        station = WeatherStation(weather, RngStreams(5))
        t0 = SimClock().at(2010, 3, 1)
        station.observe(t0)
        station.observe(t0 + 600.0)
        assert len(station.readings) == 2


class TestPeriodicSampling:
    def test_attach_samples_on_cadence(self, weather):
        sim = Simulator()
        station = WeatherStation(weather, RngStreams(5), period_s=10 * MINUTE)
        station.attach(sim, start=SimClock().at(2010, 2, 12))
        sim.run_until(SimClock().at(2010, 2, 12, 1, 0))
        # One hour from the start instant inclusive: 0,10,...,60 -> 7 samples.
        assert len(station.readings) == 7

    def test_attach_twice_rejected(self, weather):
        sim = Simulator()
        station = WeatherStation(weather, RngStreams(5))
        station.attach(sim, start=SimClock().at(2010, 2, 12))
        with pytest.raises(RuntimeError):
            station.attach(sim)

    def test_detach_stops_sampling(self, weather):
        sim = Simulator()
        station = WeatherStation(weather, RngStreams(5), period_s=10 * MINUTE)
        start = SimClock().at(2010, 2, 12)
        station.attach(sim, start=start)
        sim.run_until(start + HOUR)
        station.detach()
        count = len(station.readings)
        sim.run_until(start + 2 * HOUR)
        assert len(station.readings) == count


class TestAccessors:
    def test_array_accessors_align(self, weather):
        station = WeatherStation(weather, RngStreams(5))
        t0 = SimClock().at(2010, 3, 1)
        for k in range(5):
            station.observe(t0 + k * 600.0)
        assert station.times().shape == (5,)
        assert station.temperatures().shape == (5,)
        assert station.humidities().shape == (5,)
        assert np.all(np.diff(station.times()) == 600.0)

    def test_invalid_period_rejected(self, weather):
        with pytest.raises(ValueError):
            WeatherStation(weather, period_s=0.0)
