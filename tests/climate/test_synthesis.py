"""Tests for the synthetic-site generator and CSV import."""

import datetime as dt

import numpy as np
import pytest

from repro.climate.generator import WeatherGenerator
from repro.climate.synthesis import (
    SiteParameters,
    profile_from_csv,
    sample_sites,
    site_at_index,
)
from repro.sim.clock import HOUR, SimClock
from repro.sim.rng import RngStreams


def _params(**overrides):
    base = dict(
        name="test-site",
        latitude_deg=50.0,
        mean_annual_c=8.0,
        seasonal_amplitude_c=9.0,
        diurnal_swing_c=6.0,
        dewpoint_depression_mean_c=3.0,
        dewpoint_depression_std_c=1.0,
        continentality=0.5,
    )
    base.update(overrides)
    return SiteParameters(**base)


class TestSiteParameters:
    def test_monthly_means_average_to_annual_mean(self):
        means = _params().monthly_means_c()
        assert np.mean(means) == pytest.approx(8.0, abs=1e-9)

    def test_northern_hemisphere_warmest_in_summer(self):
        means = _params(latitude_deg=55.0).monthly_means_c()
        assert max(range(12), key=lambda i: means[i]) in (5, 6, 7)  # Jun-Aug

    def test_southern_hemisphere_phase_flipped(self):
        means = _params(latitude_deg=-40.0).monthly_means_c()
        warmest = max(range(12), key=lambda i: means[i])
        assert warmest in (11, 0, 1)  # Dec-Feb

    def test_profile_round_trips_the_knobs(self):
        profile = _params(diurnal_swing_c=10.0).to_profile()
        assert profile.name == "test-site"
        assert profile.diurnal_amplitude_c == pytest.approx(5.0)
        assert profile.latitude_deg == 50.0
        assert (profile.end - profile.start).days >= 364

    def test_profile_is_generatable(self):
        profile = _params().to_profile()
        clock = SimClock(profile.start)
        weather = WeatherGenerator(profile, RngStreams(3), clock)
        times = np.arange(weather.start_time, weather.end_time, 24 * HOUR)
        temps = np.asarray(weather.temperature(times))
        assert np.isfinite(temps).all()

    def test_continental_site_swings_harder_than_maritime(self):
        maritime = _params(continentality=0.0).to_profile()
        continental = _params(continentality=1.0).to_profile()
        assert continental.synoptic_std_c > maritime.synoptic_std_c
        assert maritime.wind_mean_ms > continental.wind_mean_ms

    @pytest.mark.parametrize(
        "field,value",
        [
            ("latitude_deg", 91.0),
            ("seasonal_amplitude_c", -1.0),
            ("diurnal_swing_c", -0.1),
            ("dewpoint_depression_mean_c", -1.0),
            ("continentality", 1.5),
            ("electricity_price_usd_per_kwh", 0.0),
        ],
    )
    def test_bad_knobs_rejected(self, field, value):
        with pytest.raises(ValueError):
            _params(**{field: value})


class TestSampling:
    def test_same_seed_same_sites(self):
        assert sample_sites(10, seed=7) == sample_sites(10, seed=7)

    def test_different_seeds_differ(self):
        assert sample_sites(10, seed=7) != sample_sites(10, seed=8)

    def test_site_i_independent_of_n(self):
        # Growing an atlas must not reshuffle already-scored sites.
        assert sample_sites(50, seed=7)[13] == site_at_index(13, seed=7)

    def test_sampled_knobs_within_declared_ranges(self):
        for site in sample_sites(40, seed=3):
            assert -65.0 <= site.latitude_deg <= 65.0
            assert 0.0 <= site.continentality <= 1.0
            assert 0.05 <= site.electricity_price_usd_per_kwh <= 0.20
            assert site.diurnal_swing_c <= 20.0

    def test_poleward_sites_run_colder(self):
        sites = sample_sites(120, seed=5)
        polar = [s.mean_annual_c for s in sites if abs(s.latitude_deg) > 50]
        tropical = [s.mean_annual_c for s in sites if abs(s.latitude_deg) < 20]
        assert polar and tropical
        assert np.mean(polar) < np.mean(tropical)

    def test_zero_sites_rejected(self):
        with pytest.raises(ValueError):
            sample_sites(0, seed=7)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            site_at_index(-1, seed=7)


class TestCsvImport:
    def _write_trace(self, path, months=range(1, 13), dewpoint=True):
        lines = ["timestamp,temp_c,dewpoint_c" if dewpoint else "timestamp,temp_c"]
        for month in months:
            for day in (5, 15, 25):
                for hour in range(0, 24, 3):
                    when = dt.datetime(2010, month, day, hour)
                    temp = 10.0 + 8.0 * np.cos(2 * np.pi * (month - 7) / 12) + (
                        3.0 * np.sin(2 * np.pi * hour / 24)
                    )
                    row = f"{when.isoformat()},{temp:.2f}"
                    if dewpoint:
                        row += f",{temp - 4.0:.2f}"
                    lines.append(row)
        path.write_text("\n".join(lines) + "\n")

    def test_full_year_trace_builds_a_profile(self, tmp_path):
        trace = tmp_path / "trace.csv"
        self._write_trace(trace)
        profile = profile_from_csv(str(trace), name="imported")
        assert profile.name == "imported"
        assert (profile.end - profile.start).days >= 364
        # July is the trace's warmest month; the seasonal curve agrees.
        july = profile.seasonal_mean(dt.datetime(2010, 7, 15))
        january = profile.seasonal_mean(dt.datetime(2010, 1, 15))
        assert july > january
        assert profile.dewpoint_depression_mean_c == pytest.approx(4.0, abs=0.2)

    def test_default_name_carries_the_year(self, tmp_path):
        trace = tmp_path / "trace.csv"
        self._write_trace(trace, dewpoint=False)
        assert profile_from_csv(str(trace)).name == "csv-2010"

    def test_missing_month_rejected(self, tmp_path):
        trace = tmp_path / "trace.csv"
        self._write_trace(trace, months=[1, 2, 3])
        with pytest.raises(ValueError, match="month"):
            profile_from_csv(str(trace))

    def test_missing_column_rejected(self, tmp_path):
        trace = tmp_path / "trace.csv"
        trace.write_text("when,degrees\n2010-01-01T00:00:00,5.0\n")
        with pytest.raises(ValueError, match="missing required column"):
            profile_from_csv(str(trace))

    def test_empty_file_rejected(self, tmp_path):
        trace = tmp_path / "trace.csv"
        trace.write_text("timestamp,temp_c\n")
        with pytest.raises(ValueError, match="no data rows"):
            profile_from_csv(str(trace))
