"""Tests for the weather-generator validation battery."""

import numpy as np
import pytest

from repro.climate.profiles import HELSINKI_2010
from repro.climate.sites import NEW_MEXICO_FULL_YEAR, SINGAPORE_FULL_YEAR
from repro.climate.validation import (
    autocorrelation_time_hours,
    diurnal_cycle,
    seasonal_trend_c_per_day,
    validate_profile,
)
from repro.sim.clock import DAY, HOUR, SimClock


class TestDiurnalCycle:
    def test_recovers_pure_cosine(self):
        clock = SimClock()
        times = np.arange(0.0, 30 * DAY, HOUR)
        hours = np.array([clock.hour_of_day(t) for t in times])
        temps = 5.0 * np.cos(2 * np.pi * (hours - 14.0) / 24.0)
        amplitude, peak = diurnal_cycle(times, temps, clock)
        assert amplitude == pytest.approx(5.0, rel=0.05)
        assert peak == pytest.approx(14.0, abs=0.5)

    def test_trend_does_not_corrupt_amplitude(self):
        clock = SimClock()
        times = np.arange(0.0, 30 * DAY, HOUR)
        hours = np.array([clock.hour_of_day(t) for t in times])
        temps = 3.0 * np.cos(2 * np.pi * (hours - 15.0) / 24.0) + times / DAY * 0.3
        amplitude, peak = diurnal_cycle(times, temps, clock)
        assert amplitude == pytest.approx(3.0, rel=0.1)

    def test_needs_two_days(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            diurnal_cycle(np.arange(10.0), np.arange(10.0), clock)


class TestAutocorrelationTime:
    def test_recovers_ar1_scale(self):
        rng = np.random.default_rng(5)
        corr_steps = 48.0
        rho = np.exp(-1.0 / corr_steps)
        n = 20_000
        x = np.empty(n)
        x[0] = rng.normal()
        for i in range(1, n):
            x[i] = rho * x[i - 1] + np.sqrt(1 - rho * rho) * rng.normal()
        times = HOUR * np.arange(n)
        recovered = autocorrelation_time_hours(times, x, max_lag_hours=400.0)
        assert recovered == pytest.approx(48.0, rel=0.3)

    def test_irregular_sampling_rejected(self):
        with pytest.raises(ValueError):
            autocorrelation_time_hours(
                np.array([0.0, 1.0, 3.0, 7.0] * 5), np.arange(20.0)
            )

    def test_constant_series_rejected(self):
        with pytest.raises(ValueError):
            autocorrelation_time_hours(HOUR * np.arange(100.0), np.ones(100))


class TestSeasonalTrend:
    def test_recovers_linear_warming(self):
        times = np.arange(0.0, 60 * DAY, HOUR)
        temps = -9.0 + 0.2 * times / DAY
        assert seasonal_trend_c_per_day(times, temps) == pytest.approx(0.2, rel=0.01)


class TestValidateProfile:
    def test_helsinki_winter_structure_recovered(self):
        report = validate_profile(HELSINKI_2010, seed=0)
        assert report.diurnal_recovered
        # Winter -> spring: the campaign warms a fifth of a degree a day.
        assert 0.05 < report.recovered_trend_c_per_day < 0.5
        # Synoptic persistence in the multi-day band.
        assert 20.0 < report.recovered_corr_hours < 300.0

    def test_desert_diurnal_amplitude_larger_than_maritime(self):
        desert = validate_profile(NEW_MEXICO_FULL_YEAR, seed=0, span_days=120)
        tropics = validate_profile(SINGAPORE_FULL_YEAR, seed=0, span_days=120)
        assert (
            desert.recovered_diurnal_amplitude_c
            > 1.5 * tropics.recovered_diurnal_amplitude_c
        )

    def test_afternoon_peak_everywhere(self):
        for profile in (HELSINKI_2010, NEW_MEXICO_FULL_YEAR):
            report = validate_profile(profile, seed=1, span_days=90)
            assert 11.0 <= report.recovered_peak_hour <= 19.0


class TestDominantPeriod:
    def test_pure_daily_cycle_found(self):
        from repro.climate.validation import dominant_period_hours

        times = HOUR * np.arange(24 * 30)
        values = np.cos(2 * np.pi * times / (24 * HOUR))
        period = dominant_period_hours(times, values)
        assert period == pytest.approx(24.0, rel=0.1)

    def test_generated_weather_is_diurnal(self):
        from repro.climate.generator import WeatherGenerator
        from repro.climate.validation import dominant_period_hours
        from repro.sim.rng import RngStreams

        weather = WeatherGenerator(HELSINKI_2010, RngStreams(4))
        clock = SimClock()
        times = np.arange(clock.at(2010, 4, 1), clock.at(2010, 5, 1), HOUR)
        solar = np.asarray(weather.solar_irradiance(times))
        assert dominant_period_hours(times, solar) == pytest.approx(24.0, rel=0.1)

    def test_irregular_sampling_rejected(self):
        from repro.climate.validation import dominant_period_hours

        with pytest.raises(ValueError):
            dominant_period_hours(np.array([0.0, 1.0, 5.0] * 5), np.arange(15.0))

    def test_too_short_rejected(self):
        from repro.climate.validation import dominant_period_hours

        with pytest.raises(ValueError):
            dominant_period_hours(np.arange(4.0), np.arange(4.0))
