"""Shared fixtures.

Two experiment fixtures are session-scoped because runs are expensive:

- ``short_results`` covers the prototype weekend plus the first two weeks
  of the campaign (includes the -22 degC snap and the first installs),
- ``full_results`` is the complete Feb 12 - May 12 campaign with the
  paper-snapshot census taken on Mar 27.

Both use the default seed (7), for which the census matches the paper's
narrative; determinism tests re-run their own experiments.
"""

from __future__ import annotations

import datetime as dt

import pytest

from repro import Experiment, ExperimentConfig
from repro.sim.clock import SimClock
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator at the paper epoch."""
    return Simulator()


@pytest.fixture
def clock() -> SimClock:
    """A clock at the paper epoch."""
    return SimClock()


@pytest.fixture
def streams() -> RngStreams:
    """A deterministic RNG family."""
    return RngStreams(1234)


@pytest.fixture(scope="session")
def short_results():
    """Prototype weekend + first campaign fortnight (fast)."""
    exp = Experiment(ExperimentConfig(seed=7))
    return exp.run(until=dt.datetime(2010, 3, 3))


@pytest.fixture(scope="session")
def full_results():
    """The complete campaign (tens of seconds; shared across all tests)."""
    exp = Experiment(ExperimentConfig(seed=7))
    return exp.run()
