"""ActuatorBus: clamping, idempotence, shed staging, state roundtrip.

Every knob the control plane exposes goes through the bus, so the bus
contract is load-bearing: commands clamp to physical ranges, repeating a
command is a no-op (no action tally, no airflow churn), shedding stages
lowest-id-first and restores LIFO, and the whole bus state survives a
snapshot roundtrip.
"""

import datetime as dt
import math

import pytest

from repro.control.actuators import (
    CRAC_SETPOINT_RANGE,
    DVFS_RANGE,
    ActuatorBus,
    clamp,
    clamp_fraction,
)
from repro.core.builder import CampaignBuilder
from repro.core.config import ExperimentConfig
from repro.hardware.host import HostState

#: Far enough past the first installs that the tent group is populated
#: and running, close enough that the fixture stays cheap.
UNTIL = dt.datetime(2010, 2, 22, 12, 0)


@pytest.fixture(scope="module")
def campaign():
    campaign = CampaignBuilder(ExperimentConfig(seed=7)).build()
    campaign.run(until=UNTIL)
    return campaign


@pytest.fixture
def bus(campaign):
    return ActuatorBus(campaign.fleet)


class TestClamping:
    def test_clamp_bounds(self):
        assert clamp(5.0, 0.0, 1.0) == 1.0
        assert clamp(-5.0, 0.0, 1.0) == 0.0
        assert clamp(0.3, 0.0, 1.0) == 0.3

    def test_nan_collapses_to_floor(self):
        assert clamp(float("nan"), 2.0, 3.0) == 2.0
        assert clamp_fraction(float("nan")) == 0.0

    def test_fan_duty_clamps_to_unit_interval(self, bus):
        bus.set_fan_duty(7.5)
        assert bus.fan_duty == 1.0
        bus.set_fan_duty(-2.0)
        assert bus.fan_duty == 0.0

    def test_crac_setpoint_clamps_to_range(self, bus, campaign):
        original = campaign.fleet.basement.setpoint_c
        try:
            bus.set_crac_setpoint(-40.0)
            assert bus.crac_setpoint_c == CRAC_SETPOINT_RANGE[0]
            bus.set_crac_setpoint(99.0)
            assert bus.crac_setpoint_c == CRAC_SETPOINT_RANGE[1]
            assert campaign.fleet.basement.setpoint_c == CRAC_SETPOINT_RANGE[1]
        finally:
            campaign.fleet.basement.setpoint_c = original

    def test_dvfs_clamps_to_range(self, bus, campaign):
        try:
            bus.set_dvfs(0.0)
            assert bus.dvfs_scale == DVFS_RANGE[0]
            assert campaign.fleet.tent.it_load_scale == DVFS_RANGE[0]
            bus.set_dvfs(1.7)
            assert bus.dvfs_scale == DVFS_RANGE[1]
        finally:
            campaign.fleet.tent.it_load_scale = 1.0


class TestIdempotence:
    def test_repeated_commands_do_not_tally(self, bus):
        assert bus.set_flap(True) is True
        assert bus.set_flap(True) is False
        assert bus.set_fan_duty(0.5) is True
        assert bus.set_fan_duty(0.5) is False
        assert bus.actions_applied == 2
        bus.set_flap(False)
        bus.set_fan_duty(0.0)

    def test_degradation_is_not_an_operator_action(self, bus):
        bus.set_plant_degradation(0.4, 0.2)
        assert bus.actions_applied == 0
        assert bus.fan_severity == 0.4
        assert bus.blockage == 0.2
        bus.set_plant_degradation(0.0, 0.0)

    def test_untouched_bus_reports_defaults(self, bus):
        assert bus.flap_open is False
        assert bus.fan_duty == 0.0
        assert bus.crac_setpoint_c is None
        assert bus.dvfs_scale == 1.0
        assert bus.shed_count() == 0
        assert bus.actions_applied == 0


class TestLoadShed:
    def test_shed_targets_ceil_of_fraction(self, bus, campaign):
        tent = sorted(
            campaign.fleet.hosts_in_group("tent"), key=lambda h: h.host_id
        )
        running_before = [h.host_id for h in tent if h.state is HostState.RUNNING]
        try:
            changed = bus.set_load_shed(0.5, campaign.sim.now)
            target = int(math.ceil(0.5 * len(tent)))
            assert bus.shed_count() == min(target, len(running_before))
            assert changed == bus.shed_count()
            # Lowest ids first, and every shed host really is SHED.
            assert bus._shed == sorted(bus._shed)
            for host_id in bus._shed:
                assert campaign.fleet.host(host_id).state is HostState.SHED
        finally:
            bus.set_load_shed(0.0, campaign.sim.now)

    def test_restore_is_lifo_and_complete(self, bus, campaign):
        now = campaign.sim.now
        bus.set_load_shed(0.6, now)
        shed_order = list(bus._shed)
        # Partial restore drops the most recently shed hosts first.
        bus.set_load_shed(0.2, now)
        assert bus._shed == shed_order[: len(bus._shed)]
        bus.set_load_shed(0.0, now)
        assert bus.shed_count() == 0
        for host_id in shed_order:
            assert campaign.fleet.host(host_id).state is HostState.RUNNING

    def test_fraction_clamps(self, bus, campaign):
        now = campaign.sim.now
        tent = list(campaign.fleet.hosts_in_group("tent"))
        try:
            bus.set_load_shed(9.0, now)
            assert bus.shed_count() <= len(tent)
            assert bus.shed_count() > 0
        finally:
            bus.set_load_shed(-3.0, now)
            assert bus.shed_count() == 0


class TestSnapshot:
    def test_state_roundtrip(self, bus, campaign):
        now = campaign.sim.now
        try:
            bus.set_flap(True, now)
            bus.set_fan_duty(0.35, now)
            bus.set_crac_setpoint(22.0, now)
            bus.set_dvfs(0.8, now)
            bus.set_load_shed(0.1, now)
            state = bus.state_dict()

            clone = ActuatorBus(campaign.fleet)
            clone.load_state_dict(state)
            assert clone.state_dict() == state
            assert clone.flap_open is True
            assert clone.fan_duty == 0.35
            assert clone.crac_setpoint_c == 22.0
            assert clone.dvfs_scale == 0.8
            assert clone._shed == bus._shed
            assert clone.actions_applied == bus.actions_applied
            # Reapplied setpoints land back on the fleet objects.
            assert campaign.fleet.basement.setpoint_c == 22.0
            assert campaign.fleet.tent.it_load_scale == 0.8
        finally:
            bus.set_load_shed(0.0, now)
            bus.set_flap(False, now)
            bus.set_fan_duty(0.0, now)
            campaign.fleet.tent.it_load_scale = 1.0
