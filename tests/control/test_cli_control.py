"""CLI surface of the control plane: scenarios, control list/compare."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_scenarios_list_flag(self):
        args = build_parser().parse_args(["scenarios", "--list"])
        assert args.command == "scenarios"

    def test_control_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["control"])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["control", "compare"])
        assert args.controllers == "paper-operator,thermostat,model-free"
        assert args.climates == "helsinki,harsher-winter"
        assert args.seed == 7
        assert args.until is None

    def test_run_takes_a_controller(self):
        args = build_parser().parse_args(["run", "--controller", "thermostat"])
        assert args.controller == "thermostat"


class TestScenariosVerb:
    def test_lists_scenarios_and_controllers(self, capsys):
        assert main(["scenarios", "--list"]) == 0
        out = capsys.readouterr().out
        assert "scenarios" in out
        assert "paper" in out
        assert "controllers" in out
        for name in ("paper-operator", "thermostat", "model-free"):
            assert name in out


class TestControlVerb:
    def test_list_names_every_controller(self, capsys):
        assert main(["control", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("paper-operator", "thermostat", "model-free"):
            assert name in out

    def test_compare_rejects_unknown_names(self, capsys):
        assert main(["control", "compare", "--controllers", "pid-9000"]) == 2
        assert "pid-9000" in capsys.readouterr().err
        assert main(["control", "compare", "--climates", "lunar"]) == 2
        assert "lunar" in capsys.readouterr().err

    def test_compare_emits_a_scorecard(self, capsys):
        code = main(
            [
                "control",
                "compare",
                "--until",
                "2010-02-21",
                "--climates",
                "helsinki",
                "--controllers",
                "paper-operator,thermostat",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "controller scorecard" in out
        assert "seed=7" in out
        assert "energy kWh" in out
        rows = [line for line in out.splitlines() if line.startswith("helsinki")]
        assert len(rows) == 2

    def test_run_rejects_unknown_controller(self, capsys):
        assert main(["run", "--controller", "pid-9000"]) == 2
        assert "pid-9000" in capsys.readouterr().err
