"""The refactor's hardest invariant: the control plane changes no bytes.

Routing the tent-modification schedule through
``PaperOperatorController`` -> ``ControlPlane`` -> ``ActuatorBus`` must
reproduce the pinned seed-7 record digest exactly, on both fleet
backends -- whether the controller is left to default or named
explicitly.  A single byte of drift here means the refactor perturbed
the physics.
"""

import datetime as dt
import hashlib
import os

import pytest

from repro.control.controllers import PaperOperatorController
from repro.core.builder import CampaignBuilder
from repro.core.config import ExperimentConfig
from repro.runner.records import record_from_results

UNTIL = dt.datetime(2010, 3, 6, 12, 0)
SHA_FILE = os.path.join(
    os.path.dirname(__file__), "..", "data", "seed7_record.sha256"
)


def pinned_digest():
    with open(SHA_FILE) as fh:
        return fh.read().split()[0]


def run_digest(backend, controller=None):
    builder = CampaignBuilder(ExperimentConfig(seed=7)).with_fleet_backend(backend)
    if controller is not None:
        builder.with_controller(controller)
    campaign = builder.build()
    results = campaign.run(until=UNTIL)
    record = record_from_results(7, results, until=UNTIL)
    digest = hashlib.sha256(record.canonical_json().encode("utf-8")).hexdigest()
    return campaign, digest


class TestPaperOperatorIdentity:
    @pytest.mark.parametrize("backend", ["object", "columnar"])
    def test_explicit_paper_operator_matches_pinned_digest(self, backend):
        campaign, digest = run_digest(backend, controller="paper-operator")
        assert digest == pinned_digest()
        # The whole schedule replayed, through the bus.
        controller = campaign.control.controller
        assert isinstance(controller, PaperOperatorController)
        assert controller.applied == [
            plan.modification.letter
            for plan in campaign.config.modification_plans
            if campaign.clock.to_seconds(plan.date)
            <= campaign.clock.to_seconds(UNTIL)
        ]
        assert campaign.control.actuators.actions_applied == len(
            controller.applied
        )

    def test_default_construction_routes_through_the_control_plane(self):
        campaign, digest = run_digest("columnar", controller=None)
        assert digest == pinned_digest()
        assert campaign.control.controller.name == "paper-operator"
        # The paper operator is pure wakes: no periodic tick ever ran.
        assert campaign.control.controller.interval_s is None
        assert campaign.control.ticks == 0
