"""Controller contracts: anti-chatter, snapshot roundtrips, the registry.

The snapshot tests follow the kill-and-resume discipline used everywhere
else in the repo: drive a controller halfway through a synthetic
episode, snapshot it, rebuild a fresh instance from its checkpointable
spec, load the state, and require the copy to emit the *same actions*
as the original for the rest of the episode.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.controllers import (
    CONTROLLERS,
    ControlAction,
    ControllerSpec,
    ModelFreeSetpointController,
    PaperOperatorController,
    ThermostatController,
    controller_doc,
    controller_from_spec,
    controller_names,
    resolve_controller,
)
from repro.control.observation import ControlObservation
from repro.core.config import ExperimentConfig
from repro.sim.clock import SimClock
from repro.state.protocol import StateError


def make_obs(time_s, tent_temp_c, **overrides):
    """A synthetic observation; only the fields under test vary."""
    fields = dict(
        time_s=float(time_s),
        outside_temp_c=-5.0,
        outside_rh_percent=80.0,
        wind_ms=3.0,
        solar_wm2=0.0,
        tent_temp_c=float(tent_temp_c),
        tent_rh_percent=40.0,
        basement_temp_c=21.0,
        hosts_running=45,
        hosts_shed=0,
        failures_total=0,
        flap_open=False,
        fan_duty=0.0,
        tripped=False,
        energy_kwh=0.0,
    )
    fields.update(overrides)
    return ControlObservation(**fields)


class FakeActuators:
    """Records modification letters instead of touching a fleet."""

    def __init__(self):
        self.letters = []

    def apply_modification(self, mod, now):
        self.letters.append(mod.letter)


class TestThermostat:
    def test_first_switch_is_free(self):
        ctrl = ThermostatController(setpoint_c=26.0, band_c=4.0)
        action = ctrl.act(make_obs(0.0, 30.0))
        assert action == ControlAction(flap=True, fan_duty=1.0)

    def test_holds_inside_the_band(self):
        ctrl = ThermostatController(setpoint_c=26.0, band_c=4.0)
        assert ctrl.act(make_obs(0.0, 26.5)) is None
        assert ctrl.act(make_obs(300.0, 25.5)) is None
        assert ctrl.cooling is False

    def test_stand_down_below_the_band(self):
        ctrl = ThermostatController(
            setpoint_c=26.0, band_c=4.0, min_dwell_s=600.0
        )
        assert ctrl.act(make_obs(0.0, 30.0)).flap is True
        # Still dwelling: the cold reading cannot flip it yet.
        assert ctrl.act(make_obs(300.0, 20.0)) is None
        action = ctrl.act(make_obs(900.0, 20.0))
        assert action == ControlAction(flap=False, fan_duty=0.0)

    def test_adversarial_square_wave_respects_dwell(self):
        ctrl = ThermostatController(
            setpoint_c=26.0, band_c=4.0, min_dwell_s=3600.0
        )
        switches = []
        for i in range(48):
            temp = 30.0 if i % 2 == 0 else 20.0
            if ctrl.act(make_obs(i * 300.0, temp)) is not None:
                switches.append(i * 300.0)
        assert len(switches) > 1
        assert all(b - a >= 3600.0 for a, b in zip(switches, switches[1:]))

    @given(
        temps=st.lists(
            st.floats(min_value=-20.0, max_value=60.0, allow_nan=False),
            min_size=4,
            max_size=80,
        ),
        dwell_ticks=st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_switch_spacing_never_beats_dwell(self, temps, dwell_ticks):
        """Property: however the tent temperature dances across the band,
        honoured switches are at least ``min_dwell_s`` apart."""
        dwell = dwell_ticks * 300.0
        ctrl = ThermostatController(
            setpoint_c=26.0, band_c=4.0, min_dwell_s=dwell
        )
        switches = []
        for i, temp in enumerate(temps):
            if ctrl.act(make_obs(i * 300.0, temp)) is not None:
                switches.append(i * 300.0)
        assert all(b - a >= dwell for a, b in zip(switches, switches[1:]))


def _drive(ctrl, temps, start_index=0):
    """Feed a temperature trace; return the emitted actions."""
    return [
        ctrl.act(make_obs((start_index + i) * 300.0, temp))
        for i, temp in enumerate(temps)
    ]


class TestSnapshotRoundtrip:
    #: A trace that forces switches, duty changes, and quiet stretches.
    TEMPS = [30.0, 31.0, 20.0, 19.0, 30.5, 29.0, 21.0, 30.0, 22.0, 28.5]

    @pytest.mark.parametrize("name", ["thermostat", "model-free"])
    def test_mid_episode_resume_replays_identically(self, name):
        config = ExperimentConfig(seed=7)
        original = CONTROLLERS[name](config)
        _drive(original, self.TEMPS[:5])
        state = original.state_dict()

        clone = controller_from_spec(original.spec, config)
        clone.load_state_dict(state)
        assert clone.state_dict() == state

        tail_a = _drive(original, self.TEMPS[5:], start_index=5)
        tail_b = _drive(clone, self.TEMPS[5:], start_index=5)
        assert tail_a == tail_b
        assert original.state_dict() == clone.state_dict()

    def test_paper_operator_roundtrip(self):
        config = ExperimentConfig(seed=7)
        original = PaperOperatorController.from_config(config)
        actuators = FakeActuators()
        wakes = original.wakes(SimClock())
        for when, tag in wakes[:2]:
            original.on_wake(actuators, tag, when)
        state = original.state_dict()

        clone = controller_from_spec(original.spec, config)
        clone.load_state_dict(state)
        assert clone.applied == original.applied
        assert clone.wakes(SimClock()) == wakes
        # Replaying the remaining schedule keeps the copies in lockstep.
        clone_actuators = FakeActuators()
        for when, tag in wakes[2:]:
            original.on_wake(actuators, tag, when)
            clone.on_wake(clone_actuators, tag, when)
        assert clone.applied == original.applied

    def test_version_mismatch_is_refused(self):
        ctrl = ThermostatController()
        state = ctrl.state_dict()
        state["version"] = 99
        with pytest.raises(StateError):
            ctrl.load_state_dict(state)

    def test_model_free_pristine_state_roundtrips(self):
        ctrl = ModelFreeSetpointController()
        clone = ModelFreeSetpointController()
        clone.load_state_dict(ctrl.state_dict())
        assert clone.prev_temp_c is None
        assert clone.duty == 0.0


class TestModelFree:
    def test_first_tick_only_primes(self):
        ctrl = ModelFreeSetpointController()
        assert ctrl.act(make_obs(0.0, 30.0)) is None
        assert ctrl.prev_temp_c == 30.0

    def test_hot_and_rising_commands_duty(self):
        ctrl = ModelFreeSetpointController(setpoint_c=24.0)
        ctrl.act(make_obs(0.0, 28.0))
        action = ctrl.act(make_obs(300.0, 30.0))
        assert action is not None
        assert action.fan_duty == 1.0

    def test_cold_tent_stays_quiet(self):
        ctrl = ModelFreeSetpointController(setpoint_c=24.0)
        ctrl.act(make_obs(0.0, 3.0))
        assert ctrl.act(make_obs(300.0, 3.1)) is None
        assert ctrl.duty == 0.0


class TestRegistry:
    def test_names_are_sorted_and_complete(self):
        assert controller_names() == ("model-free", "paper-operator", "thermostat")

    def test_every_factory_documents_itself(self):
        for name in controller_names():
            assert controller_doc(name)

    def test_resolve_default_is_the_paper_operator(self):
        config = ExperimentConfig(seed=7)
        ctrl = resolve_controller(None, config)
        assert isinstance(ctrl, PaperOperatorController)
        assert ctrl.interval_s is None

    def test_resolve_passes_instances_through(self):
        ctrl = ThermostatController()
        assert resolve_controller(ctrl, ExperimentConfig(seed=7)) is ctrl

    def test_resolve_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown controller"):
            resolve_controller("pid-9000", ExperimentConfig(seed=7))

    def test_spec_rebuild_preserves_parameters(self):
        ctrl = ThermostatController(setpoint_c=30.0, band_c=2.0)
        clone = controller_from_spec(ctrl.spec, ExperimentConfig(seed=7))
        assert clone.setpoint_c == 30.0
        assert clone.band_c == 2.0

    def test_spec_with_unknown_name_raises_state_error(self):
        with pytest.raises(StateError, match="unknown controller"):
            controller_from_spec(
                ControllerSpec(name="lost"), ExperimentConfig(seed=7)
            )
