"""ControlEnv: reset reproducibility, action-replay determinism, resume.

The env's promise to a training loop: ``reset()`` always lands on the
same cached warm-up instant, the same action trace always yields the
same observation and reward traces, and a campaign checkpointed
mid-episode resumes into an identical tail.  One short window (one sim
day at a half-hour interval) keeps every test cheap while still crossing
dozens of control steps.
"""

import datetime as dt

import pytest

from repro.control.controllers import ControlAction
from repro.control.env import ControlEnv, RewardSpec
from repro.core.builder import Campaign

START = dt.datetime(2010, 2, 20, 12, 0)
END = dt.datetime(2010, 2, 21, 12, 0)
INTERVAL_S = 1800.0
STEPS = 48


def make_env(**kwargs):
    kwargs.setdefault("episode_start", START)
    kwargs.setdefault("episode_end", END)
    kwargs.setdefault("interval_s", INTERVAL_S)
    return ControlEnv(**kwargs)


def action_trace():
    """A deterministic, non-trivial action schedule for one episode."""
    trace = []
    for step in range(STEPS):
        if step % 12 == 0:
            trace.append(ControlAction(fan_duty=0.6))
        elif step % 12 == 6:
            trace.append(ControlAction(fan_duty=0.0))
        else:
            trace.append(None)
    return trace


def rollout(env, trace):
    transitions = []
    done = False
    for action in trace:
        if done:
            break
        obs, reward, done, info = env.step(action)
        transitions.append((obs, reward, done, info["energy_kwh"]))
    return transitions


class TestLifecycle:
    def test_step_before_reset_is_refused(self):
        with pytest.raises(RuntimeError, match="reset"):
            make_env().step()

    def test_empty_window_is_refused(self):
        with pytest.raises(ValueError, match="episode_end"):
            make_env(episode_end=START)

    def test_episode_runs_to_done(self):
        env = make_env()
        env.reset()
        done = False
        steps = 0
        while not done:
            obs, reward, done, info = env.step()
            steps += 1
            assert steps <= STEPS, "episode overran its window"
        assert steps == STEPS
        assert env.campaign.sim.now == env.campaign.clock.to_seconds(END)
        # Free cooling still meters IT energy: pure penalty reward.
        assert reward < 0.0
        assert info["energy_kwh"] > 0.0


class TestDeterminism:
    @pytest.fixture(scope="class")
    def env(self):
        return make_env()

    def test_reset_is_reproducible(self, env):
        first = env.reset()
        assert env.campaign.sim.now == env.campaign.clock.to_seconds(START)
        again = env.reset()
        assert again == first
        assert env.episodes == 2

    def test_action_replay_is_deterministic(self, env):
        trace = action_trace()
        env.reset()
        episode_a = rollout(env, trace)
        env.reset()
        episode_b = rollout(env, trace)
        assert episode_a == episode_b
        # The duty commands really reached the bus and echo back.
        assert episode_a[0][0].fan_duty == 0.6
        assert any(obs.fan_duty == 0.0 for obs, _, _, _ in episode_a)

    def test_different_actions_diverge(self, env):
        env.reset()
        idle = rollout(env, [None] * STEPS)
        env.reset()
        driven = rollout(env, action_trace())
        assert [obs.tent_temp_c for obs, _, _, _ in idle] != [
            obs.tent_temp_c for obs, _, _, _ in driven
        ]


class TestRewardShape:
    def test_energy_weight_scales_the_penalty(self):
        heavy = make_env(reward=RewardSpec(energy_weight=10.0))
        light = make_env(reward=RewardSpec(energy_weight=1.0))
        heavy.reset()
        light.reset()
        _, r_heavy, _, info_heavy = heavy.step()
        _, r_light, _, info_light = light.step()
        assert info_heavy["energy_kwh"] == info_light["energy_kwh"]
        assert r_heavy == pytest.approx(10.0 * r_light)


class TestMidEpisodeResume:
    def test_checkpoint_resume_is_byte_identical(self):
        env = make_env(controller="thermostat")
        env.reset()
        for _ in range(5):
            env.step()
        checkpoint = env.campaign.checkpoint()
        restored = Campaign.restore(checkpoint)

        live = env.campaign
        assert restored.sim.now == live.sim.now
        assert (
            restored.control.controller.state_dict()
            == live.control.controller.state_dict()
        )
        assert (
            restored.control.actuators.state_dict()
            == live.control.actuators.state_dict()
        )
        live.advance_to(END)
        restored.advance_to(END)
        assert restored.powermeter.energy_kwh == live.powermeter.energy_kwh
        assert restored.control.state_dict() == live.control.state_dict()
        assert (
            restored.control.observe(restored.sim.now)
            == live.control.observe(live.sim.now)
        )
