"""Object vs columnar backend: byte-identical campaign outcomes.

The columnar refactor's hard invariant: storing fleet state in numpy
columns must not change a single byte of the paper run.  These tests
run the seed-7 configuration through both backends -- plain, under a
degraded-mode link storm, and killed-and-resumed from a mid-flight
checkpoint -- and compare canonical run-record JSON, sensor records,
and telemetry counters byte for byte.
"""

import datetime as dt
import hashlib
import os

import pytest

from repro.core.builder import Campaign, CampaignBuilder
from repro.core.config import ExperimentConfig
from repro.monitoring.health import HealthPolicy
from repro.monitoring.transport import LinkFaultPlan, LinkStorm
from repro.runner.policy import RetryPolicy
from repro.runner.records import record_from_results
from repro.telemetry import Telemetry

UNTIL = dt.datetime(2010, 3, 6, 12, 0)
EVERY = 5 * 86_400.0


def _builder(backend, seed=7):
    return CampaignBuilder(ExperimentConfig(seed=seed)).with_fleet_backend(backend)


def _record_json(results):
    return record_from_results(7, results, until=UNTIL).canonical_json()


def _run(backend, *, storm=False, telemetry=None, **run_kwargs):
    builder = _builder(backend)
    if storm:
        builder.with_link_faults(
            LinkFaultPlan(storm=LinkStorm(probability=0.25, seed=3))
        ).with_health_policy(HealthPolicy(retry=RetryPolicy(max_attempts=3)))
    if telemetry is not None:
        builder.with_telemetry(telemetry)
    campaign = builder.build()
    results = campaign.run(until=UNTIL, **run_kwargs)
    return campaign, results


class TestPlainEquivalence:
    @pytest.fixture(scope="class")
    def records(self):
        out = {}
        for backend in ("object", "columnar"):
            telemetry = Telemetry()
            _, results = _run(backend, telemetry=telemetry)
            out[backend] = (
                _record_json(results),
                [(r.time, r.host_id, r.cpu_temp_c)
                 for r in results.monitoring.sensor_records],
                [(c.name, c.value) for c in telemetry.metrics.counters()],
            )
        return out

    def test_run_records_byte_identical(self, records):
        assert records["object"][0] == records["columnar"][0]

    def test_sensor_records_identical(self, records):
        assert records["object"][1] == records["columnar"][1]

    def test_telemetry_counters_identical(self, records):
        assert records["object"][2] == records["columnar"][2]


class TestDegradedEquivalence:
    def test_link_storm_runs_byte_identical(self):
        _, obj = _run("object", storm=True)
        _, col = _run("columnar", storm=True)
        assert obj.monitoring.ssh_timeouts_total > 0
        assert _record_json(obj) == _record_json(col)


class TestKillAndResume:
    def test_columnar_resume_matches_object_straight_run(self, tmp_path):
        _, straight = _run("object")
        campaign, _ = _run(
            "columnar", checkpoint_every=EVERY, checkpoint_dir=str(tmp_path)
        )
        assert campaign.checkpoints_written
        # "Kill" after the first cut: resume it cold from disk.
        resumed, results = Campaign.resume(
            campaign.checkpoints_written[0], until=UNTIL
        )
        assert resumed.fleet.backend == "columnar"
        assert _record_json(straight) == _record_json(results)

    def test_backend_choice_rides_in_the_checkpoint(self, tmp_path):
        campaign, _ = _run(
            "object", checkpoint_every=EVERY, checkpoint_dir=str(tmp_path)
        )
        resumed, results = Campaign.resume(campaign.checkpoints_written[0], until=UNTIL)
        assert resumed.fleet.backend == "object"
        _, straight = _run("columnar")
        assert _record_json(straight) == _record_json(results)


class TestPinnedDigest:
    """The seed-7 record digest CI pins (tests/data/seed7_record.sha256)."""

    def test_matches_pinned_sha(self):
        pin_path = os.path.join(
            os.path.dirname(__file__), "..", "data", "seed7_record.sha256"
        )
        with open(pin_path) as fh:
            pinned = fh.read().split()[0]
        _, results = _run("columnar")
        actual = hashlib.sha256(_record_json(results).encode("utf-8")).hexdigest()
        assert actual == pinned, (
            "the seed-7 paper record changed; if intentional, regenerate "
            "tests/data/seed7_record.sha256"
        )
