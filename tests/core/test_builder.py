"""Tests for the campaign builder."""

import datetime as dt

import pytest

from repro import Experiment, ExperimentConfig
from repro.core.builder import Campaign, CampaignBuilder, DEFAULT_INSTRUMENTS
from repro.sim.events import HostInstalled


class FakeInstrument:
    """Minimal attach/detach instrument for composability tests."""

    def __init__(self):
        self.samples = []
        self._handle = None

    def attach(self, sim, start=None):
        first = sim.now if start is None else start
        self._handle = sim.every(
            3600.0, lambda: self.samples.append(sim.now), start=first,
            label="fake-instrument",
        )

    def detach(self):
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None


class TestBuilderApi:
    def test_default_build_is_fully_wired(self):
        campaign = CampaignBuilder(ExperimentConfig(seed=1)).build()
        assert isinstance(campaign, Campaign)
        for name in DEFAULT_INSTRUMENTS:
            assert campaign.enabled(name)
        assert campaign.bus is not None
        assert campaign.fleet.bus is campaign.bus
        assert campaign.policy.bus is campaign.bus
        assert campaign.monitoring.bus is campaign.bus
        assert campaign.fleet.ledger.bus is campaign.bus

    def test_without_unknown_instrument_rejected(self):
        with pytest.raises(ValueError):
            CampaignBuilder(ExperimentConfig(seed=1)).without("flux-capacitor")

    def test_with_instrument_rejects_default_names(self):
        builder = CampaignBuilder(ExperimentConfig(seed=1))
        with pytest.raises(ValueError):
            builder.with_instrument("webcam", lambda c: FakeInstrument())

    def test_with_instrument_rejects_duplicates(self):
        builder = CampaignBuilder(ExperimentConfig(seed=1))
        builder.with_instrument("fake", lambda c: FakeInstrument())
        with pytest.raises(ValueError):
            builder.with_instrument("fake", lambda c: FakeInstrument())

    def test_run_twice_rejected(self):
        campaign = CampaignBuilder(ExperimentConfig(seed=1)).build()
        campaign.run(until=dt.datetime(2010, 2, 16))
        with pytest.raises(RuntimeError):
            campaign.run(until=dt.datetime(2010, 2, 17))

    def test_with_link_faults_rejects_wrong_type(self):
        builder = CampaignBuilder(ExperimentConfig(seed=1))
        with pytest.raises(TypeError):
            builder.with_link_faults("storm:0.5")  # spec string, not a plan

    def test_with_health_policy_rejects_wrong_type(self):
        builder = CampaignBuilder(ExperimentConfig(seed=1))
        with pytest.raises(TypeError):
            builder.with_health_policy({"confirm_rounds": 2})

    def test_degraded_wiring_reaches_the_collector(self):
        from repro.monitoring.health import HealthPolicy
        from repro.monitoring.transport import LinkFaultPlan, LinkStorm

        plan = LinkFaultPlan(storm=LinkStorm(probability=0.1, seed=2))
        policy = HealthPolicy(confirm_rounds=2)
        campaign = (
            CampaignBuilder(ExperimentConfig(seed=1))
            .with_link_faults(plan)
            .with_health_policy(policy)
            .build()
        )
        assert campaign.monitoring.link_faults is plan
        assert campaign.monitoring.health_policy is policy


class TestComposition:
    UNTIL = dt.datetime(2010, 2, 21)

    def test_without_webcam_schedules_no_frames(self):
        campaign = CampaignBuilder(ExperimentConfig(seed=2)).without("webcam").build()
        campaign.run(until=self.UNTIL)
        assert campaign.webcam.frames == []

    def test_without_prototype_skips_phase_one(self):
        campaign = (
            CampaignBuilder(ExperimentConfig(seed=2)).without("prototype").build()
        )
        results = campaign.run(until=self.UNTIL)
        assert campaign.prototype_result is None
        assert results.prototype is None

    def test_extra_instrument_attached_at_test_start(self):
        fake = FakeInstrument()
        campaign = (
            CampaignBuilder(ExperimentConfig(seed=2))
            .with_instrument("fake", lambda c: fake)
            .build()
        )
        assert campaign.instruments["fake"] is fake
        campaign.run(until=self.UNTIL)
        test_start = campaign.clock.to_seconds(campaign.config.test_start)
        assert fake.samples
        assert fake.samples[0] == test_start

    def test_subscriber_observes_installs(self):
        installs = []
        campaign = (
            CampaignBuilder(ExperimentConfig(seed=2))
            .with_subscriber(
                lambda bus: bus.subscribe(HostInstalled, installs.append)
            )
            .build()
        )
        campaign.run(until=self.UNTIL)
        # Feb 19: the first three tent/basement pairs.
        assert {e.host_id for e in installs} == {1, 2, 3, 4, 5, 7}


class TestFacadeEquivalence:
    def test_experiment_facade_matches_direct_build(self):
        until = dt.datetime(2010, 2, 22)
        via_facade = Experiment(ExperimentConfig(seed=3)).run(until=until)
        via_builder = CampaignBuilder(ExperimentConfig(seed=3)).build().run(until=until)
        assert via_facade.summary() == via_builder.summary()
        assert via_facade.ledger.runs_per_host == via_builder.ledger.runs_per_host
        assert via_facade.fault_log.events == via_builder.fault_log.events
        assert via_facade.event_counts() == via_builder.event_counts()

    def test_extra_instrument_does_not_perturb_the_run(self):
        until = dt.datetime(2010, 2, 22)
        plain = CampaignBuilder(ExperimentConfig(seed=3)).build().run(until=until)
        instrumented = (
            CampaignBuilder(ExperimentConfig(seed=3))
            .with_instrument("fake", lambda c: FakeInstrument())
            .build()
            .run(until=until)
        )
        assert plain.summary() == instrumented.summary()
        assert plain.ledger.runs_per_host == instrumented.ledger.runs_per_host
        assert list(plain.outside_temperature().values) == list(
            instrumented.outside_temperature().values
        )
