"""End-to-end assertions over the full Feb-May campaign.

These tests check the *shape* of the paper's findings at the default
seed: who failed, by roughly what rate, and which instruments saw what.
"""

import pytest

from repro.analysis.failures import find_common_cause_clusters
from repro.hardware.faults import FaultKind
from repro.hardware.host import HostState


class TestSnapshotCensus:
    def test_snapshot_taken_at_paper_date(self, full_results):
        snapshot = full_results.snapshot
        assert snapshot is not None
        assert full_results.clock.format(snapshot.time).startswith("2010-03-27")

    def test_failure_rate_comparable_to_paper(self, full_results):
        # Paper: 1/18 = 5.6 %; Intel: 4.46 %.  Shape: low single digits,
        # not a cold-driven massacre.
        snapshot = full_results.snapshot
        assert 0.0 <= snapshot.failure_rate_percent <= 17.0

    def test_control_group_clean_at_snapshot(self, full_results):
        # "None of the hosts in the control group have failed yet."
        assert full_results.snapshot.basement_failed <= 1

    def test_failed_hosts_are_the_defective_series(self, full_results):
        for host_id in full_results.snapshot.failed_host_ids:
            host = full_results.fleet.host(host_id)
            assert host.spec.vendor_id == "B", (
                "at the default seed, snapshot failures should come from "
                "the known-unreliable SFF series"
            )


class TestWrongHashes:
    def test_wrong_hash_rate_matches_paper_ballpark(self, full_results):
        # Paper: 5 / 27,627 ~ 1.8e-4 per run.
        ratio = full_results.ledger.wrong_hash_ratio
        assert 0.3e-4 < ratio < 6.0e-4

    def test_only_non_ecc_hosts_report_wrong_hashes(self, full_results):
        for host_id in full_results.ledger.hosts_with_wrong_hashes():
            assert not full_results.fleet.host(host_id).spec.ecc_memory

    def test_ecc_hosts_still_see_corrected_faults_eventually(self, full_results):
        ecc_hosts = [
            h for h in full_results.fleet.hosts.values() if h.spec.ecc_memory
        ]
        assert all(h.memory.uncorrected_fault_count == 0 for h in ecc_hosts)

    def test_stored_archives_have_few_corrupted_blocks(self, full_results):
        # Section 4.2.2: single block of 396 corrupted.
        for archive in full_results.ledger.stored_archives:
            assert archive.block_count == 396
            assert 1 <= len(archive.corrupted_blocks) <= 2

    def test_memory_error_ratio_within_factor_of_paper(self, full_results):
        estimate = full_results.memory_error_estimate()
        assert estimate.within_factor_of_paper(factor=4.0)


class TestFaultNarrative:
    def test_host_15_story(self, full_results):
        # Two failures -> taken indoors -> replaced by #19 in the tent.
        policy = full_results.policy
        assert policy.replacements
        _, old_id, new_id = policy.replacements[0]
        assert new_id == 19
        replaced = full_results.fleet.host(old_id)
        assert replaced.enclosure is full_results.fleet.indoors
        assert full_results.fleet.host(19).installed_at is not None
        # "A standard Memtest86+ run caused another system failure."
        assert policy.memtest_verdicts[old_id] is False

    def test_sensor_chip_latched_during_cold_snap(self, full_results):
        latched = [
            h for h in full_results.fleet.hosts.values() if h.sensor.ever_latched
        ]
        assert latched, "the -22 degC episode should latch at least one chip"
        for host in latched:
            when = full_results.clock.to_datetime(host.sensor.latch_time)
            assert when.month == 2, "latch should happen in the February snap"

    def test_sensor_recovered_by_warm_reboot(self, full_results):
        # "After a week, we risked a warm system reboot, which caused the
        # sensor chip to work again."
        from repro.hardware.sensors import SensorState

        for host in full_results.fleet.hosts.values():
            if host.sensor.ever_latched and host.running:
                assert host.sensor.state is SensorState.OK

    def test_erroneous_readings_collected(self, full_results):
        assert len(full_results.monitoring.erroneous_readings()) > 0

    def test_both_tent_switches_failed(self, full_results):
        assert all(not s.operational for s in full_results.fleet.tent_switches)
        switch_events = full_results.fault_log.of_kind(FaultKind.SWITCH)
        assert len(switch_events) >= 2

    def test_spare_switch_manifested_identical_failure(self, full_results):
        assert full_results.policy.spare_bench_result is False

    def test_no_environmental_common_cause(self, full_results):
        # Research question 3: the cold never kills several hosts at once.
        # (The 13-week campaign may produce the odd coincidental pairing of
        # independent spring-time transients; what must NOT happen is a
        # cluster during sub-zero weather.)
        clusters = find_common_cause_clusters(
            full_results.fault_log.events, window_hours=48.0
        )
        assert len(clusters) <= 1
        outside = full_results.outside_temperature()
        for cluster in clusters:
            for event in cluster.events:
                window = outside.window(event.time - 3600.0, event.time + 3600.0)
                assert window.mean() > 0.0, (
                    "a common-cause cluster coincided with sub-zero weather"
                )


class TestConditions:
    def test_outside_minimum_near_minus_22(self, full_results):
        assert full_results.outside_temperature().min() == pytest.approx(-22.0, abs=3.5)

    def test_tent_stays_warmer_than_outside_on_average(self, full_results):
        from repro.analysis.figures import fig3_temperatures

        excess = fig3_temperatures(full_results).inside_excess()
        assert excess.mean() > 2.0
        assert excess.min() > -2.0

    def test_high_rh_episodes_survived(self, full_results):
        # Section 5: RH above 80-90 % was "not a certified cause" of failure.
        outside_rh = full_results.outside_humidity()
        assert (outside_rh.values > 85.0).mean() > 0.05

    def test_powermeter_tracks_tent_load(self, full_results):
        meter = full_results.powermeter
        assert meter.energy_kwh > 100.0  # ~0.9 kW for weeks
        assert 400.0 < meter.watts_series()[-1] < 1400.0

    def test_most_hosts_survived_the_winter(self, full_results):
        running = [
            h for h in full_results.fleet.hosts.values()
            if h.state is HostState.RUNNING
        ]
        assert len(running) >= 15
