"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.seed == 7
        assert args.until is None
        assert not args.report

    def test_run_until_parses_date(self):
        args = build_parser().parse_args(["run", "--until", "2010-03-01"])
        assert args.until.month == 3

    def test_bad_date_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--until", "March 1st"])

    def test_sites_intake_limit(self):
        args = build_parser().parse_args(["sites", "--intake-limit", "30"])
        assert args.intake_limit == 30.0

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.seeds == [7, 11, 13, 17]
        assert args.jobs == 1
        assert args.scenario == "paper"
        assert not args.no_cache

    def test_sweep_seed_list_parses(self):
        args = build_parser().parse_args(["sweep", "--seeds", "3,5,9", "--jobs", "4"])
        assert args.seeds == [3, 5, 9]
        assert args.jobs == 4

    def test_sweep_zero_jobs_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--jobs", "0"])

    def test_sweep_bad_seed_list_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--seeds", "seven"])

    def test_sweep_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--scenario", "lunar"])

    def test_run_telemetry_flags_default_off(self):
        args = build_parser().parse_args(["run"])
        assert args.telemetry_out is None
        assert args.run_log is None

    def test_run_telemetry_out_parses(self):
        args = build_parser().parse_args(["run", "--telemetry-out", "t.json"])
        assert args.telemetry_out == "t.json"

    def test_telemetry_defaults(self):
        args = build_parser().parse_args(["telemetry"])
        assert args.seed == 7
        assert args.top == 10
        assert not args.prometheus

    def test_sweep_telemetry_flag(self):
        args = build_parser().parse_args(["sweep", "--telemetry"])
        assert args.telemetry

    def test_sweep_fault_tolerance_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.retries == 0
        assert args.timeout is None
        assert not args.keep_going

    def test_sweep_fault_tolerance_flags_parse(self):
        args = build_parser().parse_args(
            ["sweep", "--retries", "2", "--timeout", "1.5", "--keep-going"]
        )
        assert args.retries == 2
        assert args.timeout == 1.5
        assert args.keep_going

    def test_sweep_negative_retries_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--retries", "-1"])

    def test_sweep_non_positive_timeout_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--timeout", "0"])

    def test_atlas_defaults(self):
        args = build_parser().parse_args(["atlas"])
        assert args.sites == 100
        assert args.seed == 7
        assert args.jobs == 1
        assert args.intake_limit == 27.0
        assert args.top is None
        assert args.cache_dir is None
        assert not args.resumable
        assert not args.keep_going

    def test_atlas_flags_parse(self):
        args = build_parser().parse_args(
            ["atlas", "--sites", "200", "--seed", "3", "--jobs", "4",
             "--resumable", "--top", "10"]
        )
        assert args.sites == 200
        assert args.seed == 3
        assert args.jobs == 4
        assert args.resumable
        assert args.top == 10

    def test_atlas_zero_sites_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["atlas", "--sites", "0"])

    def test_run_degraded_flags_default_off(self):
        args = build_parser().parse_args(["run"])
        assert args.link_faults is None
        assert args.confirm_rounds == 1
        assert args.monitor_retries == 0

    def test_run_link_faults_parses_to_plan(self):
        from repro.monitoring.transport import LinkFaultAction, LinkFaultPlan

        args = build_parser().parse_args(
            ["run", "--link-faults", "storm:0.25:seed=3,5:12:partial:fraction=0.3"]
        )
        assert isinstance(args.link_faults, LinkFaultPlan)
        assert args.link_faults.storm.probability == 0.25
        (fault,) = args.link_faults.faults
        assert fault.action is LinkFaultAction.PARTIAL_TRANSFER

    def test_run_bad_link_faults_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--link-faults", "bogus"])

    def test_run_confirm_rounds_parses(self):
        args = build_parser().parse_args(["run", "--confirm-rounds", "3"])
        assert args.confirm_rounds == 3

    def test_run_zero_confirm_rounds_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--confirm-rounds", "0"])

    def test_run_monitor_retries_parses(self):
        args = build_parser().parse_args(["run", "--monitor-retries", "2"])
        assert args.monitor_retries == 2

    def test_run_negative_monitor_retries_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--monitor-retries", "-1"])


class TestCommands:
    def test_pue_prints_the_paper_number(self, capsys):
        assert main(["pue"]) == 0
        out = capsys.readouterr().out
        assert "1.74" in out

    def test_sites_ranks_helsinki_over_singapore(self, capsys):
        assert main(["sites"]) == 0
        out = capsys.readouterr().out
        assert out.index("helsinki") < out.index("singapore")

    def test_run_truncated_prints_summary(self, capsys):
        assert main(["run", "--until", "2010-02-22", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "Prototype" in out
        assert "Workload" in out

    def test_run_report_mode(self, capsys):
        assert main(["run", "--until", "2010-02-22", "--report"]) == 0
        out = capsys.readouterr().out
        assert "PUE of the new cluster" in out

    def test_run_degraded_prints_summary_line(self, capsys):
        assert main([
            "run", "--until", "2010-02-22",
            "--link-faults", "storm:0.5:seed=3",
            "--monitor-retries", "2", "--confirm-rounds", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "degraded-mode:" in out
        assert "ssh timeouts" in out

    def test_run_without_degraded_flags_stays_silent(self, capsys):
        assert main(["run", "--until", "2010-02-22"]) == 0
        assert "degraded-mode:" not in capsys.readouterr().out


class TestSweepCommand:
    def test_sweep_runs_and_reports_cache(self, tmp_path, capsys):
        argv = [
            "sweep", "--seeds", "7,11", "--jobs", "2",
            "--until", "2010-02-21", "--cache-dir", str(tmp_path / "runs"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "pooled failure rate" in out
        assert "0 from cache, 2 computed" in out
        # The repeat invocation is served from the record cache.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2 from cache, 0 computed" in out

    def test_sweep_no_cache(self, capsys):
        argv = ["sweep", "--seeds", "7", "--until", "2010-02-21", "--no-cache"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 from cache, 1 computed" in out

    def test_sweep_with_retries_reports_fault_note(self, capsys):
        argv = [
            "sweep", "--seeds", "7", "--until", "2010-02-21", "--no-cache",
            "--retries", "1", "--keep-going",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        # fault-free run: no retries happened, so no fault note is shown
        assert "retried" not in out
        assert "failures" not in out


class TestAtlasCommand:
    def test_atlas_prints_ranked_table(self, tmp_path, capsys):
        argv = [
            "atlas", "--sites", "4", "--seed", "7",
            "--cache-dir", str(tmp_path / "atlas"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Free-cooling atlas: 4 sites, seed 7" in out
        assert "USD/yr saved" in out
        assert "site-0000" in out
        assert "0 from cache, 4 computed" in out
        # Rerun: served from cache, table identical.
        assert main(argv) == 0
        again = capsys.readouterr().out
        assert "4 from cache, 0 computed" in again
        assert again.split("(jobs")[0].rsplit("4 site(s)")[0] == (
            out.split("(jobs")[0].rsplit("4 site(s)")[0]
        )

    def test_atlas_top_truncates(self, capsys):
        assert main(["atlas", "--sites", "5", "--seed", "7", "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "3 more site(s) not shown" in out

    def test_atlas_progress_out_writes_events(self, tmp_path, capsys):
        import json

        path = tmp_path / "p.jsonl"
        argv = [
            "atlas", "--sites", "3", "--seed", "7",
            "--progress-out", str(path),
        ]
        assert main(argv) == 0
        assert "progress ->" in capsys.readouterr().out
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [l["kind"] for l in lines] == ["completed"] * 3
        assert lines[-1]["done"] == 3


class TestTelemetryCommands:
    def test_run_with_telemetry_out_and_run_log(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "t.json"
        log_path = tmp_path / "run.jsonl"
        argv = [
            "run", "--until", "2010-02-22",
            "--telemetry-out", str(out_path), "--run-log", str(log_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "telemetry ->" in out
        data = json.loads(out_path.read_text())
        engine_spans = {
            label: stats
            for label, stats in data["spans"].items()
            if label.startswith("engine.")
        }
        assert engine_spans
        assert all(stats["count"] > 0 for stats in engine_spans.values())
        lines = log_path.read_text().splitlines()
        assert lines and all(json.loads(line)["sim_time_s"] >= 0 for line in lines)

    def test_telemetry_verb_prints_report(self, capsys):
        assert main(["telemetry", "--until", "2010-02-22", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "Hot labels" in out
        assert "Slowest spans" in out
        assert "engine." in out

    def test_telemetry_verb_prometheus(self, capsys):
        assert main(["telemetry", "--until", "2010-02-22", "--prometheus"]) == 0
        out = capsys.readouterr().out
        assert "repro_span_fired_total" in out
        assert "# TYPE repro_monitoring_rounds_total counter" in out

    def test_sweep_telemetry_prints_merged_tallies(self, capsys):
        argv = [
            "sweep", "--seeds", "7", "--until", "2010-02-21",
            "--no-cache", "--telemetry",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Merged telemetry" in out
        assert "engine." in out


class TestExportCommand:
    def test_export_writes_flat_files(self, tmp_path, capsys):
        assert main(["export", str(tmp_path / "dump"), "--until", "2010-02-22"]) == 0
        out = capsys.readouterr().out
        assert "meta.json" in out
        assert (tmp_path / "dump" / "outside_temperature.csv").exists()
        assert (tmp_path / "dump" / "faults.tsv").exists()


class TestObservabilityFlags:
    def test_run_progress_flags_default_off(self):
        args = build_parser().parse_args(["run"])
        assert not args.progress
        assert args.progress_out is None

    def test_run_progress_out_parses(self):
        args = build_parser().parse_args(["run", "--progress-out", "hb.jsonl"])
        assert args.progress_out == "hb.jsonl"

    def test_observe_defaults(self):
        args = build_parser().parse_args(["observe"])
        assert args.hosts == 1900
        assert args.seed == 7
        assert args.pod is None
        assert args.signal == "tent_air_c"
        assert args.capacity == 512
        assert args.top == 5

    def test_observe_drilldown_flags_parse(self):
        args = build_parser().parse_args(
            ["observe", "--pod", "3", "--signal", "energy_kwh", "--capacity", "64"]
        )
        assert args.pod == 3
        assert args.signal == "energy_kwh"
        assert args.capacity == 64

    def test_telemetry_json_and_hosts_parse(self):
        args = build_parser().parse_args(["telemetry", "--json", "--hosts", "190"])
        assert args.json
        assert args.hosts == 190

    def test_sweep_progress_out_parses(self):
        args = build_parser().parse_args(["sweep", "--progress-out", "p.jsonl"])
        assert args.progress_out == "p.jsonl"


class TestObservabilityCommands:
    def test_observe_renders_dashboard(self, capsys):
        argv = [
            "observe", "--hosts", "95", "--until", "2010-02-21",
            "--pod", "2", "--width", "40",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "fleet observatory:" in out
        assert "tent air (fleet median)" in out
        assert "pod 2 vs fleet median" in out
        assert "phase profile" in out
        assert "fleetscale.thermal" in out

    def test_observe_writes_heartbeat_file(self, tmp_path, capsys):
        import json

        hb = tmp_path / "hb.jsonl"
        argv = [
            "observe", "--hosts", "38", "--until", "2010-02-21",
            "--progress-out", str(hb),
        ]
        assert main(argv) == 0
        lines = [json.loads(l) for l in hb.read_text().splitlines()]
        assert lines
        final = lines[-1]
        assert final["type"] == "heartbeat"
        assert final["source"] == "observe"
        assert final["final"] is True
        assert final["done_frac"] == 1.0
        assert "hottest_span" in final

    def test_observe_bad_pod_rejected(self, capsys):
        argv = ["observe", "--hosts", "38", "--until", "2010-02-21", "--pod", "99"]
        assert main(argv) == 2
        assert "--pod must be in" in capsys.readouterr().err

    def test_observe_bad_signal_rejected(self, capsys):
        argv = [
            "observe", "--hosts", "38", "--until", "2010-02-21",
            "--pod", "0", "--signal", "nope",
        ]
        assert main(argv) == 2
        assert "unknown signal" in capsys.readouterr().err

    def test_run_paper_campaign_progress_out(self, tmp_path, capsys):
        import json

        hb = tmp_path / "hb.jsonl"
        argv = ["run", "--until", "2010-02-20", "--progress-out", str(hb)]
        assert main(argv) == 0
        assert "progress  ->" in capsys.readouterr().out
        lines = [json.loads(l) for l in hb.read_text().splitlines()]
        assert lines[-1]["final"] is True
        assert lines[-1]["source"] == "run"
        assert "failures" in lines[-1]

    def test_run_fleet_progress_out(self, tmp_path, capsys):
        import json

        hb = tmp_path / "hb.jsonl"
        argv = [
            "run", "--hosts", "38", "--until", "2010-02-21",
            "--progress-out", str(hb),
        ]
        assert main(argv) == 0
        lines = [json.loads(l) for l in hb.read_text().splitlines()]
        assert lines[-1]["source"] == "fleet"
        assert lines[-1]["final"] is True

    def test_run_fleet_telemetry_out_now_supported(self, tmp_path, capsys):
        import json

        path = tmp_path / "t.json"
        argv = [
            "run", "--hosts", "38", "--until", "2010-02-21",
            "--telemetry-out", str(path),
        ]
        assert main(argv) == 0
        data = json.loads(path.read_text())
        assert any(l.startswith("fleetscale.") for l in data["spans"])

    def test_run_resume_rejects_progress(self, tmp_path, capsys):
        argv = [
            "run", "--resume", str(tmp_path / "nope.json"), "--progress",
        ]
        assert main(argv) == 2
        assert "--progress" in capsys.readouterr().err

    def test_telemetry_json_output(self, capsys):
        import json

        assert main(["telemetry", "--until", "2010-02-22", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["schema"] == 1
        assert data["hot_labels"]
        assert any(l["label"].startswith("engine.") for l in data["hot_labels"])
        assert "counters" in data and "gauges" in data

    def test_telemetry_json_and_prometheus_conflict(self, capsys):
        argv = ["telemetry", "--json", "--prometheus"]
        assert main(argv) == 2
        assert "pick one" in capsys.readouterr().err

    def test_telemetry_fleet_profile(self, capsys):
        argv = ["telemetry", "--hosts", "38", "--until", "2010-02-21"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "fleetscale.thermal" in out
        assert "Gauges" in out

    def test_sweep_progress_out_writes_events(self, tmp_path, capsys):
        import json

        path = tmp_path / "p.jsonl"
        argv = [
            "sweep", "--seeds", "3,5", "--until", "2010-02-20",
            "--no-cache", "--progress-out", str(path),
        ]
        assert main(argv) == 0
        assert "progress ->" in capsys.readouterr().out
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [l["kind"] for l in lines] == ["completed", "completed"]
        assert lines[-1]["done"] == 2
        assert lines[-1]["total"] == 2
