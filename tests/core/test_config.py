"""Tests for the experiment configuration."""

import datetime as dt

import pytest

from repro.core.config import (
    ExperimentConfig,
    HostPlan,
    paper_host_plans,
    paper_modification_plans,
)
from repro.thermal.tent import Modification


class TestPaperHostPlans:
    def test_eighteen_installed_plus_one_spare(self):
        plans = paper_host_plans()
        assert len(plans) == 19
        assert sum(1 for p in plans if p.group == "spare") == 1

    def test_nine_per_group(self):
        # "yielding a symmetric nine hosts in the basement and nine in the tent"
        plans = paper_host_plans()
        assert sum(1 for p in plans if p.group == "tent") == 9
        assert sum(1 for p in plans if p.group == "basement") == 9

    def test_vendor_mix_matches_paper(self):
        # "ten hosts from vendor A, four from B, and four from C" (+1 B spare)
        plans = paper_host_plans()
        installed = [p for p in plans if p.group != "spare"]
        by_vendor = {}
        for p in installed:
            by_vendor[p.vendor_id] = by_vendor.get(p.vendor_id, 0) + 1
        assert by_vendor == {"A": 10, "B": 4, "C": 4}

    def test_pairwise_twins_are_identical_and_synchronised(self):
        # "Computers are thus installed pairwise so that identical units are
        # placed into the control group ... and the test group ..."
        plans = {p.host_id: p for p in paper_host_plans()}
        for plan in plans.values():
            if plan.twin_id is None:
                continue
            twin = plans[plan.twin_id]
            assert twin.twin_id == plan.host_id
            assert twin.vendor_id == plan.vendor_id
            assert twin.install_date == plan.install_date
            assert {plan.group, twin.group} == {"tent", "basement"}

    def test_host_15_is_a_vendor_b_tent_host(self):
        plan = next(p for p in paper_host_plans() if p.host_id == 15)
        assert plan.vendor_id == "B"
        assert plan.group == "tent"

    def test_replacement_19_is_vendor_b_spare(self):
        plan = next(p for p in paper_host_plans() if p.host_id == 19)
        assert plan.vendor_id == "B"
        assert plan.group == "spare"
        assert plan.install_date is None

    def test_install_dates_span_feb19_to_mar13(self):
        dates = [p.install_date for p in paper_host_plans() if p.install_date]
        assert min(dates).date() == dt.date(2010, 2, 19)
        assert max(dates).date() == dt.date(2010, 3, 13)


class TestModificationPlans:
    def test_letters_in_paper_order(self):
        letters = [p.modification.letter for p in paper_modification_plans()]
        # Fig. 3 order of appearance R, I, B, F; the door came last.
        assert letters == ["R", "I", "B", "F", "D"]

    def test_dates_ascending(self):
        dates = [p.date for p in paper_modification_plans()]
        assert dates == sorted(dates)

    def test_all_in_march(self):
        assert all(p.date.month == 3 for p in paper_modification_plans())


class TestConfigValidation:
    def test_default_config_valid(self):
        config = ExperimentConfig()
        assert config.prototype_start < config.prototype_end <= config.test_start

    def test_prototype_must_precede_campaign(self):
        with pytest.raises(ValueError):
            ExperimentConfig(test_start=dt.datetime(2010, 2, 13))

    def test_campaign_must_end_after_start(self):
        with pytest.raises(ValueError):
            ExperimentConfig(end_date=dt.datetime(2010, 2, 19))

    def test_climate_must_cover_campaign(self):
        with pytest.raises(ValueError):
            ExperimentConfig(end_date=dt.datetime(2010, 8, 1))

    def test_duplicate_host_ids_rejected(self):
        plans = paper_host_plans() + (
            HostPlan(1, "A", "spare", None),
        )
        with pytest.raises(ValueError):
            ExperimentConfig(host_plans=plans)

    def test_host_plan_group_validated(self):
        with pytest.raises(ValueError):
            HostPlan(1, "A", "garage", dt.datetime(2010, 2, 19))

    def test_non_spare_needs_date(self):
        with pytest.raises(ValueError):
            HostPlan(1, "A", "tent", None)


class TestConfigViews:
    def test_plans_by_group_sorted(self):
        config = ExperimentConfig()
        tent_ids = [p.host_id for p in config.plans_by_group("tent")]
        assert tent_ids == sorted(tent_ids)
        assert len(tent_ids) == 9

    def test_plan_for_lookup(self):
        config = ExperimentConfig()
        assert config.plan_for(15).vendor_id == "B"
        with pytest.raises(KeyError):
            config.plan_for(99)

    def test_with_end_copies(self):
        config = ExperimentConfig()
        short = config.with_end(dt.datetime(2010, 3, 1))
        assert short.end_date == dt.datetime(2010, 3, 1)
        assert config.end_date != short.end_date

    def test_with_seed_copies(self):
        assert ExperimentConfig().with_seed(11).seed == 11
