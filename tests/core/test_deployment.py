"""Tests for fleet construction and the tick loop."""

import pytest

from repro.climate.generator import WeatherGenerator
from repro.core.config import ExperimentConfig
from repro.core.deployment import Fleet, paper_install_plan
from repro.hardware.faults import FaultLog
from repro.hardware.host import HostState
from repro.sim.clock import HOUR, SimClock
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams


@pytest.fixture
def rig():
    config = ExperimentConfig(seed=7)
    sim = Simulator()
    streams = RngStreams(config.seed)
    weather = WeatherGenerator(config.climate, streams, sim.clock)
    fault_log = FaultLog()
    fleet = Fleet(sim, config, streams, weather, fault_log)
    return sim, fleet, config


class TestConstruction:
    def test_nineteen_hosts(self, rig):
        _sim, fleet, _config = rig
        assert len(fleet.hosts) == 19
        assert all(h.state is HostState.STAGED for h in fleet.hosts.values())

    def test_two_defective_tent_switches_and_a_defective_spare(self, rig):
        _sim, fleet, _config = rig
        assert len(fleet.tent_switches) == 2
        assert all(s.inherent_defect for s in fleet.tent_switches)
        assert fleet.spare_switch.inherent_defect
        assert all(not s.inherent_defect for s in fleet.basement_switches)

    def test_three_enclosures(self, rig):
        _sim, fleet, _config = rig
        names = {e.name for e in fleet.enclosures}
        assert names == {"tent", "basement", "indoor office"}

    def test_group_lookup(self, rig):
        _sim, fleet, _config = rig
        assert len(fleet.hosts_in_group("tent")) == 9
        assert fleet.enclosure_for_group("tent") is fleet.tent
        with pytest.raises(ValueError):
            fleet.enclosure_for_group("spare")

    def test_unknown_host_raises(self, rig):
        _sim, fleet, _config = rig
        with pytest.raises(KeyError):
            fleet.host(99)

    def test_install_plan_sorted_by_date(self):
        plan = paper_install_plan()
        dates = [p.install_date for p in plan]
        assert dates == sorted(dates)
        assert len(plan) == 18


class TestSwitchAssignment:
    def test_tent_hosts_balance_across_switches(self, rig):
        _sim, fleet, _config = rig
        first = fleet.next_tent_switch()
        first.connect("host01")
        second = fleet.next_tent_switch()
        assert first is not second  # least-loaded picks the empty one
        second.connect("host02")
        third = fleet.next_tent_switch()
        assert len(third.connected()) <= 1

    def test_dead_switch_skipped(self, rig):
        _sim, fleet, _config = rig
        fleet.tent_switches[0].fail(0.0)
        chosen = {fleet.next_tent_switch() for _ in range(4)}
        assert chosen == {fleet.tent_switches[1]}

    def test_all_dead_provisions_replacement(self, rig):
        _sim, fleet, _config = rig
        for s in fleet.tent_switches:
            s.fail(0.0)
        replacement = fleet.next_tent_switch()
        assert replacement.operational
        assert not replacement.inherent_defect
        assert replacement in fleet.active_tent_switches

    def test_swap_tent_switch(self, rig):
        _sim, fleet, _config = rig
        dead = fleet.tent_switches[0]
        new = fleet.provision_replacement_switch()
        fleet.swap_tent_switch(dead, new)
        assert dead not in fleet.active_tent_switches
        assert new in fleet.active_tent_switches

    def test_basement_round_robin(self, rig):
        _sim, fleet, _config = rig
        seen = {fleet.next_basement_switch() for _ in range(2)}
        assert seen == set(fleet.basement_switches)


class TestInstallAndTick:
    def test_install_starts_archiver(self, rig):
        sim, fleet, config = rig
        start = sim.clock.to_seconds(config.test_start)
        sim.run_until(start)
        host = fleet.install(1, fleet.tent, start)
        assert host.running
        assert 1 in fleet.archivers
        sim.run_until(start + 2 * HOUR)
        assert fleet.ledger.runs_per_host.get(1, 0) >= 10

    def test_tick_heats_the_tent(self, rig):
        sim, fleet, config = rig
        start = sim.clock.to_seconds(config.test_start)
        sim.run_until(start)
        for host_id in (1, 2, 3):
            fleet.install(host_id, fleet.tent, start)
        fleet.start_ticking(start)
        sim.run_until(start + 12 * HOUR)
        outside = float(fleet.tent.weather.temperature(sim.now))
        assert fleet.tent.intake_temp_c > outside + 3.0

    def test_ticking_twice_rejected(self, rig):
        sim, fleet, _config = rig
        fleet.start_ticking(0.0)
        with pytest.raises(RuntimeError):
            fleet.start_ticking(0.0)

    def test_stop_ticking(self, rig):
        sim, fleet, _config = rig
        fleet.start_ticking(0.0)
        fleet.stop_ticking()
        sim.run_until(2 * HOUR)
        assert fleet.tent._last_time is None or fleet.tent._last_time <= 2 * HOUR

    def test_switch_failure_logged_once(self, rig):
        sim, fleet, config = rig
        from repro.hardware.faults import FaultKind

        start = sim.clock.to_seconds(config.test_start)
        sim.run_until(start)
        fleet.power_tent_switches()
        fleet.start_ticking(start)
        fleet.tent_switches[0].fail(start + HOUR)
        sim.run_until(start + 10 * HOUR)
        events = fleet.fault_log.of_kind(FaultKind.SWITCH)
        assert len([e for e in events if e.detail == "tent-sw1"]) == 1
