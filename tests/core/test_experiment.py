"""Tests for the two-phase experiment driver (short horizons)."""

import datetime as dt

import pytest

from repro import Experiment, ExperimentConfig
from repro.hardware.host import HostState


class TestPrototypePhase:
    def test_prototype_matches_paper_shape(self, short_results):
        proto = short_results.prototype
        assert proto is not None
        # Paper: survived the whole weekend; outside min -10.2, mean -9.2;
        # CPU as low as -4 degC.  Shape: survived, deeply sub-zero, CPU
        # below zero but warmer than outside.
        assert proto.survived
        assert -14.0 < proto.outside_mean_c < -5.0
        assert proto.outside_min_c < proto.outside_mean_c
        assert proto.cpu_min_c < 0.0
        assert proto.cpu_min_c > proto.outside_min_c

    def test_prototype_describe(self, short_results):
        text = short_results.prototype.describe()
        assert "remained operational" in text


class TestShortCampaign:
    def test_first_installs_running(self, short_results):
        fleet = short_results.fleet
        for host_id in (1, 2, 3, 4, 5, 7):  # Feb 19 pairs
            host = fleet.host(host_id)
            assert host.installed_at is not None
        # Later installs have not happened by Mar 3.
        assert fleet.host(11).state is HostState.STAGED

    def test_workload_running_on_installed_hosts(self, short_results):
        ledger = short_results.ledger
        assert ledger.runs_per_host.get(1, 0) > 1000  # ~12 days * 144
        assert 11 not in ledger.runs_per_host

    def test_station_covers_prototype_and_campaign(self, short_results):
        outside = short_results.outside_temperature()
        clock = short_results.clock
        assert outside.times[0] <= clock.at(2010, 2, 12, 16)
        assert outside.times[-1] >= clock.at(2010, 3, 2)

    def test_lascar_arrives_late(self, short_results):
        inside = short_results.inside_temperature_raw()
        clock = short_results.clock
        # Arrival Mar 1: nothing before, something after.
        assert inside.empty or inside.times[0] >= clock.at(2010, 3, 1)

    def test_cold_snap_observed(self, short_results):
        outside = short_results.outside_temperature()
        assert outside.min() < -18.0

    def test_no_snapshot_before_snapshot_date(self, short_results):
        assert short_results.snapshot is None

    def test_summary_renders(self, short_results):
        text = short_results.summary()
        assert "Prototype" in text
        assert "Workload" in text


class TestRunSemantics:
    def test_run_twice_rejected(self):
        exp = Experiment(ExperimentConfig(seed=1))
        exp.run(until=dt.datetime(2010, 2, 16))
        with pytest.raises(RuntimeError):
            exp.run(until=dt.datetime(2010, 2, 17))

    def test_end_before_prototype_rejected(self):
        exp = Experiment(ExperimentConfig(seed=1))
        with pytest.raises(ValueError):
            exp.run(until=dt.datetime(2010, 2, 13))


class TestDeterminism:
    def test_same_seed_identical_results(self):
        until = dt.datetime(2010, 2, 22)
        a = Experiment(ExperimentConfig(seed=3)).run(until=until)
        b = Experiment(ExperimentConfig(seed=3)).run(until=until)
        assert a.summary() == b.summary()
        assert a.ledger.runs_per_host == b.ledger.runs_per_host
        assert len(a.fault_log) == len(b.fault_log)
        assert list(a.outside_temperature().values) == list(
            b.outside_temperature().values
        )

    def test_different_seed_different_weather(self):
        until = dt.datetime(2010, 2, 22)
        a = Experiment(ExperimentConfig(seed=3)).run(until=until)
        b = Experiment(ExperimentConfig(seed=4)).run(until=until)
        assert list(a.outside_temperature().values) != list(
            b.outside_temperature().values
        )
