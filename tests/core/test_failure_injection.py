"""Failure-injection tests: break things mid-run and watch recovery.

These exercise the operator loop end-to-end against faults the default
seed never produces in this exact shape -- basement switch loss, mass
switch death, disk loss on a RAID host, sensor latch storms.
"""

import pytest

from repro.climate.generator import WeatherGenerator
from repro.core.config import ExperimentConfig
from repro.core.deployment import Fleet
from repro.core.protocol import OperatorPolicy
from repro.hardware.faults import FaultKind, FaultLog, TransientFaultModel
from repro.monitoring.collector import MonitoringHost
from repro.sim.clock import DAY, HOUR
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams


@pytest.fixture
def rig():
    config = ExperimentConfig(
        seed=3,
        transient_model=TransientFaultModel(
            base_rate_per_hour=0.0, defective_rate_per_hour=0.0
        ),
    )
    sim = Simulator()
    streams = RngStreams(config.seed)
    weather = WeatherGenerator(config.climate, streams, sim.clock)
    fault_log = FaultLog()
    fleet = Fleet(sim, config, streams, weather, fault_log)
    policy = OperatorPolicy(sim, config, fleet, fault_log)
    monitoring = MonitoringHost(
        sim,
        on_down_host=policy.on_down_host,
        on_unreachable=policy.on_unreachable,
        on_sensor_anomaly=policy.on_sensor_anomaly,
    )
    policy.bind_monitoring(monitoring)
    start = sim.clock.to_seconds(config.test_start)
    sim.run_until(start)
    fleet.power_tent_switches()
    fleet.start_ticking(start)
    return sim, fleet, policy, monitoring, fault_log


class TestBasementSwitchLoss:
    def test_basement_hosts_rerouted_to_stock_not_tent(self, rig):
        sim, fleet, policy, monitoring, _log = rig
        hosts = []
        for host_id in (4, 5):
            host = fleet.install(host_id, fleet.basement, sim.now)
            monitoring.register(host, [fleet.basement_switches[0]])
            hosts.append(host)
        fleet.basement_switches[0].fail(sim.now)
        monitoring.collect_round()
        sim.run_until(sim.now + 2 * DAY)
        for host in hosts:
            path = monitoring.paths[host.host_id]
            assert path.up
            assert path.switches[0] not in fleet.tent_switches
            assert path.switches[0] not in fleet.active_tent_switches or (
                not path.switches[0].inherent_defect
            )
            assert path.switches[0].name.startswith("replacement-sw")


class TestMassSwitchDeath:
    def test_both_tent_switches_dying_together_recovers(self, rig):
        sim, fleet, policy, monitoring, _log = rig
        for host_id in (1, 2, 3):
            host = fleet.install(host_id, fleet.tent, sim.now)
            monitoring.register(host, [fleet.next_tent_switch()])
        for switch in fleet.tent_switches:
            switch.fail(sim.now)
        monitoring.collect_round()
        sim.run_until(sim.now + 3 * DAY)
        assert all(p.up for p in monitoring.paths.values())
        # Both repairs went to stock replacements (no survivor to adopt).
        assert len(policy.switch_repairs) == 2
        for _t, _dead, new in policy.switch_repairs:
            assert new.startswith("replacement-sw")


class TestDiskLossOnRaidHost:
    def test_vendor_c_survives_single_disk_loss(self, rig):
        sim, fleet, policy, monitoring, fault_log = rig
        host = fleet.install(11, fleet.tent, sim.now)  # 2U server, 5 disks
        monitoring.register(host, [fleet.next_tent_switch()])
        host.storage.disks[2].fail(sim.now)  # a stripe member
        sim.run_until(sim.now + DAY)
        assert host.running
        assert host.storage.degraded
        assert not fault_log.of_kind(FaultKind.DISK)

    def test_vendor_c_double_mirror_loss_downs_the_host(self, rig):
        sim, fleet, policy, monitoring, fault_log = rig
        host = fleet.install(11, fleet.tent, sim.now)
        monitoring.register(host, [fleet.next_tent_switch()])
        host.storage.disks[0].fail(sim.now)
        host.storage.disks[1].fail(sim.now)
        sim.run_until(sim.now + DAY)
        assert fault_log.of_kind(FaultKind.DISK)
        # The operator inspects and resets; the array is still dead, so
        # the host fails again on the next tick -- it stays effectively
        # down rather than flapping back to health.
        assert not host.storage.operational


class TestSensorLatchStorm:
    def test_every_tent_chip_latching_is_handled(self, rig):
        from repro.hardware.sensors import SensorState

        sim, fleet, policy, monitoring, _log = rig
        hosts = []
        for host_id in (1, 2, 3):
            host = fleet.install(host_id, fleet.tent, sim.now)
            monitoring.register(host, [fleet.next_tent_switch()])
            host.sensor.state = SensorState.ERRATIC
            hosts.append(host)
        monitoring.collect_round()
        sim.run_until(sim.now + 10 * DAY)
        for host in hosts:
            assert host.sensor.state is SensorState.OK
