"""Fleet-scale batch campaign: layout, determinism, and sane dynamics."""

import numpy as np
import pytest

from repro.core.config import ExperimentConfig
from repro.core.fleetscale import (
    FAILED,
    POD_SIZE,
    RUNNING,
    STAGED,
    FleetScaleCampaign,
)


class TestCohortLayout:
    def test_pods_replicate_the_paper_plan(self):
        fleet = FleetScaleCampaign(3 * POD_SIZE)
        assert fleet.n_pods == 3
        # Slot k of every pod shares vendor, location, and fault plan.
        for k in range(POD_SIZE):
            slots = np.arange(3) * POD_SIZE + k
            assert len(set(fleet.vendor_ids[slots])) == 1
            assert len(set(fleet.tent_mask[slots])) == 1
            assert len(set(fleet.defective[slots])) == 1
        # The paper mix: 9 tent, 9 basement, 1 staged spare per pod.
        assert int(fleet.tent_mask[:POD_SIZE].sum()) == 9
        assert int((fleet.state[:POD_SIZE] == STAGED).sum()) == 1

    def test_partial_pod_is_allowed(self):
        fleet = FleetScaleCampaign(POD_SIZE + 5)
        assert fleet.n_hosts == POD_SIZE + 5
        assert fleet.n_pods == 2
        assert fleet.state.shape == (POD_SIZE + 5,)

    def test_tick_must_divide_into_cycles(self):
        with pytest.raises(ValueError):
            FleetScaleCampaign(19, tick_interval_s=700.0)
        with pytest.raises(ValueError):
            FleetScaleCampaign(0)


class TestDeterminism:
    def test_same_seed_same_summary(self):
        a = FleetScaleCampaign(200, ExperimentConfig(seed=11))
        b = FleetScaleCampaign(200, ExperimentConfig(seed=11))
        assert a.run(days=5.0) == b.run(days=5.0)

    def test_different_seed_diverges(self):
        a = FleetScaleCampaign(2000, ExperimentConfig(seed=11))
        b = FleetScaleCampaign(2000, ExperimentConfig(seed=12))
        sa, sb = a.run(days=5.0), b.run(days=5.0)
        assert (
            sa["transient_failures"],
            sa["wrong_hashes"],
            sa["energy_kwh"],
        ) != (sb["transient_failures"], sb["wrong_hashes"], sb["energy_kwh"])


class TestDynamics:
    @pytest.fixture(scope="class")
    def week(self):
        fleet = FleetScaleCampaign(5000, ExperimentConfig(seed=7))
        summary = fleet.run(days=7.0)
        return fleet, summary

    def test_counters_are_sane(self, week):
        fleet, s = week
        assert s["hosts"] == 5000
        assert s["simulated_s"] == pytest.approx(7 * 86400.0)
        assert 0 < s["running"] <= 5000
        assert s["transient_failures"] >= 0
        assert s["workload_runs"] > 0
        assert s["energy_kwh"] > 0
        assert s["monitor_rounds"] > 0
        assert s["tent_air_c"]["min"] <= s["tent_air_c"]["mean"] <= s["tent_air_c"]["max"]

    def test_failed_hosts_carry_repair_deadlines(self, week):
        fleet, _ = week
        down = fleet.state == FAILED
        if down.any():
            assert np.all(np.isfinite(fleet.repair_at[down]))
        up = fleet.state == RUNNING
        assert np.all(fleet.uptime_s[up] >= 0)

    def test_repairs_do_happen_over_a_long_window(self):
        fleet = FleetScaleCampaign(5000, ExperimentConfig(seed=7))
        s = fleet.run(days=21.0)
        assert s["transient_failures"] > 0
        assert s["repairs"] > 0

    def test_step_days_accumulates(self):
        fleet = FleetScaleCampaign(19, ExperimentConfig(seed=7))
        fleet.step_days(2.0)
        fleet.step_days(3.0)
        assert fleet.summary()["simulated_s"] == pytest.approx(5 * 86400.0)

    def test_format_summary_mentions_the_fleet(self):
        fleet = FleetScaleCampaign(38, ExperimentConfig(seed=7))
        fleet.run(days=1.0)
        text = fleet.format_summary()
        assert "38" in text and "pods" in text.lower()


class TestProgressGuard:
    def test_raising_run_still_writes_final_heartbeat(self):
        """A crash inside run() may not swallow the closing heartbeat."""
        import io
        import json

        from repro.telemetry.progress import ProgressMeter

        fleet = FleetScaleCampaign(19, ExperimentConfig(seed=7))
        stream = io.StringIO()
        fleet.progress = ProgressMeter(stream, interval_s=1.0, source="fleet")

        def boom(end):
            raise RuntimeError("disk died mid-campaign")

        fleet.sim.run_until = boom
        with pytest.raises(RuntimeError, match="disk died"):
            fleet.run(days=1.0)
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert lines, "no heartbeat written by the crashing run"
        assert lines[-1]["final"] is True
