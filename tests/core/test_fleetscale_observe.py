"""Fleet observatory wiring inside FleetScaleCampaign.

Two invariants matter: recording per-pod series must not change the
simulation (same census with recording on or off), and the recorded
series must agree with the campaign's own cumulative counters.
"""

import numpy as np
import pytest

from repro.core.config import ExperimentConfig
from repro.core.fleetscale import POD_SIZE, RUNNING, FleetScaleCampaign
from repro.telemetry.hub import Telemetry
from repro.telemetry.timeseries import SeriesRecorder, final_values


def run_fleet(days=3.0, hosts=10 * POD_SIZE, seed=7, **kwargs):
    fleet = FleetScaleCampaign(hosts, ExperimentConfig(seed=seed), **kwargs)
    fleet.run(days=days)
    return fleet


class TestRecordingIsNonPerturbing:
    def test_census_identical_with_recording_on(self):
        plain = run_fleet()
        recorded = run_fleet(record_series=True)
        assert plain.summary() == recorded.summary()

    def test_census_identical_with_telemetry_and_recording(self):
        plain = run_fleet()
        wired = run_fleet(record_series=True, telemetry=Telemetry())
        assert plain.summary() == wired.summary()

    def test_series_off_by_default(self):
        fleet = FleetScaleCampaign(POD_SIZE)
        assert fleet.series is None
        with pytest.raises(ValueError):
            fleet.pod_series("tent_air_c", 0)


class TestRecordedSeries:
    @pytest.fixture(scope="class")
    def fleet(self):
        return run_fleet(days=4.0, record_series=True)

    def test_one_sample_per_frame_until_first_fold(self, fleet):
        frames = fleet.summary()["engine"]["frames"]
        assert fleet.series.frames_seen == frames
        assert fleet.series.n_samples == frames  # 192 frames < 512 slots
        assert fleet.series.stride == 1

    def test_per_pod_signals_have_pod_rows(self, fleet):
        assert fleet.series.rows("tent_air_c") == fleet.n_pods
        assert fleet.series.rows("hosts_running") == fleet.n_pods
        assert fleet.series.rows("outside_temp_c") == 1
        assert fleet.series.rows("basement_c") == 1

    def test_final_cumulative_tallies_match_census(self, fleet):
        summary = fleet.summary()
        for signal, key in (
            ("failures_transient", "transient_failures"),
            ("failures_storage", "storage_failures"),
            ("sensor_latches", "sensor_latches"),
            ("wrong_hashes", "wrong_hashes"),
        ):
            per_pod = final_values(fleet.series, signal)
            assert per_pod.sum() == pytest.approx(summary[key]), signal

    def test_energy_series_sums_to_census_energy(self, fleet):
        per_pod = final_values(fleet.series, "energy_kwh")
        assert per_pod.sum() == pytest.approx(
            fleet.summary()["energy_kwh"], rel=1e-6
        )

    def test_hosts_running_matches_state_vector(self, fleet):
        per_pod = final_values(fleet.series, "hosts_running")
        expected = np.bincount(
            fleet.pod[fleet.state == RUNNING], minlength=fleet.n_pods
        )
        np.testing.assert_array_equal(per_pod, expected)

    def test_tent_air_matches_tent_bank(self, fleet):
        latest = final_values(fleet.series, "tent_air_c")
        np.testing.assert_allclose(latest, fleet.tents.air_temp_c)

    def test_pod_series_returns_timeline(self, fleet):
        series = fleet.pod_series("tent_air_c", 2)
        assert len(series) == fleet.series.n_samples
        assert np.all(np.diff(series.times) > 0)

    def test_recording_is_deterministic(self):
        a = run_fleet(days=2.0, record_series=True)
        b = run_fleet(days=2.0, record_series=True)
        np.testing.assert_array_equal(
            a.series.values("tent_air_c"), b.series.values("tent_air_c")
        )
        np.testing.assert_array_equal(
            a.series.values("energy_kwh"), b.series.values("energy_kwh")
        )

    def test_capacity_bounds_memory_on_long_runs(self):
        fleet = run_fleet(
            days=6.0, hosts=POD_SIZE, record_series=True, series_capacity=64
        )
        # 288 frames into 64 slots: folded, stride grew, memory flat.
        assert fleet.series.n_samples <= 64
        assert fleet.series.stride > 1
        assert fleet.series.frames_seen == fleet.summary()["engine"]["frames"]


class TestCheckpointRoundTrip:
    def test_series_survives_state_dict_round_trip(self):
        fleet = run_fleet(days=3.0, record_series=True)
        state = fleet.series.state_dict()
        clone = SeriesRecorder(
            dict(fleet.series.signals), capacity=fleet.series.capacity
        )
        clone.load_state_dict(state)
        np.testing.assert_array_equal(
            clone.values("tent_air_c"), fleet.series.values("tent_air_c")
        )
        np.testing.assert_array_equal(clone.times(), fleet.series.times())


class TestPhaseSpansAndEngineGauges:
    def test_phase_spans_cover_every_frame(self):
        telemetry = Telemetry()
        fleet = run_fleet(days=2.0, record_series=True, telemetry=telemetry)
        frames = fleet.summary()["engine"]["frames"]
        for phase in ("weather", "thermal", "hazards", "workload", "observe"):
            stats = telemetry.spans.stats(f"fleetscale.{phase}")
            assert stats.count == frames, phase

    def test_observe_span_absent_without_recording(self):
        telemetry = Telemetry()
        run_fleet(days=1.0, telemetry=telemetry)
        assert "fleetscale.observe" not in telemetry.spans.labels()

    def test_end_of_run_gauges_recorded(self):
        telemetry = Telemetry()
        fleet = run_fleet(days=2.0, telemetry=telemetry)
        summary = fleet.summary()
        gauges = {g.name: g.value for g in telemetry.metrics.gauges()}
        assert gauges["engine.events_fired"] == summary["engine"]["events_fired"]
        assert gauges["fleet.frames"] == summary["engine"]["frames"]
        assert gauges["fleet.hosts"] == fleet.n_hosts
        assert (
            gauges["fleet.transient_failures"] == summary["transient_failures"]
        )

    def test_summary_reports_engine_health(self):
        fleet = run_fleet(days=1.0)
        engine = fleet.summary()["engine"]
        assert engine["events_fired"] > 0
        assert engine["frames"] == 48
        assert "heap_compactions" in engine
        assert "engine:" in fleet.format_summary()
