"""Tests for the operator policy."""

import pytest

from repro.climate.generator import WeatherGenerator
from repro.core.config import ExperimentConfig
from repro.core.deployment import Fleet
from repro.core.protocol import OperatorPolicy
from repro.hardware.faults import FaultEvent, FaultKind, FaultLog, TransientFaultModel
from repro.hardware.host import HostState
from repro.hardware.sensors import SensorState
from repro.monitoring.collector import MonitoringHost
from repro.sim.clock import DAY, HOUR
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams


@pytest.fixture
def rig():
    config = ExperimentConfig(
        seed=7,
        transient_model=TransientFaultModel(
            base_rate_per_hour=0.0, defective_rate_per_hour=0.0
        ),
    )
    sim = Simulator()
    streams = RngStreams(config.seed)
    weather = WeatherGenerator(config.climate, streams, sim.clock)
    fault_log = FaultLog()
    fleet = Fleet(sim, config, streams, weather, fault_log)
    policy = OperatorPolicy(sim, config, fleet, fault_log)
    monitoring = MonitoringHost(
        sim,
        on_down_host=policy.on_down_host,
        on_unreachable=policy.on_unreachable,
        on_sensor_anomaly=policy.on_sensor_anomaly,
    )
    policy.bind_monitoring(monitoring)
    start = sim.clock.to_seconds(config.test_start)
    sim.run_until(start)
    fleet.power_tent_switches()
    fleet.start_ticking(start)
    return sim, fleet, policy, monitoring, fault_log


def install_tent_host(sim, fleet, monitoring, host_id):
    host = fleet.install(host_id, fleet.tent, sim.now)
    monitoring.register(host, [fleet.next_tent_switch()])
    return host


def force_failure(host, sim, fault_log):
    host.transient_model = TransientFaultModel(
        base_rate_per_hour=1e9, defective_rate_per_hour=1e9
    )
    host.tick(300.0, sim.now, fault_log)
    host.transient_model = TransientFaultModel(
        base_rate_per_hour=0.0, defective_rate_per_hour=0.0
    )
    assert host.state is HostState.FAILED


class TestDownHostHandling:
    def test_first_failure_reset_in_place(self, rig):
        sim, fleet, policy, monitoring, fault_log = rig
        host = install_tent_host(sim, fleet, monitoring, 15)
        force_failure(host, sim, fault_log)
        monitoring.collect_round()
        sim.run_until(sim.now + 2 * DAY)
        assert host.running
        assert host.enclosure is fleet.tent  # resumed in the tent
        assert policy.failure_counts[15] == 1

    def test_second_failure_taken_indoors_and_replaced(self, rig):
        sim, fleet, policy, monitoring, fault_log = rig
        host = install_tent_host(sim, fleet, monitoring, 15)
        for _ in range(2):
            force_failure(host, sim, fault_log)
            monitoring.collect_round()
            sim.run_until(sim.now + 3 * DAY)
        assert host.enclosure is fleet.indoors
        assert host.running  # "left to operate in an indoors environment"
        assert policy.replacements
        _, old_id, new_id = policy.replacements[0]
        assert (old_id, new_id) == (15, 19)
        assert fleet.host(19).running
        assert fleet.host(19).enclosure is fleet.tent

    def test_memtest_run_on_indoors_intake(self, rig):
        sim, fleet, policy, monitoring, fault_log = rig
        host = install_tent_host(sim, fleet, monitoring, 15)
        for _ in range(2):
            force_failure(host, sim, fault_log)
            monitoring.collect_round()
            sim.run_until(sim.now + 3 * DAY)
        assert 15 in policy.memtest_verdicts

    def test_basement_host_not_replaced(self, rig):
        sim, fleet, policy, monitoring, fault_log = rig
        host = fleet.install(17, fleet.basement, sim.now)
        monitoring.register(host, [fleet.next_basement_switch()])
        for _ in range(2):
            force_failure(host, sim, fault_log)
            monitoring.collect_round()
            sim.run_until(sim.now + 3 * DAY)
        assert policy.replacements == []

    def test_repeated_rounds_schedule_single_inspection(self, rig):
        sim, fleet, policy, monitoring, fault_log = rig
        host = install_tent_host(sim, fleet, monitoring, 15)
        force_failure(host, sim, fault_log)
        monitoring.collect_round()
        monitoring.collect_round()
        monitoring.collect_round()
        sim.run_until(sim.now + 2 * DAY)
        assert policy.failure_counts[15] == 1


class TestWeeklyReview:
    def test_wrong_hash_triggers_smart_triage(self, rig):
        sim, fleet, policy, monitoring, fault_log = rig
        host = install_tent_host(sim, fleet, monitoring, 1)
        fault_log.record(
            FaultEvent(sim.now, FaultKind.WRONG_HASH, host_id=1, detail="1 block")
        )
        policy.weekly_review()
        assert policy.smart_verdicts == {1: True}
        assert all(d.smart.self_tests for d in host.storage.disks)
        assert policy.memory_conjecture_holds()

    def test_events_reviewed_once(self, rig):
        sim, fleet, policy, monitoring, fault_log = rig
        host = install_tent_host(sim, fleet, monitoring, 1)
        fault_log.record(
            FaultEvent(sim.now, FaultKind.WRONG_HASH, host_id=1, detail="1 block")
        )
        policy.weekly_review()
        tests_after_first = len(host.storage.disks[0].smart.self_tests)
        policy.weekly_review()
        assert len(host.storage.disks[0].smart.self_tests) == tests_after_first

    def test_non_hash_events_ignored(self, rig):
        sim, fleet, policy, monitoring, fault_log = rig
        install_tent_host(sim, fleet, monitoring, 1)
        fault_log.record(
            FaultEvent(sim.now, FaultKind.SWITCH, host_id=None, detail="tent-sw1")
        )
        policy.weekly_review()
        assert policy.smart_verdicts == {}
        assert not policy.memory_conjecture_holds()

    def test_failed_media_breaks_the_conjecture(self, rig):
        sim, fleet, policy, monitoring, fault_log = rig
        host = install_tent_host(sim, fleet, monitoring, 1)
        host.storage.disks[0].fail(sim.now)
        # Keep the host "running" for triage purposes: only storage died.
        fault_log.record(
            FaultEvent(sim.now, FaultKind.WRONG_HASH, host_id=1, detail="1 block")
        )
        policy.weekly_review()
        assert policy.smart_verdicts == {1: False}
        assert not policy.memory_conjecture_holds()


class TestSensorHandling:
    def test_anomaly_redetect_then_warm_reboot(self, rig):
        sim, fleet, policy, monitoring, fault_log = rig
        host = install_tent_host(sim, fleet, monitoring, 1)
        host.sensor.state = SensorState.ERRATIC
        monitoring.collect_round()
        # Inspection (~30 h) performs the redetect, losing the chip.
        sim.run_until(sim.now + 2 * DAY)
        assert host.sensor.state is SensorState.UNDETECTED
        # A week later the warm reboot recovers it.
        sim.run_until(sim.now + 8 * DAY)
        assert host.sensor.state is SensorState.OK

    def test_anomaly_handled_once_until_recovery(self, rig):
        sim, fleet, policy, monitoring, fault_log = rig
        host = install_tent_host(sim, fleet, monitoring, 1)
        host.sensor.state = SensorState.ERRATIC
        monitoring.collect_round()
        monitoring.collect_round()
        assert 1 in policy._sensor_handling


class TestSwitchRepairs:
    def test_dead_switch_rerouted_and_spare_bench_tested(self, rig):
        sim, fleet, policy, monitoring, fault_log = rig
        hosts = [install_tent_host(sim, fleet, monitoring, hid) for hid in (1, 2)]
        dead = monitoring.paths[1].switches[0]
        dead.fail(sim.now)
        monitoring.collect_round()
        sim.run_until(sim.now + 2 * DAY)
        assert all(p.up for p in monitoring.paths.values())
        assert policy.switch_repairs
        assert policy.spare_bench_result is not None

    def test_spare_failure_logged_as_switch_event(self, rig):
        sim, fleet, policy, monitoring, fault_log = rig
        install_tent_host(sim, fleet, monitoring, 1)
        dead = monitoring.paths[1].switches[0]
        dead.fail(sim.now)
        monitoring.collect_round()
        sim.run_until(sim.now + 2 * DAY)
        if policy.spare_bench_result is False:
            details = [e.detail for e in fault_log.of_kind(FaultKind.SWITCH)]
            assert any("identical failure" in d for d in details)

    def test_repair_prefers_surviving_tent_switch(self, rig):
        sim, fleet, policy, monitoring, fault_log = rig
        for hid in (1, 2, 3):
            install_tent_host(sim, fleet, monitoring, hid)
        dead = fleet.tent_switches[0]
        survivor = fleet.tent_switches[1]
        dead.fail(sim.now)
        monitoring.collect_round()
        sim.run_until(sim.now + 2 * DAY)
        for path in monitoring.paths.values():
            assert path.switches[0] is survivor


class TestBootDowntime:
    def test_first_failure_reset_incurs_boot_downtime(self, rig):
        sim, fleet, policy, monitoring, fault_log = rig
        host = install_tent_host(sim, fleet, monitoring, 15)
        force_failure(host, sim, fault_log)
        monitoring.collect_round()
        # Just past the 30 h inspection the host is booting, not yet up.
        sim.run_until(sim.now + 30 * HOUR + 120.0)
        assert host.state is HostState.BOOTING
        # The configured boot duration later it is back in service.
        sim.run_until(sim.now + HOUR)
        assert host.running
