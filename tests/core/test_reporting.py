"""Tests for the paper-style textual reports."""

from repro.core.reporting import (
    conditions_report,
    faults_report,
    full_report,
    prototype_report,
    pue_report,
    wrong_hash_report,
)


class TestSectionReports:
    def test_prototype_report(self, full_results):
        text = prototype_report(full_results)
        assert "Prototype weekend" in text
        assert "-10.2" in text  # the paper's own number is quoted alongside

    def test_conditions_report(self, full_results):
        text = conditions_report(full_results)
        assert "outside:" in text
        assert "tent:" in text
        assert "R@" in text  # modification marks

    def test_faults_report(self, full_results):
        text = faults_report(full_results)
        assert "5.6" in text  # paper's rate quoted
        assert "common-cause clusters" in text

    def test_wrong_hash_report(self, full_results):
        text = wrong_hash_report(full_results)
        assert "27,627" in text or "27627" in text
        assert "bzip2recover" in text
        assert "million" in text

    def test_pue_report_static(self):
        text = pue_report()
        assert "1.74" in text
        assert "75.0 kW" in text

    def test_reliability_report(self, full_results):
        from repro.core.reporting import reliability_report

        text = reliability_report(full_results)
        assert "95 % CI" in text
        assert "survival" in text

    def test_heat_budget_report(self, full_results):
        from repro.core.reporting import heat_budget_report

        text = heat_budget_report(full_results)
        assert "UA (W/K)" in text
        assert "pre-mods" in text

    def test_smart_triage_appears_in_wrong_hash_report(self, full_results):
        text = wrong_hash_report(full_results)
        if full_results.policy.smart_verdicts:
            assert "S.M.A.R.T. long test" in text

    def test_full_report_concatenates_everything(self, full_results):
        text = full_report(full_results)
        for marker in (
            "Prototype weekend",
            "Conditions",
            "Faults",
            "Reliability statistics",
            "Empirical heat budget",
            "PUE",
        ):
            assert marker in text
