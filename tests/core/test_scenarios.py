"""Tests for the canned experiment scenarios."""

import datetime as dt

import pytest

from repro import Experiment
from repro.core.scenarios import (
    conditioned_tent,
    extended_year,
    harsher_winter,
    no_modifications,
    paper_campaign,
)


class TestConstructors:
    def test_paper_campaign_is_the_default(self):
        assert paper_campaign(seed=3) == paper_campaign(seed=3)
        assert paper_campaign().modification_plans  # R/I/B/F present

    def test_no_modifications_strips_the_plan(self):
        assert no_modifications().modification_plans == ()

    def test_conditioned_tent_applies_everything_on_day_one(self):
        config = conditioned_tent()
        assert len(config.modification_plans) == 5
        for plan in config.modification_plans:
            assert (plan.date - config.test_start) < dt.timedelta(hours=2)

    def test_extended_year_reaches_november(self):
        config = extended_year()
        assert config.end_date.month == 11
        assert "full-year" in config.climate.name

    def test_harsher_winter_deepens_the_snaps(self):
        base = paper_campaign()
        harsh = harsher_winter(extra_depth_c=6.0)
        for mild, severe in zip(base.climate.cold_snaps, harsh.climate.cold_snaps):
            assert severe.depth_c == pytest.approx(mild.depth_c + 6.0)

    def test_harsher_winter_validates(self):
        with pytest.raises(ValueError):
            harsher_winter(extra_depth_c=-1.0)


class TestScenarioBehaviour:
    UNTIL = dt.datetime(2010, 3, 20)

    def test_sealed_tent_runs_hotter(self):
        modded = Experiment(paper_campaign(seed=5)).run(until=self.UNTIL)
        sealed = Experiment(no_modifications(seed=5)).run(until=self.UNTIL)
        clock = modded.clock
        window = (clock.at(2010, 3, 6), clock.at(2010, 3, 20))
        modded_mean = modded.inside_temperature_raw().window(*window).mean()
        sealed_mean = sealed.inside_temperature_raw().window(*window).mean()
        assert sealed_mean > modded_mean

    def test_conditioned_tent_runs_cooler_than_paper(self):
        modded = Experiment(paper_campaign(seed=5)).run(until=self.UNTIL)
        shed = Experiment(conditioned_tent(seed=5)).run(until=self.UNTIL)
        clock = modded.clock
        window = (clock.at(2010, 3, 6), clock.at(2010, 3, 20))
        assert (
            shed.inside_temperature_raw().window(*window).mean()
            < modded.inside_temperature_raw().window(*window).mean()
        )

    def test_harsher_winter_is_colder(self):
        mild = Experiment(paper_campaign(seed=5)).run(until=dt.datetime(2010, 2, 25))
        harsh = Experiment(harsher_winter(seed=5)).run(until=dt.datetime(2010, 2, 25))
        assert harsh.outside_temperature().min() < mild.outside_temperature().min() - 3.0
