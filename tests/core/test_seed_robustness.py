"""Invariants that must hold at *every* seed, not just the default.

The headline tests pin seed 7, whose draw happens to match the paper's
narrative exactly.  These tests run several short campaigns under other
seeds and check the structural invariants -- the claims that should be
properties of the model, not of one lucky draw.
"""

import datetime as dt

import pytest

from repro import Experiment, ExperimentConfig

_SEEDS = (1, 2, 3, 11)
_UNTIL = dt.datetime(2010, 3, 12)


@pytest.fixture(scope="module", params=_SEEDS)
def seeded_results(request):
    return Experiment(ExperimentConfig(seed=request.param)).run(until=_UNTIL)


class TestInvariants:
    def test_prototype_always_cold(self, seeded_results):
        proto = seeded_results.prototype
        assert proto.outside_mean_c < -4.0
        assert proto.cpu_min_c > proto.outside_min_c

    def test_wrong_hashes_never_on_ecc_hosts(self, seeded_results):
        for host_id in seeded_results.ledger.hosts_with_wrong_hashes():
            assert not seeded_results.fleet.host(host_id).spec.ecc_memory

    def test_wrong_hash_rate_in_paper_band(self, seeded_results):
        ledger = seeded_results.ledger
        if ledger.total_runs >= 10_000:
            assert ledger.wrong_hash_ratio < 1e-3

    def test_tent_warmer_than_outside_on_average(self, seeded_results):
        inside = seeded_results.inside_temperature_raw()
        if inside.empty:
            pytest.skip("run truncated before Lascar arrival")
        outside = seeded_results.outside_temperature()
        excess = inside.aligned_difference(outside)
        assert excess.mean() > 0.0

    def test_humidities_always_in_bounds(self, seeded_results):
        for series in (
            seeded_results.outside_humidity(),
            seeded_results.inside_humidity_raw(),
        ):
            if series.empty:
                continue
            assert series.min() >= 0.0
            assert series.max() <= 100.0

    def test_lascar_never_records_before_arrival(self, seeded_results):
        inside = seeded_results.inside_temperature_raw()
        if not inside.empty:
            assert inside.times[0] >= seeded_results.lascar.arrival_time

    def test_fault_log_times_within_run(self, seeded_results):
        for event in seeded_results.fault_log.events:
            assert 0.0 <= event.time <= seeded_results.end_time

    def test_failed_hosts_actually_logged(self, seeded_results):
        from repro.hardware.host import HostState

        logged = {
            e.host_id for e in seeded_results.fault_log.events if e.host_id is not None
        }
        for host in seeded_results.fleet.hosts.values():
            if host.state is HostState.FAILED:
                assert host.host_id in logged

    def test_transfer_ledger_consistent(self, seeded_results):
        transfers = seeded_results.transfers
        assert transfers.total_sessions == len(transfers.records)
        assert transfers.total_bytes >= transfers.total_sessions * 4096

    def test_power_meter_reads_tent_hosts_only(self, seeded_results):
        meter_hosts = {h.host_id for h in seeded_results.powermeter.hosts}
        tent_plan = set(seeded_results.tent_host_ids()) | {19}
        assert meter_hosts <= tent_plan
