"""Tests for running the campaign on the two-node tent model."""

import datetime as dt

import pytest

from repro import Experiment, ExperimentConfig
from repro.thermal.tent import Tent
from repro.thermal.twonode import TwoNodeTent


class TestTentModelOption:
    def test_invalid_model_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(tent_model="three-node")

    def test_default_is_single_node(self):
        exp = Experiment(ExperimentConfig(seed=2))
        assert isinstance(exp.fleet.tent, Tent)

    def test_two_node_fleet_builds(self):
        exp = Experiment(ExperimentConfig(seed=2, tent_model="two-node"))
        assert isinstance(exp.fleet.tent, TwoNodeTent)

    def test_campaign_runs_on_two_node_tent(self):
        config = ExperimentConfig(seed=2, tent_model="two-node")
        results = Experiment(config).run(until=dt.datetime(2010, 3, 10))
        # Modifications reached the two-node tent.
        assert "R" in results.tent.modification_times()
        # The tent heats, the logger records, the workload runs.
        inside = results.inside_temperature_raw()
        assert not inside.empty
        assert results.ledger.total_runs > 1000

    def test_models_agree_on_campaign_scale(self):
        until = dt.datetime(2010, 3, 10)
        single = Experiment(ExperimentConfig(seed=2)).run(until=until)
        double = Experiment(
            ExperimentConfig(seed=2, tent_model="two-node")
        ).run(until=until)
        clock = single.clock
        window = (clock.at(2010, 3, 2), clock.at(2010, 3, 10))
        mean_single = single.inside_temperature_raw().window(*window).mean()
        mean_double = double.inside_temperature_raw().window(*window).mean()
        assert mean_double == pytest.approx(mean_single, abs=3.0)
