"""Tests for CPU, memory bank, and PSU components."""

import numpy as np
import pytest

from repro.hardware.components import Cpu, MemoryBank, PowerSupply
from repro.hardware.vendors import VENDOR_A, VENDOR_C


def rng():
    return np.random.default_rng(99)


class TestCpu:
    def test_idle_and_busy_power(self):
        cpu = Cpu(VENDOR_A)
        assert cpu.power_w == VENDOR_A.cpu_idle_power_w
        cpu.busy = True
        assert cpu.power_w == VENDOR_A.cpu_active_power_w

    def test_temperature_rises_when_busy(self):
        cpu = Cpu(VENDOR_A)
        idle_temp = cpu.temperature_c(0.0, 70.0)
        cpu.busy = True
        assert cpu.temperature_c(0.0, 70.0) > idle_temp


class TestMemoryBankNonEcc:
    def test_page_ops_accumulate(self):
        bank = MemoryBank(VENDOR_A, rng(), fault_ratio=0.0)
        bank.perform_page_ops(1000, time=0.0)
        bank.perform_page_ops(500, time=1.0)
        assert bank.page_ops_total == 1500

    def test_zero_ratio_never_faults(self):
        bank = MemoryBank(VENDOR_A, rng(), fault_ratio=0.0)
        assert bank.perform_page_ops(10_000_000, time=0.0) == 0
        assert bank.faults == []

    def test_faults_escape_without_ecc(self):
        bank = MemoryBank(VENDOR_A, rng(), fault_ratio=0.01)
        uncorrected = bank.perform_page_ops(10_000, time=0.0)
        assert uncorrected > 0
        assert bank.uncorrected_fault_count == len(bank.faults)
        assert bank.corrected_fault_count == 0

    def test_empirical_ratio_matches_configured(self):
        bank = MemoryBank(VENDOR_A, rng(), fault_ratio=1e-3)
        bank.perform_page_ops(1_000_000, time=0.0)
        assert bank.observed_fault_ratio() == pytest.approx(1e-3, rel=0.3)

    def test_paper_default_ratio(self):
        bank = MemoryBank(VENDOR_A, rng())
        assert bank.fault_ratio == pytest.approx(1.0 / 570e6)


class TestMemoryBankEcc:
    def test_ecc_corrects_everything(self):
        bank = MemoryBank(VENDOR_C, rng(), fault_ratio=0.01)
        uncorrected = bank.perform_page_ops(10_000, time=0.0)
        assert uncorrected == 0
        assert bank.corrected_fault_count > 0
        assert bank.uncorrected_fault_count == 0

    def test_ecc_still_logs_for_ablation(self):
        bank = MemoryBank(VENDOR_C, rng(), fault_ratio=0.01)
        bank.perform_page_ops(10_000, time=5.0)
        assert all(f.corrected for f in bank.faults)
        assert all(f.time == 5.0 for f in bank.faults)


class TestMemoryValidation:
    def test_negative_count_rejected(self):
        bank = MemoryBank(VENDOR_A, rng())
        with pytest.raises(ValueError):
            bank.perform_page_ops(-1, time=0.0)

    def test_ratio_bounds(self):
        with pytest.raises(ValueError):
            MemoryBank(VENDOR_A, rng(), fault_ratio=1.5)

    def test_ratio_before_ops_is_none(self):
        bank = MemoryBank(VENDOR_A, rng())
        assert bank.observed_fault_ratio() is None


class TestPowerSupply:
    def test_wall_power_includes_conversion_loss(self):
        psu = PowerSupply(rated_w=300.0, efficiency=0.8)
        assert psu.wall_power_w(80.0) == pytest.approx(100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerSupply(efficiency=0.0)
        with pytest.raises(ValueError):
            PowerSupply(rated_w=-1.0)
        with pytest.raises(ValueError):
            PowerSupply().wall_power_w(-5.0)
