"""Tests for the hazard-rate fault models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.faults import (
    FaultEvent,
    FaultKind,
    FaultLog,
    MemoryFaultModel,
    TransientFaultModel,
    hazard_probability,
)


class TestHazardProbability:
    def test_zero_rate_never_fires(self):
        assert hazard_probability(0.0, 3600.0) == 0.0

    def test_zero_time_never_fires(self):
        assert hazard_probability(10.0, 0.0) == 0.0

    def test_one_per_hour_over_an_hour(self):
        assert hazard_probability(1.0, 3600.0) == pytest.approx(1.0 - np.exp(-1.0))

    def test_monotone_in_both_arguments(self):
        assert hazard_probability(2.0, 100.0) > hazard_probability(1.0, 100.0)
        assert hazard_probability(1.0, 200.0) > hazard_probability(1.0, 100.0)

    @given(
        rate=st.floats(min_value=0.0, max_value=100.0),
        dt=st.floats(min_value=0.0, max_value=1e6),
    )
    @settings(max_examples=200, deadline=None)
    def test_always_a_probability(self, rate, dt):
        p = hazard_probability(rate, dt)
        assert 0.0 <= p <= 1.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            hazard_probability(-1.0, 10.0)
        with pytest.raises(ValueError):
            hazard_probability(1.0, -10.0)


class TestTransientFaultModel:
    def test_defective_series_has_higher_rate(self):
        model = TransientFaultModel()
        healthy = model.rate_per_hour(False, 1.0, 30.0, 21.0)
        defective = model.rate_per_hour(True, 1.0, 30.0, 21.0)
        assert defective > 10.0 * healthy

    def test_heat_doubles_rate_every_ten_degrees(self):
        model = TransientFaultModel(temp_reference_c=40.0, temp_doubling_c=10.0)
        base = model.rate_per_hour(True, 1.0, 40.0, 21.0)
        hot = model.rate_per_hour(True, 1.0, 50.0, 21.0)
        assert hot == pytest.approx(2.0 * base)

    def test_no_cold_penalty_by_default(self):
        # The paper's central finding: sub-zero intake is not a killer.
        model = TransientFaultModel()
        cold = model.rate_per_hour(False, 1.0, 10.0, -20.0)
        mild = model.rate_per_hour(False, 1.0, 10.0, 21.0)
        assert cold == pytest.approx(mild)

    def test_cold_multiplier_is_ablatable(self):
        model = TransientFaultModel(cold_multiplier=3.0)
        cold = model.rate_per_hour(False, 1.0, 10.0, -20.0)
        mild = model.rate_per_hour(False, 1.0, 10.0, 21.0)
        assert cold == pytest.approx(3.0 * mild)

    def test_frailty_scales_rate_linearly(self):
        model = TransientFaultModel()
        assert model.rate_per_hour(True, 4.0, 30.0, 21.0) == pytest.approx(
            4.0 * model.rate_per_hour(True, 1.0, 30.0, 21.0)
        )

    def test_frailty_median_near_one(self):
        model = TransientFaultModel()
        rng = np.random.default_rng(3)
        draws = [model.draw_frailty(rng) for _ in range(4000)]
        assert np.median(draws) == pytest.approx(1.0, abs=0.15)

    def test_frailty_produces_lemons(self):
        # The heavy tail is what concentrates failures on host #15.
        model = TransientFaultModel()
        rng = np.random.default_rng(3)
        draws = np.array([model.draw_frailty(rng) for _ in range(4000)])
        assert draws.max() > 10.0

    def test_sample_failure_extremes(self):
        model = TransientFaultModel(defective_rate_per_hour=1e9)
        rng = np.random.default_rng(0)
        assert model.sample_failure(rng, 3600.0, True, 1.0, 30.0, 21.0)
        never = TransientFaultModel(base_rate_per_hour=0.0)
        assert not never.sample_failure(rng, 3600.0, False, 1.0, 30.0, 21.0)


class TestMemoryFaultModel:
    def test_paper_default(self):
        assert MemoryFaultModel().page_fault_ratio == pytest.approx(1.0 / 570e6)

    def test_bounds_enforced(self):
        with pytest.raises(ValueError):
            MemoryFaultModel(page_fault_ratio=1.0)


class TestFaultLog:
    def test_record_and_filter_by_kind(self):
        log = FaultLog()
        log.record(FaultEvent(1.0, FaultKind.TRANSIENT_SYSTEM, host_id=15))
        log.record(FaultEvent(2.0, FaultKind.WRONG_HASH, host_id=3))
        log.record(FaultEvent(3.0, FaultKind.TRANSIENT_SYSTEM, host_id=15))
        assert len(log) == 3
        assert len(log.of_kind(FaultKind.TRANSIENT_SYSTEM)) == 2

    def test_filter_by_host(self):
        log = FaultLog()
        log.record(FaultEvent(1.0, FaultKind.TRANSIENT_SYSTEM, host_id=15))
        log.record(FaultEvent(2.0, FaultKind.SWITCH, host_id=None, detail="tent-sw1"))
        assert len(log.for_host(15)) == 1
        assert len(log.for_host(99)) == 0

    def test_iteration_preserves_order(self):
        log = FaultLog()
        log.record(FaultEvent(1.0, FaultKind.WRONG_HASH, host_id=1))
        log.record(FaultEvent(2.0, FaultKind.WRONG_HASH, host_id=2))
        assert [e.host_id for e in log] == [1, 2]

    def test_event_str_readable(self):
        event = FaultEvent(3600.0, FaultKind.TRANSIENT_SYSTEM, host_id=15)
        assert "host #15" in str(event)
        infra = FaultEvent(0.0, FaultKind.SWITCH, host_id=None, detail="tent-sw1")
        assert "infrastructure" in str(infra)
