"""Tests for the composite Host model."""

import pytest

from repro.climate.generator import WeatherGenerator
from repro.climate.profiles import HELSINKI_2010
from repro.hardware.faults import FaultKind, FaultLog, TransientFaultModel
from repro.hardware.host import Host, HostState
from repro.hardware.vendors import VENDOR_A, VENDOR_B, VENDOR_C
from repro.sim.clock import SimClock
from repro.sim.rng import RngStreams
from repro.thermal.enclosure import BasementMachineRoom


@pytest.fixture
def basement():
    weather = WeatherGenerator(HELSINKI_2010, RngStreams(1))
    room = BasementMachineRoom("basement", weather)
    room.advance(SimClock().at(2010, 2, 19))
    return room


def make_host(host_id=1, spec=VENDOR_A, seed=5, **kwargs):
    return Host(host_id, spec, RngStreams(seed), **kwargs)


class TestLifecycle:
    def test_starts_staged(self):
        host = make_host()
        assert host.state is HostState.STAGED
        assert not host.running

    def test_install_powers_on(self, basement):
        host = make_host()
        host.install(basement, time=100.0)
        assert host.running
        assert host.installed_at == 100.0
        assert host.enclosure is basement

    def test_reset_requires_failed_state(self, basement):
        host = make_host()
        host.install(basement, 0.0)
        with pytest.raises(RuntimeError):
            host.reset(1.0)

    def test_retired_host_cannot_be_reinstalled(self, basement):
        host = make_host()
        host.install(basement, 0.0)
        host.retire(10.0)
        with pytest.raises(RuntimeError):
            host.install(basement, 20.0)

    def test_move_to_requires_prior_install(self, basement):
        host = make_host()
        with pytest.raises(RuntimeError):
            host.move_to(basement, 0.0)

    def test_move_to_keeps_original_install_time(self, basement):
        host = make_host()
        host.install(basement, 100.0)
        other = basement  # same type; identity is what matters
        host.move_to(other, 200.0)
        assert host.installed_at == 100.0

    def test_event_log_narrates(self, basement):
        host = make_host()
        host.install(basement, 0.0)
        host.warm_reboot(5.0)
        notes = [note for _t, note in host.event_log]
        assert any("installed" in n for n in notes)
        assert any("warm reboot" in n for n in notes)

    def test_hostname_format(self):
        assert make_host(host_id=3).hostname == "host03"
        assert make_host(host_id=15).hostname == "host15"


class TestPower:
    def test_no_draw_before_install(self):
        assert make_host().power_w == 0.0

    def test_idle_and_busy_draw(self, basement):
        host = make_host()
        host.install(basement, 0.0)
        assert host.power_w == VENDOR_A.idle_power_w
        host.cpu.busy = True
        assert host.power_w == VENDOR_A.active_power_w

    def test_average_power_between_extremes(self, basement):
        host = make_host()
        host.install(basement, 0.0)
        assert VENDOR_A.idle_power_w < host.average_power_w < VENDOR_A.active_power_w


class TestThermal:
    def test_cpu_warmer_than_case_warmer_than_intake(self, basement):
        host = make_host()
        host.install(basement, 0.0)
        assert host.cpu_temp_c() > host.case_temp_c() > host.intake_temp_c()

    def test_vendor_b_runs_hotter_than_a(self, basement):
        a = make_host(host_id=1, spec=VENDOR_A)
        b = make_host(host_id=14, spec=VENDOR_B)
        a.install(basement, 0.0)
        b.install(basement, 0.0)
        # Same intake: the SFF's bad airflow shows in case temperature.
        assert b.case_temp_c() > a.case_temp_c()

    def test_thermal_queries_require_enclosure(self):
        with pytest.raises(RuntimeError):
            make_host().intake_temp_c()

    def test_sensor_poll_reads_cpu_temperature(self, basement):
        host = make_host()
        host.install(basement, 0.0)
        reading = host.sensor_poll(time=10.0)
        assert reading.cpu_temp_c == pytest.approx(host.cpu_temp_c(), abs=2.0)


class TestTick:
    def test_tick_accrues_uptime(self, basement):
        host = make_host(transient_model=TransientFaultModel(base_rate_per_hour=0.0))
        host.install(basement, 0.0)
        host.tick(300.0, 300.0)
        host.tick(300.0, 600.0)
        assert host.uptime_s == 600.0

    def test_tick_on_staged_host_is_noop(self):
        host = make_host()
        host.tick(300.0, 0.0)
        assert host.uptime_s == 0.0

    def test_guaranteed_hazard_fails_host(self, basement):
        model = TransientFaultModel(base_rate_per_hour=1e9)
        log = FaultLog()
        host = make_host(transient_model=model)
        host.install(basement, 0.0)
        host.tick(300.0, 300.0, log)
        assert host.state is HostState.FAILED
        assert not host.cpu.busy
        assert log.of_kind(FaultKind.TRANSIENT_SYSTEM)[0].host_id == host.host_id

    def test_failed_host_recovers_after_reset(self, basement):
        model = TransientFaultModel(base_rate_per_hour=1e9)
        host = make_host(transient_model=model)
        host.install(basement, 0.0)
        host.tick(300.0, 300.0)
        host.transient_model.base_rate_per_hour = 0.0
        host.reset(600.0)
        assert host.running
        assert host.reset_count == 1

    def test_storage_loss_fails_host_with_disk_kind(self, basement):
        log = FaultLog()
        host = make_host(
            host_id=14, spec=VENDOR_B,
            transient_model=TransientFaultModel(base_rate_per_hour=0.0),
        )
        host.install(basement, 0.0)
        host.storage.disks[0].fail(100.0)
        host.tick(300.0, 300.0, log)
        assert host.state is HostState.FAILED
        assert log.of_kind(FaultKind.DISK)


class TestMemtest:
    def test_frail_defective_host_fails_memtest(self, basement):
        model = TransientFaultModel(defective_rate_per_hour=0.5, frailty_sigma=0.0)
        host = make_host(host_id=15, spec=VENDOR_B, transient_model=model)
        host.install(basement, 0.0)
        # rate 0.5/h x stress 6 x 4h -> P(fail) ~ 1 - e^-12.
        assert not host.run_memtest(4.0, time=10.0)

    def test_sound_host_passes_memtest(self, basement):
        model = TransientFaultModel(base_rate_per_hour=0.0, frailty_sigma=0.0)
        host = make_host(transient_model=model)
        host.install(basement, 0.0)
        assert host.run_memtest(4.0, time=10.0)

    def test_negative_duration_rejected(self, basement):
        host = make_host()
        with pytest.raises(ValueError):
            host.run_memtest(-1.0, time=0.0)


class TestDeterminism:
    def test_same_seed_same_frailty(self):
        assert make_host(seed=9).frailty == make_host(seed=9).frailty

    def test_different_hosts_different_frailty(self):
        streams = RngStreams(9)
        a = Host(1, VENDOR_A, streams)
        b = Host(2, VENDOR_A, streams)
        assert a.frailty != b.frailty


class TestBootSequence:
    def test_begin_boot_darkens_the_host(self, basement):
        model = TransientFaultModel(base_rate_per_hour=1e9, defective_rate_per_hour=1e9)
        host = make_host(transient_model=model)
        host.install(basement, 0.0)
        host.tick(300.0, 300.0)
        assert host.state is HostState.FAILED
        host.begin_boot(400.0)
        assert host.state is HostState.BOOTING
        assert not host.running
        assert host.power_w == 0.0

    def test_finish_boot_restores_service(self, basement):
        host = make_host(transient_model=TransientFaultModel(base_rate_per_hour=0.0))
        host.install(basement, 0.0)
        host.begin_boot(100.0)  # deliberate restart from RUNNING
        host.finish_boot(340.0)
        assert host.running

    def test_reset_counts_only_failure_recoveries(self, basement):
        host = make_host(transient_model=TransientFaultModel(base_rate_per_hour=0.0))
        host.install(basement, 0.0)
        host.begin_boot(100.0)  # restart, not a failure reset
        host.finish_boot(340.0)
        assert host.reset_count == 0

    def test_booting_host_does_not_tick(self, basement):
        host = make_host(transient_model=TransientFaultModel(base_rate_per_hour=0.0))
        host.install(basement, 0.0)
        host.begin_boot(100.0)
        host.tick(300.0, 400.0)
        assert host.uptime_s == 0.0

    def test_boot_from_staged_rejected(self):
        host = make_host()
        with pytest.raises(RuntimeError):
            host.begin_boot(0.0)

    def test_finish_without_begin_rejected(self, basement):
        host = make_host()
        host.install(basement, 0.0)
        with pytest.raises(RuntimeError):
            host.finish_boot(0.0)
