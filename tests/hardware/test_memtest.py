"""Tests for the Memtest86+ session model."""

import pytest

from repro.hardware.faults import TransientFaultModel
from repro.hardware.host import Host
from repro.hardware.memtest import (
    PATTERNS,
    MemtestSession,
    pass_duration_s,
)
from repro.hardware.vendors import VENDOR_A, VENDOR_B
from repro.sim.rng import RngStreams


def make_host(spec=VENDOR_A, seed=5, **model_kwargs):
    model = TransientFaultModel(**model_kwargs)
    return Host(1, spec, RngStreams(seed), transient_model=model)


class TestPatterns:
    def test_classic_sequence_present(self):
        names = [name for name, _w in PATTERNS]
        assert any("walking ones" in n for n in names)
        assert any("moving inversions" in n for n in names)
        assert sum(w for _n, w in PATTERNS) == pytest.approx(1.0)

    def test_pass_duration_scales_with_memory(self):
        assert pass_duration_s(2048) == pytest.approx(2 * pass_duration_s(1024))

    def test_pass_duration_validates(self):
        with pytest.raises(ValueError):
            pass_duration_s(0)


class TestSession:
    def test_sound_host_completes_all_passes(self):
        host = make_host(base_rate_per_hour=0.0, frailty_sigma=0.0)
        report = MemtestSession(host).run(passes=2)
        assert report.survived
        assert report.crash_point is None
        assert report.results[-1].pass_number == 2
        assert len(report.results) == 2 * len(PATTERNS)
        assert "completed without error" in report.describe()

    def test_lemon_dies_mid_pattern(self):
        host = make_host(
            spec=VENDOR_B, defective_rate_per_hour=5.0, frailty_sigma=0.0
        )
        report = MemtestSession(host).run(passes=4)
        assert not report.survived
        crash = report.crash_point
        assert crash is not None
        assert crash.crashed
        # The session stops at the crash.
        assert report.results[-1] is crash
        assert "system failure" in report.describe()

    def test_elapsed_time_reasonable(self):
        # ~2 GiB at era speeds: one pass in the tens-of-minutes band.
        host = make_host(base_rate_per_hour=0.0, frailty_sigma=0.0)
        report = MemtestSession(host).run(passes=1)
        assert 10 * 60 < report.elapsed_s < 4 * 3600

    def test_deterministic_per_host_stream(self):
        a = MemtestSession(make_host(seed=9)).run(passes=1)
        b = MemtestSession(make_host(seed=9)).run(passes=1)
        assert a.survived == b.survived
        assert len(a.results) == len(b.results)

    def test_validation(self):
        host = make_host()
        with pytest.raises(ValueError):
            MemtestSession(host).run(passes=0)
        with pytest.raises(ValueError):
            MemtestSession(host, stress_factor=0.0)

    def test_agrees_with_campaign_hazard_statistically(self):
        # The detailed session and the host's one-shot hazard should give
        # similar failure probabilities for the same machine profile.
        detailed = 0
        oneshot = 0
        n = 120
        for seed in range(n):
            host = MemtestSession(
                make_host(spec=VENDOR_B, seed=seed,
                          defective_rate_per_hour=0.05, frailty_sigma=0.0)
            )
            report = host.run(passes=8)
            detailed += not report.survived
        for seed in range(n):
            host = make_host(
                spec=VENDOR_B, seed=seed + 10_000,
                defective_rate_per_hour=0.05, frailty_sigma=0.0,
            )
            oneshot += not host.run_memtest(
                duration_hours=8 * pass_duration_s(VENDOR_B.memory_mib) / 3600.0,
                time=0.0,
            )
        assert abs(detailed - oneshot) < 0.25 * n
