"""Tests for the lm-sensors chip cold-failure state machine."""

import numpy as np
import pytest

from repro.hardware.sensors import ERRONEOUS_READING_C, SensorChip, SensorState


def make_chip(seed=1, **kwargs):
    return SensorChip(np.random.default_rng(seed), **kwargs)


class TestHealthyOperation:
    def test_reads_near_truth(self):
        chip = make_chip(noise_std_c=0.1)
        reading = chip.read(35.0, time=0.0)
        assert reading.cpu_temp_c == pytest.approx(35.0, abs=0.5)
        assert reading.plausible

    def test_warm_operation_never_latches(self):
        chip = make_chip(latch_rate_per_hour=1000.0)
        for hour in range(1000):
            chip.exposure_step(die_temp_c=30.0, dt_s=3600.0, time=hour * 3600.0)
        assert chip.state is SensorState.OK
        assert chip.cold_exposure_s == 0.0


class TestColdLatch:
    def test_deep_cold_latches_quickly_at_high_rate(self):
        chip = make_chip(latch_rate_per_hour=100.0)
        chip.exposure_step(die_temp_c=-9.0, dt_s=3600.0, time=0.0)
        assert chip.state is SensorState.ERRATIC
        assert chip.ever_latched
        assert chip.latch_time == 0.0

    def test_latched_chip_reads_minus_111(self):
        chip = make_chip(latch_rate_per_hour=100.0)
        chip.exposure_step(-9.0, 3600.0, 0.0)
        reading = chip.read(-5.0, time=10.0)
        assert reading.cpu_temp_c == ERRONEOUS_READING_C
        assert not reading.plausible

    def test_cold_exposure_accrues_below_threshold_only(self):
        chip = make_chip(latch_rate_per_hour=0.0)
        chip.exposure_step(-9.0, 100.0, 0.0)
        chip.exposure_step(10.0, 100.0, 100.0)
        assert chip.cold_exposure_s == 100.0

    def test_threshold_matches_paper_narrative(self):
        # The chip reported "below -4 degC" before failing: the default
        # latch threshold must sit below -3 but far above -111.
        chip = make_chip()
        assert -5.0 < chip.latch_threshold_c <= -2.0

    def test_statistical_latch_probability(self):
        # At 0.035/h, ~12 h of deep cold latches ~1 - exp(-0.42) ~ 34 %.
        latched = 0
        for seed in range(300):
            chip = make_chip(seed=seed)
            for step in range(12):
                chip.exposure_step(-9.0, 3600.0, step * 3600.0)
            latched += chip.ever_latched
        assert 0.20 < latched / 300 < 0.50


class TestRedetection:
    def test_redetect_erratic_chip_loses_it(self):
        # "Instead, the opposite resulted, and the sensor chip ceased to
        # be detected at all."
        chip = make_chip(latch_rate_per_hour=100.0)
        chip.exposure_step(-9.0, 3600.0, 0.0)
        assert chip.redetect() is SensorState.UNDETECTED
        assert chip.read(30.0, time=1.0).cpu_temp_c is None

    def test_redetect_healthy_chip_is_noop(self):
        chip = make_chip()
        assert chip.redetect() is SensorState.OK

    def test_undetected_chip_not_plausible(self):
        chip = make_chip(latch_rate_per_hour=100.0)
        chip.exposure_step(-9.0, 3600.0, 0.0)
        chip.redetect()
        assert not chip.read(30.0, time=1.0).plausible


class TestWarmReboot:
    def test_warm_reboot_recovers_from_any_state(self):
        chip = make_chip(latch_rate_per_hour=100.0)
        chip.exposure_step(-9.0, 3600.0, 0.0)
        chip.redetect()
        assert chip.warm_reboot() is SensorState.OK
        assert chip.read(30.0, time=2.0).plausible

    def test_history_remembers_latch(self):
        chip = make_chip(latch_rate_per_hour=100.0)
        chip.exposure_step(-9.0, 3600.0, 0.0)
        chip.read(-5.0, 1.0)
        chip.read(-5.0, 2.0)
        chip.warm_reboot()
        assert chip.ever_latched
        assert chip.erroneous_reading_count() == 2


class TestValidation:
    def test_negative_dt_rejected(self):
        with pytest.raises(ValueError):
            make_chip().exposure_step(0.0, -1.0, 0.0)

    def test_repr_shows_state(self):
        chip = make_chip()
        assert "ok" in repr(chip)
