"""Tests for S.M.A.R.T. tables and self-tests."""

import pytest

from repro.hardware.smart import (
    ATTR_POWER_CYCLES,
    ATTR_POWER_ON_HOURS,
    ATTR_REALLOCATED_SECTORS,
    ATTR_TEMPERATURE,
    SmartAttribute,
    SmartTable,
)


class TestAttributes:
    def test_fresh_table_has_standard_attributes(self):
        table = SmartTable()
        names = [a.name for a in table.attributes()]
        assert "Power_On_Hours" in names
        assert "Reallocated_Sector_Ct" in names
        assert "Temperature_Celsius" in names

    def test_attributes_listed_in_id_order(self):
        ids = [a.attr_id for a in SmartTable().attributes()]
        assert ids == sorted(ids)

    def test_unknown_attribute_raises(self):
        with pytest.raises(KeyError):
            SmartTable().attribute(250)

    def test_attribute_value_bounds(self):
        with pytest.raises(ValueError):
            SmartAttribute(1, "bad", value=300)


class TestCounters:
    def test_uptime_accrues_in_hours(self):
        table = SmartTable()
        table.accrue_uptime(7200.0)
        assert table.attribute(ATTR_POWER_ON_HOURS).raw == pytest.approx(2.0)

    def test_negative_uptime_rejected(self):
        with pytest.raises(ValueError):
            SmartTable().accrue_uptime(-1.0)

    def test_power_cycles_count(self):
        table = SmartTable()
        table.record_power_cycle()
        table.record_power_cycle()
        assert table.attribute(ATTR_POWER_CYCLES).raw == 2

    def test_temperature_updates(self):
        table = SmartTable()
        table.set_temperature(34.5)
        assert table.attribute(ATTR_TEMPERATURE).raw == 34.5


class TestReallocations:
    def test_reallocations_degrade_health(self):
        table = SmartTable()
        table.add_reallocated_sectors(100)
        attr = table.attribute(ATTR_REALLOCATED_SECTORS)
        assert attr.raw == 100
        assert attr.value < 100
        assert attr.worst == attr.value

    def test_health_never_reaches_zero(self):
        table = SmartTable()
        table.add_reallocated_sectors(1_000_000)
        assert table.attribute(ATTR_REALLOCATED_SECTORS).value >= 1

    def test_massive_reallocation_trips_threshold(self):
        table = SmartTable()
        table.add_reallocated_sectors(2000)
        assert table.attribute(ATTR_REALLOCATED_SECTORS).failing

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            SmartTable().add_reallocated_sectors(-1)


class TestSelfTests:
    def test_healthy_media_passes(self):
        # Section 4.2.2: all wrong-hash drives passed their long tests.
        table = SmartTable()
        result = table.run_long_self_test(time=100.0, media_healthy=True)
        assert result.passed
        assert table.self_tests == [result]

    def test_bad_media_fails(self):
        table = SmartTable()
        assert not table.run_long_self_test(time=0.0, media_healthy=False).passed

    def test_worn_out_drive_fails_even_with_readable_media(self):
        table = SmartTable()
        table.add_reallocated_sectors(2000)
        assert not table.run_long_self_test(time=0.0, media_healthy=True).passed
