"""Tests for disks and RAID layouts."""

import numpy as np
import pytest

from repro.hardware.storage import (
    Disk,
    HardwareMirror,
    MdSoftwareMirror,
    SingleDisk,
    StorageSubsystem,
    StripeWithParity,
)
from repro.hardware.vendors import VENDOR_A, VENDOR_B, VENDOR_C


def rng():
    return np.random.default_rng(7)


def disks(n):
    return [Disk(f"sd{chr(ord('a') + i)}", rng()) for i in range(n)]


class TestDisk:
    def test_fresh_disk_is_healthy(self):
        disk = Disk("sda", rng())
        assert disk.healthy
        assert disk.failed_at is None

    def test_fail_records_time(self):
        disk = Disk("sda", rng())
        disk.fail(42.0)
        assert not disk.healthy
        assert disk.failed_at == 42.0

    def test_tick_accrues_smart_uptime(self):
        disk = Disk("sda", rng())
        disk.tick(3600.0, case_temp_c=30.0, time=0.0)
        assert disk.smart.attribute(9).raw == pytest.approx(1.0)

    def test_failed_disk_stops_accruing(self):
        disk = Disk("sda", rng())
        disk.fail(0.0)
        disk.tick(3600.0, 30.0, 1.0)
        assert disk.smart.attribute(9).raw == 0.0

    def test_drive_runs_warmer_than_case(self):
        disk = Disk("sda", rng())
        disk.tick(60.0, case_temp_c=30.0, time=0.0)
        assert disk.smart.attribute(194).raw > 30.0

    def test_self_test_tracks_media(self):
        disk = Disk("sda", rng())
        assert disk.run_long_self_test(0.0).passed
        disk.fail(1.0)
        assert not disk.run_long_self_test(2.0).passed

    def test_survives_a_campaign_statistically(self):
        # 500k-hour MTBF: ~90 days of uptime should essentially never kill
        # a batch of 50 drives under a fixed seed.
        failures = 0
        for i in range(50):
            disk = Disk(f"d{i}", np.random.default_rng(i))
            for day in range(90):
                disk.tick(86_400.0, 25.0, float(day))
            failures += not disk.healthy
        assert failures <= 2


class TestMirrors:
    def test_mirror_survives_one_loss(self):
        members = disks(2)
        array = MdSoftwareMirror("md0", members)
        members[0].fail(0.0)
        assert array.operational
        assert array.degraded
        assert array.status() == "degraded"

    def test_mirror_dies_with_both(self):
        members = disks(2)
        array = MdSoftwareMirror("md0", members)
        for d in members:
            d.fail(0.0)
        assert not array.operational
        assert array.status() == "failed"

    def test_hardware_mirror_same_semantics(self):
        members = disks(2)
        array = HardwareMirror("sys", members)
        members[1].fail(0.0)
        assert array.operational

    def test_too_few_members_rejected(self):
        with pytest.raises(ValueError):
            MdSoftwareMirror("md0", disks(1))


class TestStripeWithParity:
    def test_survives_one_of_three(self):
        members = disks(3)
        array = StripeWithParity("data", members)
        members[0].fail(0.0)
        assert array.operational and array.degraded

    def test_dies_with_two(self):
        members = disks(3)
        array = StripeWithParity("data", members)
        members[0].fail(0.0)
        members[1].fail(0.0)
        assert not array.operational


class TestSingleDisk:
    def test_any_loss_is_fatal(self):
        members = disks(1)
        array = SingleDisk("sda", members)
        members[0].fail(0.0)
        assert not array.operational


class TestStorageSubsystem:
    def test_vendor_a_builds_md_mirror(self):
        sub = StorageSubsystem("host01", VENDOR_A, rng())
        assert len(sub.disks) == 2
        assert isinstance(sub.arrays[0], MdSoftwareMirror)

    def test_vendor_b_builds_single_disk(self):
        sub = StorageSubsystem("host14", VENDOR_B, rng())
        assert len(sub.disks) == 1
        assert isinstance(sub.arrays[0], SingleDisk)

    def test_vendor_c_builds_mirror_plus_raid5(self):
        sub = StorageSubsystem("host11", VENDOR_C, rng())
        assert len(sub.disks) == 5
        assert isinstance(sub.arrays[0], HardwareMirror)
        assert isinstance(sub.arrays[1], StripeWithParity)
        assert len(sub.arrays[0].members) == 2
        assert len(sub.arrays[1].members) == 3

    def test_vendor_c_tolerates_one_loss_per_array(self):
        sub = StorageSubsystem("host11", VENDOR_C, rng())
        sub.disks[0].fail(0.0)  # mirror member
        sub.disks[2].fail(0.0)  # stripe member
        assert sub.operational and sub.degraded

    def test_vendor_b_loss_kills_storage(self):
        sub = StorageSubsystem("host14", VENDOR_B, rng())
        sub.disks[0].fail(0.0)
        assert not sub.operational

    def test_self_tests_all_pass_when_healthy(self):
        sub = StorageSubsystem("host01", VENDOR_A, rng())
        assert sub.run_long_self_tests(time=0.0)

    def test_power_cycle_reaches_every_disk(self):
        sub = StorageSubsystem("host11", VENDOR_C, rng())
        sub.record_power_cycle()
        assert all(d.smart.attribute(12).raw == 1 for d in sub.disks)

    def test_disk_serials_are_distinct(self):
        sub = StorageSubsystem("host11", VENDOR_C, rng())
        serials = [d.serial for d in sub.disks]
        assert len(set(serials)) == 5
