"""Tests for the defective 8-port switches."""

import numpy as np
import pytest

from repro.hardware.switch import NetworkSwitch, SwitchState


def make_switch(seed=1, **kwargs):
    return NetworkSwitch("sw", np.random.default_rng(seed), **kwargs)


class TestPorts:
    def test_connect_and_carries(self):
        sw = make_switch()
        sw.connect("host01")
        assert sw.carries("host01")
        assert not sw.carries("host02")

    def test_connect_is_idempotent(self):
        sw = make_switch()
        sw.connect("host01")
        sw.connect("host01")
        assert sw.connected() == ["host01"]

    def test_port_capacity_enforced(self):
        sw = make_switch()
        for i in range(8):
            sw.connect(f"host{i:02d}")
        with pytest.raises(ValueError):
            sw.connect("host09")

    def test_disconnect_frees_port(self):
        sw = make_switch()
        for i in range(8):
            sw.connect(f"host{i:02d}")
        sw.disconnect("host00")
        sw.connect("host09")  # no raise
        assert not sw.carries("host00")

    def test_disconnect_unknown_is_noop(self):
        sw = make_switch()
        sw.disconnect("ghost")  # no raise


class TestFailureDynamics:
    def test_defective_units_whine(self):
        assert make_switch(inherent_defect=True).whines
        assert not make_switch(inherent_defect=False).whines

    def test_failed_switch_carries_nothing(self):
        sw = make_switch()
        sw.connect("host01")
        sw.fail(100.0)
        assert not sw.carries("host01")
        assert sw.failed_at == 100.0
        assert sw.state is SwitchState.FAILED

    def test_defective_switch_fails_within_weeks(self):
        # Mean life ~190 h: across seeds, essentially all die in 6 weeks.
        failed = 0
        for seed in range(50):
            sw = make_switch(seed=seed, inherent_defect=True)
            for hour in range(24 * 42):
                sw.tick(3600.0, float(hour))
            failed += not sw.operational
        assert failed >= 48

    def test_healthy_switch_survives_the_campaign(self):
        failed = 0
        for seed in range(50):
            sw = make_switch(seed=seed, inherent_defect=False)
            for day in range(90):
                sw.tick(86_400.0, float(day))
            failed += not sw.operational
        assert failed <= 2

    def test_tick_accrues_powered_hours(self):
        sw = make_switch(inherent_defect=False)
        sw.tick(7200.0, 0.0)
        assert sw.powered_hours == pytest.approx(2.0)

    def test_dead_switch_stops_aging(self):
        sw = make_switch()
        sw.fail(0.0)
        sw.tick(3600.0, 1.0)
        assert sw.powered_hours == 0.0


class TestBenchTest:
    def test_defective_spare_usually_fails_long_soak(self):
        # The paper's spare "manifested an identical failure state".
        failures = 0
        for seed in range(100):
            sw = make_switch(seed=seed, inherent_defect=True)
            if not sw.bench_test(duration_hours=500.0, time=0.0):
                failures += 1
        assert failures > 80

    def test_healthy_unit_passes_bench(self):
        sw = make_switch(inherent_defect=False)
        assert sw.bench_test(duration_hours=500.0, time=0.0)
        assert sw.powered_hours == 500.0

    def test_bench_test_of_dead_switch_reports_failure(self):
        sw = make_switch()
        sw.fail(0.0)
        assert not sw.bench_test(1.0, time=1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            make_switch().bench_test(-1.0, time=0.0)
