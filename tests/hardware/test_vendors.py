"""Tests for the vendor specifications of Section 3.4."""

import pytest

from repro.hardware.vendors import (
    VENDOR_A,
    VENDOR_B,
    VENDOR_C,
    DiskLayout,
    FormFactor,
    VendorSpec,
    vendor,
)


class TestPaperFidelity:
    def test_vendor_a_is_a_tower_with_md_mirror(self):
        assert VENDOR_A.form_factor is FormFactor.MEDIUM_TOWER
        assert VENDOR_A.disk_layout is DiskLayout.MD_SOFTWARE_MIRROR
        assert VENDOR_A.disk_layout.disk_count == 2

    def test_vendor_b_is_sff_single_disk_defective_series(self):
        assert VENDOR_B.form_factor is FormFactor.SMALL_FORM_FACTOR
        assert VENDOR_B.disk_layout.disk_count == 1
        assert VENDOR_B.defective_series

    def test_vendor_c_is_2u_with_five_disks(self):
        assert VENDOR_C.form_factor is FormFactor.RACK_2U
        assert VENDOR_C.disk_layout is DiskLayout.MIRROR_PLUS_RAID5
        assert VENDOR_C.disk_layout.disk_count == 5

    def test_only_the_servers_have_ecc(self):
        # Section 4.2.2: wrong-hash hosts all lacked error-correcting parity.
        assert not VENDOR_A.ecc_memory
        assert not VENDOR_B.ecc_memory
        assert VENDOR_C.ecc_memory

    def test_bad_airflow_makes_vendor_b_run_hot(self):
        a_case = VENDOR_A.case_temp_c(21.0, VENDOR_A.average_power_w())
        b_case = VENDOR_B.case_temp_c(21.0, VENDOR_B.average_power_w())
        assert b_case > a_case + 2.0


class TestThermalArithmetic:
    def test_case_temp_linear_in_power(self):
        assert VENDOR_A.case_temp_c(10.0, 100.0) == pytest.approx(
            10.0 + 0.035 * 100.0
        )

    def test_cpu_temp_stacks_rises(self):
        cpu = VENDOR_A.cpu_temp_c(intake_c=0.0, host_power_w=70.0, cpu_power_w=12.0)
        case = VENDOR_A.case_temp_c(0.0, 70.0)
        assert cpu == pytest.approx(case + VENDOR_A.cpu_theta_k_per_w * 12.0)

    def test_prototype_cpu_can_read_minus_four(self):
        # Paper: outside -9 degC weekend, boxes add ~2 degC, CPU read -4 degC.
        cpu = VENDOR_A.cpu_temp_c(
            intake_c=-9.2 + 2.0,
            host_power_w=VENDOR_A.idle_power_w,
            cpu_power_w=VENDOR_A.cpu_idle_power_w,
        )
        assert cpu == pytest.approx(-4.0, abs=2.0)


class TestPower:
    def test_average_between_idle_and_active(self):
        avg = VENDOR_A.average_power_w(duty_cycle=0.3)
        assert VENDOR_A.idle_power_w < avg < VENDOR_A.active_power_w

    def test_duty_cycle_bounds_checked(self):
        with pytest.raises(ValueError):
            VENDOR_A.average_power_w(duty_cycle=1.5)

    def test_fleet_heat_budget_scale(self):
        # 5xA + 2xB + 2xC in the tent: just under a kilowatt.
        total = (
            5 * VENDOR_A.average_power_w()
            + 2 * VENDOR_B.average_power_w()
            + 2 * VENDOR_C.average_power_w()
        )
        assert 700.0 < total < 1100.0


class TestSpecValidation:
    def test_within_spec_range(self):
        assert VENDOR_A.within_spec(21.0)
        assert not VENDOR_A.within_spec(-10.0)
        assert not VENDOR_A.within_spec(45.0)

    def test_lookup_by_letter(self):
        assert vendor("A") is VENDOR_A
        assert vendor("C") is VENDOR_C

    def test_unknown_vendor_raises(self):
        with pytest.raises(KeyError):
            vendor("Z")

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            VendorSpec(
                vendor_id="X", description="bad", form_factor=FormFactor.MEDIUM_TOWER,
                disk_layout=DiskLayout.SINGLE_DISK, ecc_memory=False, memory_mib=1024,
                idle_power_w=100.0, active_power_w=50.0,  # active < idle
                cpu_idle_power_w=10.0, cpu_active_power_w=20.0,
                case_rise_k_per_w=0.05, cpu_theta_k_per_w=0.2, defective_series=False,
            )
