"""Tests for the water-ingress fault path."""

import pytest

from repro.climate.generator import WeatherGenerator
from repro.climate.profiles import HELSINKI_2010
from repro.hardware.faults import FaultKind, FaultLog, TransientFaultModel
from repro.hardware.host import Host, HostState
from repro.hardware.vendors import VENDOR_A
from repro.sim.clock import DAY, SimClock
from repro.sim.rng import RngStreams
from repro.thermal.enclosure import OutdoorAmbient


def quiet_model():
    return TransientFaultModel(base_rate_per_hour=0.0, defective_rate_per_hour=0.0)


@pytest.fixture
def outdoors():
    weather = WeatherGenerator(HELSINKI_2010, RngStreams(9))
    return OutdoorAmbient("outside", weather)


class TestWaterIngress:
    def test_dry_host_never_dies_of_water(self, outdoors):
        host = Host(1, VENDOR_A, RngStreams(9), transient_model=quiet_model())
        t = SimClock().at(2010, 2, 20)
        host.install(outdoors, t)
        outdoors.intake_precip_mm_h = 0.0
        for k in range(1000):
            host.tick(300.0, t + k * 300.0)
        assert host.running

    def test_soaked_host_eventually_shorts(self, outdoors):
        log = FaultLog()
        host = Host(1, VENDOR_A, RngStreams(9), transient_model=quiet_model())
        t = SimClock().at(2010, 2, 20)
        host.install(outdoors, t)
        outdoors.intake_precip_mm_h = 2.0  # steady snowfall on bare hardware
        for k in range(12 * 24 * 7):  # up to a week
            host.tick(300.0, t + k * 300.0, log)
            if not host.running:
                break
        assert host.state is HostState.FAILED
        events = log.of_kind(FaultKind.WATER_INGRESS)
        assert events and events[0].host_id == 1
        assert "mm/h" in events[0].detail

    def test_water_failures_count_in_the_census(self):
        from repro.analysis.failures import census_from_events, failures_by_host
        from repro.hardware.faults import FaultEvent

        events = [FaultEvent(0.0, FaultKind.WATER_INGRESS, host_id=3)]
        census = census_from_events("exposed", [3], events)
        assert census.hosts_failed == 1
        assert failures_by_host(events) == {3: 1}

    def test_unsheltered_fleet_dies_within_weeks_statistically(self):
        # The reason the tent exists: bare hosts under Finnish winter
        # precipitation mostly die inside a month.
        weather = WeatherGenerator(HELSINKI_2010, RngStreams(13))
        clock = SimClock()
        start = clock.at(2010, 2, 19)
        deaths = 0
        for seed in range(10):
            outdoors = OutdoorAmbient("outside", weather)
            host = Host(seed + 1, VENDOR_A, RngStreams(seed), transient_model=quiet_model())
            host.install(outdoors, start)
            t = start
            while t < start + 30 * DAY and host.running:
                outdoors.advance(t)
                host.tick(1800.0, t)
                t += 1800.0
            deaths += not host.running
        assert deaths >= 6
