"""Tests for the 20-minute monitoring/collection rounds."""

import numpy as np
import pytest

from repro.climate.generator import WeatherGenerator
from repro.climate.profiles import HELSINKI_2010
from repro.hardware.faults import TransientFaultModel
from repro.hardware.host import Host
from repro.hardware.switch import NetworkSwitch
from repro.hardware.vendors import VENDOR_A
from repro.monitoring.collector import COLLECTION_PERIOD_S, MonitoringHost, NetworkPath
from repro.monitoring.transport import SSH_SESSION_OVERHEAD_BYTES, TransferLedger
from repro.sim.clock import HOUR, SimClock
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.thermal.enclosure import BasementMachineRoom


def make_rig(host_count=2):
    sim = Simulator()
    weather = WeatherGenerator(HELSINKI_2010, RngStreams(4))
    basement = BasementMachineRoom("basement", weather)
    basement.advance(0.0)
    switch = NetworkSwitch("sw1", np.random.default_rng(4))
    hosts = []
    for i in range(host_count):
        host = Host(
            i + 1, VENDOR_A, RngStreams(4),
            transient_model=TransientFaultModel(base_rate_per_hour=0.0),
        )
        host.install(basement, 0.0)
        hosts.append(host)
    return sim, hosts, switch


class TestTopology:
    def test_register_connects_ports(self):
        sim, hosts, switch = make_rig()
        monitoring = MonitoringHost(sim)
        monitoring.register(hosts[0], [switch])
        assert switch.carries("host01")

    def test_double_register_rejected(self):
        sim, hosts, switch = make_rig()
        monitoring = MonitoringHost(sim)
        monitoring.register(hosts[0], [switch])
        with pytest.raises(ValueError):
            monitoring.register(hosts[0], [switch])

    def test_unregister_frees_port(self):
        sim, hosts, switch = make_rig()
        monitoring = MonitoringHost(sim)
        monitoring.register(hosts[0], [switch])
        monitoring.unregister(hosts[0])
        assert not switch.carries("host01")

    def test_path_reroute(self):
        sim, hosts, switch = make_rig()
        other = NetworkSwitch("sw2", np.random.default_rng(5))
        path = NetworkPath(hosts[0], [switch])
        path.reroute([other])
        assert other.carries("host01")
        assert not switch.carries("host01")
        assert path.up


class TestCollection:
    def test_healthy_round_collects_everyone(self):
        sim, hosts, switch = make_rig(3)
        monitoring = MonitoringHost(sim)
        for host in hosts:
            monitoring.register(host, [switch])
        round_ = monitoring.collect_round()
        assert round_.collected_host_ids == (1, 2, 3)
        assert round_.all_quiet
        assert len(monitoring.sensor_records) == 3

    def test_down_host_detected_and_callback_fired(self):
        seen = []
        sim, hosts, switch = make_rig(2)
        monitoring = MonitoringHost(sim, on_down_host=lambda t, h: seen.append(h.host_id))
        for host in hosts:
            monitoring.register(host, [switch])
        hosts[0].retire(0.0)
        round_ = monitoring.collect_round()
        assert round_.down_host_ids == (1,)
        assert round_.collected_host_ids == (2,)
        assert seen == [1]

    def test_dead_switch_makes_hosts_unreachable(self):
        seen = []
        sim, hosts, switch = make_rig(2)
        monitoring = MonitoringHost(
            sim, on_unreachable=lambda t, p: seen.append(p.host.host_id)
        )
        for host in hosts:
            monitoring.register(host, [switch])
        switch.fail(0.0)
        round_ = monitoring.collect_round()
        assert round_.unreachable_host_ids == (1, 2)
        assert round_.collected_host_ids == ()
        assert seen == [1, 2]
        # Unreachable hosts contribute no sensor records.
        assert monitoring.sensor_records == []

    def test_erratic_sensor_flagged_as_anomaly(self):
        seen = []
        sim, hosts, switch = make_rig(1)
        monitoring = MonitoringHost(
            sim, on_sensor_anomaly=lambda t, h: seen.append(h.host_id)
        )
        monitoring.register(hosts[0], [switch])
        hosts[0].sensor.state = hosts[0].sensor.state.__class__.ERRATIC
        round_ = monitoring.collect_round()
        assert round_.sensor_anomaly_host_ids == (1,)
        assert seen == [1]
        assert len(monitoring.erroneous_readings()) == 1

    def test_records_for_host_filters(self):
        sim, hosts, switch = make_rig(2)
        monitoring = MonitoringHost(sim)
        for host in hosts:
            monitoring.register(host, [switch])
        monitoring.collect_round()
        monitoring.collect_round()
        assert len(monitoring.records_for_host(1)) == 2
        assert len(monitoring.records_for_host(2)) == 2


class _WorkloadStub:
    def __init__(self, runs_per_host):
        self.runs_per_host = dict(runs_per_host)


class TestSwitchOutageBacklog:
    def test_dying_switch_parks_bytes_until_reroute(self):
        # The paper's defective 8-port switch dies mid-campaign; the host
        # behind it keeps computing md5sums that nobody can fetch.  The
        # first round after the operators re-cable it moves exactly the
        # parked backlog -- payload bytes are conserved across the outage.
        sim, hosts, switch = make_rig(1)
        ledger = TransferLedger()
        workload = _WorkloadStub({1: 4})
        monitoring = MonitoringHost(sim, transport=ledger, workload_ledger=workload)
        monitoring.register(hosts[0], [switch])

        monitoring.collect_round()  # healthy: 4 lines + 1 sample move
        assert ledger.records[-1].complete

        switch.fail(0.0)
        workload.runs_per_host[1] = 9  # the host keeps working unseen
        for _ in range(3):
            round_ = monitoring.collect_round()
            assert round_.unreachable_host_ids == (1,)
        outage_sessions = len(ledger.records)

        spare = NetworkSwitch("sw2", np.random.default_rng(5))
        monitoring.paths[1].reroute([spare])
        round_ = monitoring.collect_round()
        assert round_.collected_host_ids == (1,)
        # No rsync session ran while the path was down...
        assert len(ledger.records) == outage_sessions + 1
        # ...and the catch-up session drains exactly the parked pending
        # bytes (5 new lines, plus the samples the collector archived).
        catch_up = ledger.records[-1]
        assert catch_up.new_md5_lines == 5
        expected_payload = ledger.channel(1).pending(0, 0)
        assert expected_payload == 0  # backlog fully drained
        assert catch_up.complete
        # Conservation: everything produced has now moved, in two
        # sessions instead of five.
        total_lines = sum(r.new_md5_lines for r in ledger.records)
        assert total_lines == 9
        assert ledger.total_bytes == sum(r.bytes_moved for r in ledger.records)
        assert ledger.records[-1].bytes_moved > SSH_SESSION_OVERHEAD_BYTES

    def test_unreachable_rounds_freeze_sensor_history(self):
        # No SSH session means no sensor poll: observation stops, the
        # host's RNG cadence for *polling* is untouched elsewhere.
        sim, hosts, switch = make_rig(1)
        monitoring = MonitoringHost(sim)
        monitoring.register(hosts[0], [switch])
        monitoring.collect_round()
        switch.fail(0.0)
        monitoring.collect_round()
        monitoring.collect_round()
        assert len(hosts[0].sensor.history) == 1
        assert len(monitoring.sensor_records) == 1


class TestLifecycleChurn:
    def test_detach_then_reattach_resumes_rounds(self):
        sim, hosts, switch = make_rig(1)
        monitoring = MonitoringHost(sim)
        monitoring.register(hosts[0], [switch])
        monitoring.attach(start=0.0)
        sim.run_until(HOUR)
        monitoring.detach()
        paused = len(monitoring.rounds)
        sim.run_until(2 * HOUR)
        assert len(monitoring.rounds) == paused
        monitoring.attach(start=sim.now)
        sim.run_until(3 * HOUR)
        assert len(monitoring.rounds) > paused

    def test_unregister_between_rounds_drops_cleanly(self):
        sim, hosts, switch = make_rig(2)
        monitoring = MonitoringHost(sim)
        for host in hosts:
            monitoring.register(host, [switch])
        monitoring.collect_round()
        monitoring.unregister(hosts[0])
        round_ = monitoring.collect_round()
        assert round_.collected_host_ids == (2,)
        assert not switch.carries(hosts[0].hostname)
        # Earlier records survive; only future rounds skip the host.
        assert len(monitoring.records_for_host(1)) == 1

    def test_unregister_forgets_health_standing(self):
        from repro.monitoring.health import HealthPolicy, HostHealthState

        sim, hosts, switch = make_rig(1)
        monitoring = MonitoringHost(sim, health=HealthPolicy(confirm_rounds=3))
        monitoring.register(hosts[0], [switch])
        hosts[0].retire(0.0)
        monitoring.collect_round()
        assert monitoring.tracker.suspects() == {1: 1}
        monitoring.unregister(hosts[0])
        assert monitoring.tracker.suspects() == {}
        assert monitoring.tracker.state_of(1) is HostHealthState.UP

    def test_reregister_after_unregister_starts_fresh(self):
        sim, hosts, switch = make_rig(1)
        monitoring = MonitoringHost(sim)
        monitoring.register(hosts[0], [switch])
        monitoring.unregister(hosts[0])
        monitoring.register(hosts[0], [switch])
        assert switch.carries(hosts[0].hostname)
        round_ = monitoring.collect_round()
        assert round_.collected_host_ids == (1,)


class TestPeriodicRounds:
    def test_twenty_minute_cadence(self):
        sim, hosts, switch = make_rig(1)
        monitoring = MonitoringHost(sim)
        monitoring.register(hosts[0], [switch])
        monitoring.attach(start=0.0)
        sim.run_until(HOUR)
        # Rounds at 0, 20, 40, 60 minutes.
        assert len(monitoring.rounds) == 4
        assert COLLECTION_PERIOD_S == 1200.0

    def test_attach_twice_rejected(self):
        sim, hosts, switch = make_rig(1)
        monitoring = MonitoringHost(sim)
        monitoring.attach()
        with pytest.raises(RuntimeError):
            monitoring.attach()

    def test_detach_stops_rounds(self):
        sim, hosts, switch = make_rig(1)
        monitoring = MonitoringHost(sim)
        monitoring.register(hosts[0], [switch])
        monitoring.attach(start=0.0)
        sim.run_until(HOUR)
        monitoring.detach()
        count = len(monitoring.rounds)
        sim.run_until(3 * HOUR)
        assert len(monitoring.rounds) == count
