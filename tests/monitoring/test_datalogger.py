"""Tests for the Lascar EL-USB-2-LCD data logger model."""

import numpy as np
import pytest

from repro.climate.generator import WeatherGenerator
from repro.climate.profiles import HELSINKI_2010
from repro.monitoring.datalogger import LascarDataLogger, RemovalEpisode
from repro.sim.clock import DAY, HOUR, MINUTE, SimClock
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.thermal.enclosure import BasementMachineRoom, OutdoorAmbient


@pytest.fixture
def outdoor():
    weather = WeatherGenerator(HELSINKI_2010, RngStreams(2))
    enclosure = OutdoorAmbient("outside", weather)
    enclosure.advance(SimClock().at(2010, 3, 1))
    return enclosure


class TestArrivalGating:
    def test_no_readings_before_arrival(self, outdoor):
        logger = LascarDataLogger(outdoor, RngStreams(2), arrival_time=1000.0)
        assert logger.sample(time=500.0) is None
        assert logger.readings == []

    def test_records_from_arrival_onward(self, outdoor):
        logger = LascarDataLogger(outdoor, RngStreams(2), arrival_time=1000.0)
        reading = logger.sample(time=1000.0)
        assert reading is not None
        assert len(logger.readings) == 1


class TestAccuracy:
    def test_reading_within_spec_band(self, outdoor):
        logger = LascarDataLogger(outdoor, RngStreams(2))
        t = SimClock().at(2010, 3, 1)
        reading = logger.sample(t)
        assert reading.temp_c == pytest.approx(outdoor.intake_temp_c, abs=1.5)
        assert reading.rh_percent == pytest.approx(outdoor.intake_rh_percent, abs=7.0)

    def test_quantized_to_device_resolution(self, outdoor):
        logger = LascarDataLogger(outdoor, RngStreams(2))
        t = SimClock().at(2010, 3, 1)
        for k in range(20):
            reading = logger.sample(t + k)
            assert (reading.temp_c / 0.5) == pytest.approx(round(reading.temp_c / 0.5))
            assert (reading.rh_percent / 0.5) == pytest.approx(
                round(reading.rh_percent / 0.5)
            )

    def test_rh_clipped(self, outdoor):
        logger = LascarDataLogger(outdoor, RngStreams(2), rh_error_std=80.0)
        t = SimClock().at(2010, 3, 1)
        for k in range(30):
            assert 0.0 <= logger.sample(t + k).rh_percent <= 100.0


class TestRemovalEpisodes:
    def test_indoor_readings_during_download(self, outdoor):
        logger = LascarDataLogger(outdoor, RngStreams(2))
        t = SimClock().at(2010, 3, 1)
        logger.schedule_download_trip(t, duration_s=30 * MINUTE)
        reading = logger.sample(t + 10 * MINUTE)
        # Office conditions, not the freezing outdoors.
        assert reading.temp_c > 15.0

    def test_outdoor_readings_resume_after_trip(self, outdoor):
        logger = LascarDataLogger(outdoor, RngStreams(2))
        t = SimClock().at(2010, 3, 1)
        logger.schedule_download_trip(t, duration_s=30 * MINUTE)
        after = logger.sample(t + 31 * MINUTE)
        assert after.temp_c < 10.0

    def test_readings_during_removals_helper(self, outdoor):
        logger = LascarDataLogger(outdoor, RngStreams(2))
        t = SimClock().at(2010, 3, 1)
        logger.schedule_download_trip(t + HOUR, duration_s=30 * MINUTE)
        logger.sample(t)
        logger.sample(t + HOUR + MINUTE)
        assert len(logger.readings_during_removals()) == 1

    def test_episode_validation(self):
        with pytest.raises(ValueError):
            RemovalEpisode(start=10.0, end=10.0)

    def test_episode_covers(self):
        episode = RemovalEpisode(start=10.0, end=20.0)
        assert episode.covers(10.0)
        assert episode.covers(19.9)
        assert not episode.covers(20.0)


class TestPeriodicSampling:
    def test_attach_respects_arrival(self, outdoor):
        sim = Simulator()
        start = SimClock().at(2010, 3, 1)
        sim.run_until(start - DAY)
        logger = LascarDataLogger(
            outdoor, RngStreams(2), arrival_time=start, period_s=MINUTE
        )
        logger.attach(sim)
        sim.run_until(start + 10 * MINUTE)
        assert len(logger.readings) == 11  # inclusive of both endpoints
        assert logger.times()[0] == start

    def test_attach_twice_rejected(self, outdoor):
        sim = Simulator()
        logger = LascarDataLogger(outdoor, RngStreams(2))
        logger.attach(sim)
        with pytest.raises(RuntimeError):
            logger.attach(sim)

    def test_detach_stops(self, outdoor):
        sim = Simulator()
        start = SimClock().at(2010, 3, 1)
        sim.run_until(start)
        logger = LascarDataLogger(outdoor, RngStreams(2), period_s=MINUTE)
        logger.attach(sim)
        sim.run_until(start + 5 * MINUTE)
        logger.detach()
        count = len(logger.readings)
        sim.run_until(start + HOUR)
        assert len(logger.readings) == count

    def test_accessor_arrays_align(self, outdoor):
        logger = LascarDataLogger(outdoor, RngStreams(2))
        t = SimClock().at(2010, 3, 1)
        for k in range(4):
            logger.sample(t + k * 60.0)
        assert logger.times().shape == logger.temperatures().shape == (4,)
        assert logger.humidities().shape == (4,)

    def test_invalid_period_rejected(self, outdoor):
        with pytest.raises(ValueError):
            LascarDataLogger(outdoor, period_s=0.0)
