"""Integration tests for the degraded-mode monitoring plane.

Unit scenarios drive a small rig round by round; the campaign scenarios
at the bottom pin the two headline invariants: defaults are
byte-identical to the historical collector, and link faults degrade
observation without touching the hardware census.
"""

import datetime as dt

import numpy as np
import pytest

from repro.climate.generator import WeatherGenerator
from repro.climate.profiles import HELSINKI_2010
from repro.core.builder import CampaignBuilder
from repro.core.config import ExperimentConfig
from repro.hardware.faults import TransientFaultModel
from repro.hardware.host import Host
from repro.hardware.sensors import SensorState
from repro.hardware.switch import NetworkSwitch
from repro.hardware.vendors import VENDOR_A
from repro.monitoring.collector import MonitoringHost
from repro.monitoring.health import HealthPolicy
from repro.monitoring.transport import (
    LinkFault,
    LinkFaultAction,
    LinkFaultPlan,
    LinkStorm,
    TransferLedger,
)
from repro.runner.policy import RetryPolicy
from repro.sim.engine import Simulator
from repro.sim.events import (
    EventBus,
    HostDownObserved,
    HostRecovered,
    HostSuspect,
    HostUnreachable,
    SensorAnomalyObserved,
    SensorMuteObserved,
)
from repro.sim.rng import RngStreams
from repro.thermal.enclosure import BasementMachineRoom


class WorkloadStub:
    """The slice of the workload ledger the collector reads."""

    def __init__(self, runs_per_host=None):
        self.runs_per_host = dict(runs_per_host or {})


def make_rig(host_count=2, **monitor_kwargs):
    sim = Simulator()
    weather = WeatherGenerator(HELSINKI_2010, RngStreams(4))
    basement = BasementMachineRoom("basement", weather)
    basement.advance(0.0)
    switch = NetworkSwitch("sw1", np.random.default_rng(4))
    bus = EventBus()
    monitoring = MonitoringHost(sim, bus=bus, **monitor_kwargs)
    hosts = []
    for i in range(host_count):
        host = Host(
            i + 1, VENDOR_A, RngStreams(4),
            transient_model=TransientFaultModel(base_rate_per_hour=0.0),
        )
        host.install(basement, 0.0)
        hosts.append(host)
        monitoring.register(host, [switch])
    return sim, hosts, switch, bus, monitoring


def subscribe_all(bus):
    seen = {
        HostSuspect: [], HostRecovered: [],
        HostDownObserved: [], HostUnreachable: [],
    }
    for klass, sink in seen.items():
        bus.subscribe(klass, sink.append)
    return seen


class TestRetryWithinRound:
    def test_retry_absorbs_single_attempt_timeout(self):
        plan = LinkFaultPlan.of(LinkFault(1, 0, LinkFaultAction.SSH_TIMEOUT))
        sim, hosts, switch, bus, monitoring = make_rig(
            link_faults=plan,
            health=HealthPolicy(retry=RetryPolicy(max_attempts=2)),
        )
        round_ = monitoring.collect_round()
        assert round_.collected_host_ids == (1, 2)
        assert round_.retries == 1
        assert monitoring.ssh_timeouts_total == 1
        assert monitoring.retry_backoff_s_total > 0.0

    def test_exhausted_retries_report_the_host_down(self):
        seen = []
        plan = LinkFaultPlan.of(
            LinkFault(1, 0, LinkFaultAction.SSH_TIMEOUT, attempts=2)
        )
        sim, hosts, switch, bus, monitoring = make_rig(
            link_faults=plan,
            health=HealthPolicy(retry=RetryPolicy(max_attempts=2)),
        )
        monitoring.on_down_host = lambda t, h: seen.append(h.host_id)
        round_ = monitoring.collect_round()
        assert round_.down_host_ids == (1,)
        assert round_.collected_host_ids == (2,)
        assert seen == [1]
        assert monitoring.ssh_timeouts_total == 2

    def test_failed_contact_still_polls_the_sensor(self):
        # The host-local sampler fires whether or not SSH connects --
        # observation failure must not perturb the hardware's RNG
        # cadence -- but the sample stays out of the archive.
        plan = LinkFaultPlan.of(
            LinkFault(1, 0, LinkFaultAction.SSH_TIMEOUT)
        )
        sim, hosts, switch, bus, monitoring = make_rig(
            host_count=1, link_faults=plan
        )
        monitoring.collect_round()
        assert len(hosts[0].sensor.history) == 1
        assert monitoring.sensor_records == []


class TestConfirmationRounds:
    def test_transient_fault_raises_suspect_not_down(self):
        operator = []
        plan = LinkFaultPlan.of(LinkFault(1, 0, LinkFaultAction.SSH_TIMEOUT))
        sim, hosts, switch, bus, monitoring = make_rig(
            link_faults=plan, health=HealthPolicy(confirm_rounds=2)
        )
        monitoring.on_down_host = lambda t, h: operator.append(h.host_id)
        seen = subscribe_all(bus)
        round_ = monitoring.collect_round()
        assert round_.degraded_host_ids == (1,)
        assert round_.down_host_ids == ()
        assert not round_.all_quiet
        assert operator == []
        assert [e.host_id for e in seen[HostSuspect]] == [1]
        assert seen[HostSuspect][0].kind == "down"
        assert seen[HostDownObserved] == []

    def test_recovery_suppresses_the_false_alarm(self):
        plan = LinkFaultPlan.of(LinkFault(1, 0, LinkFaultAction.SSH_TIMEOUT))
        sim, hosts, switch, bus, monitoring = make_rig(
            link_faults=plan, health=HealthPolicy(confirm_rounds=2)
        )
        seen = subscribe_all(bus)
        monitoring.collect_round()
        round_ = monitoring.collect_round()  # round 1: no fault scheduled
        assert round_.collected_host_ids == (1, 2)
        assert monitoring.false_alarms_suppressed == 1
        assert [e.host_id for e in seen[HostRecovered]] == [1]
        assert seen[HostRecovered][0].rounds_suspect == 1

    def test_persistent_outage_confirms_on_schedule(self):
        operator = []
        plan = LinkFaultPlan.of(
            LinkFault(1, 0, LinkFaultAction.SSH_TIMEOUT),
            LinkFault(1, 1, LinkFaultAction.SSH_TIMEOUT),
        )
        sim, hosts, switch, bus, monitoring = make_rig(
            link_faults=plan, health=HealthPolicy(confirm_rounds=2)
        )
        monitoring.on_down_host = lambda t, h: operator.append(h.host_id)
        seen = subscribe_all(bus)
        first = monitoring.collect_round()
        second = monitoring.collect_round()
        assert first.degraded_host_ids == (1,)
        assert second.down_host_ids == (1,)
        assert operator == [1]
        assert [e.host_id for e in seen[HostDownObserved]] == [1]

    def test_dead_switch_confirms_as_unreachable(self):
        operator = []
        sim, hosts, switch, bus, monitoring = make_rig(
            health=HealthPolicy(confirm_rounds=2)
        )
        monitoring.on_unreachable = lambda t, p: operator.append(p.host.host_id)
        seen = subscribe_all(bus)
        switch.fail(0.0)
        first = monitoring.collect_round()
        second = monitoring.collect_round()
        assert first.degraded_host_ids == (1, 2)
        assert {e.kind for e in seen[HostSuspect]} == {"unreachable"}
        assert second.unreachable_host_ids == (1, 2)
        assert operator == [1, 2]


class TestTransportFaultWiring:
    def test_partial_transfer_leaves_backlog(self):
        ledger = TransferLedger()
        workload = WorkloadStub({1: 10})
        plan = LinkFaultPlan.of(
            LinkFault(1, 0, LinkFaultAction.PARTIAL_TRANSFER, fraction=0.5)
        )
        sim, hosts, switch, bus, monitoring = make_rig(
            host_count=1, link_faults=plan,
            transport=ledger, workload_ledger=workload,
        )
        monitoring.collect_round()
        assert monitoring.partial_transfers_total == 1
        assert ledger.partial_sessions == 1
        assert not ledger.records[0].complete
        monitoring.collect_round()  # fault-free: carries the backlog
        moved_md5 = sum(r.new_md5_lines for r in ledger.records)
        moved_samples = sum(r.new_sensor_samples for r in ledger.records)
        assert moved_md5 == 10
        assert moved_samples == len(hosts[0].sensor.history)

    def test_slow_session_is_accounted(self):
        plan = LinkFaultPlan.of(
            LinkFault(1, 0, LinkFaultAction.SLOW_SESSION, delay_s=45.0)
        )
        sim, hosts, switch, bus, monitoring = make_rig(
            host_count=1, link_faults=plan
        )
        round_ = monitoring.collect_round()
        assert round_.collected_host_ids == (1,)
        assert monitoring.slow_sessions_total == 1
        assert monitoring.slow_session_s_total == 45.0

    def test_no_plan_leaves_counters_at_zero(self):
        ledger = TransferLedger()
        sim, hosts, switch, bus, monitoring = make_rig(
            transport=ledger, workload_ledger=WorkloadStub()
        )
        monitoring.collect_round()
        assert monitoring.ssh_timeouts_total == 0
        assert monitoring.partial_transfers_total == 0
        assert monitoring.retries_total == 0
        assert monitoring.false_alarms_suppressed == 0


class TestMuteVersusErratic:
    def test_mute_reading_publishes_subclass_event(self):
        operator = []
        sim, hosts, switch, bus, monitoring = make_rig(host_count=1)
        monitoring.on_sensor_anomaly = lambda t, h: operator.append(h.host_id)
        exact, base = [], []
        bus.subscribe(SensorMuteObserved, exact.append)
        bus.subscribe(SensorAnomalyObserved, base.append)
        hosts[0].sensor.state = SensorState.UNDETECTED
        round_ = monitoring.collect_round()
        assert round_.sensor_anomaly_host_ids == (1,)
        assert round_.sensor_mute_host_ids == (1,)
        assert monitoring.sensor_mute_total == 1
        assert monitoring.sensor_erratic_total == 0
        assert operator == [1]
        assert len(exact) == 1 and exact[0].reading_c is None
        # Base-class subscribers still see the mute (MRO dispatch).
        assert len(base) == 1

    def test_erratic_reading_keeps_the_base_event(self):
        sim, hosts, switch, bus, monitoring = make_rig(host_count=1)
        exact_mute, base = [], []
        bus.subscribe(SensorMuteObserved, exact_mute.append)
        bus.subscribe(SensorAnomalyObserved, base.append)
        hosts[0].sensor.state = SensorState.ERRATIC
        round_ = monitoring.collect_round()
        assert round_.sensor_anomaly_host_ids == (1,)
        assert round_.sensor_mute_host_ids == ()
        assert monitoring.sensor_erratic_total == 1
        assert exact_mute == []
        assert len(base) == 1
        assert type(base[0]) is SensorAnomalyObserved
        assert len(monitoring.mute_readings()) == 0
        assert len(monitoring.erroneous_readings()) == 1


UNTIL = dt.datetime(2010, 2, 24)


def _census(results):
    return [
        (e.time, e.host_id, str(e.kind), e.detail)
        for e in results.fault_log.events
    ]


def _sensor_records(results):
    return [
        (r.time, r.host_id, r.cpu_temp_c)
        for r in results.monitoring.sensor_records
    ]


class TestCampaignDefaults:
    def test_explicit_defaults_are_byte_identical(self, short_results):
        # An empty plan plus the default policy must replay the
        # fixture's run exactly: rounds, records, census, transfers.
        explicit = (
            CampaignBuilder(ExperimentConfig(seed=7))
            .with_link_faults(LinkFaultPlan())
            .with_health_policy(HealthPolicy())
            .build()
            .run(until=dt.datetime(2010, 3, 3))
        )
        assert explicit.monitoring.rounds == short_results.monitoring.rounds
        assert _sensor_records(explicit) == _sensor_records(short_results)
        assert _census(explicit) == _census(short_results)
        assert [
            (t.time, t.host_id, t.bytes_moved, t.complete)
            for t in explicit.transfers.records
        ] == [
            (t.time, t.host_id, t.bytes_moved, t.complete)
            for t in short_results.transfers.records
        ]

    def test_default_rounds_carry_empty_degraded_fields(self, short_results):
        for round_ in short_results.monitoring.rounds:
            assert round_.degraded_host_ids == ()
            assert round_.retries == 0
        assert short_results.monitoring.false_alarms_suppressed == 0


class TestCampaignStorm:
    def test_absorbed_storm_leaves_ground_truth_untouched(self):
        base = CampaignBuilder(ExperimentConfig(seed=7)).build().run(until=UNTIL)
        storm = (
            CampaignBuilder(ExperimentConfig(seed=7))
            .with_link_faults(
                LinkFaultPlan(storm=LinkStorm(probability=0.25, seed=3))
            )
            .with_health_policy(HealthPolicy(retry=RetryPolicy(max_attempts=3)))
            .build()
            .run(until=UNTIL)
        )
        assert storm.monitoring.ssh_timeouts_total > 0
        assert _census(storm) == _census(base)
        assert _sensor_records(storm) == _sensor_records(base)
        assert [
            (t.time, t.host_id, t.bytes_moved) for t in storm.transfers.records
        ] == [(t.time, t.host_id, t.bytes_moved) for t in base.transfers.records]

    def test_confirmation_keeps_false_alarms_from_the_operator(self):
        suspects, recovered = [], []
        base = CampaignBuilder(ExperimentConfig(seed=7)).build().run(until=UNTIL)
        degraded = (
            CampaignBuilder(ExperimentConfig(seed=7))
            .with_link_faults(
                LinkFaultPlan(storm=LinkStorm(probability=0.15, seed=5))
            )
            .with_health_policy(HealthPolicy(confirm_rounds=2))
            .with_subscriber(lambda bus: bus.subscribe(HostSuspect, suspects.append))
            .with_subscriber(lambda bus: bus.subscribe(HostRecovered, recovered.append))
            .build()
            .run(until=UNTIL)
        )
        monitoring = degraded.monitoring
        assert suspects, "the storm never produced a suspect"
        assert recovered, "no suspect ever recovered"
        assert monitoring.false_alarms_suppressed == len(recovered)
        # The hardware census is observation-independent.
        assert _census(degraded) == _census(base)
        # No operator intervention ever reached a host that never failed:
        # inspections only proceed for genuinely FAILED hosts.
        failed_ids = {
            e.host_id for e in degraded.fault_log.events if e.host_id is not None
        }
        assert set(degraded.policy.failure_counts) <= failed_ids
        assert degraded.policy.replacements == base.policy.replacements
