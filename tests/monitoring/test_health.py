"""Tests for the host-health state machine."""

import pytest

from repro.monitoring.health import (
    HealthPolicy,
    HealthTracker,
    HostHealthState,
)
from repro.runner.policy import RetryPolicy


class TestHealthPolicy:
    def test_default_is_historical(self):
        policy = HealthPolicy()
        assert policy.confirm_rounds == 1
        assert policy.retry.max_attempts == 1

    def test_zero_confirm_rounds_rejected(self):
        with pytest.raises(ValueError):
            HealthPolicy(confirm_rounds=0)

    def test_carries_retry_policy(self):
        policy = HealthPolicy(retry=RetryPolicy(max_attempts=3))
        assert policy.retry.retries == 2


class TestDefaultConfirmation:
    def test_first_failure_confirms_immediately(self):
        tracker = HealthTracker(HealthPolicy())
        obs = tracker.observe_failure(1, HostHealthState.DOWN)
        assert obs.confirmed
        assert obs.state is HostHealthState.DOWN
        assert tracker.state_of(1) is HostHealthState.DOWN

    def test_no_suspect_state_ever_exists(self):
        tracker = HealthTracker(HealthPolicy())
        tracker.observe_failure(1, HostHealthState.UNREACHABLE)
        assert tracker.suspects() == {}

    def test_recovery_from_confirmed_is_silent(self):
        tracker = HealthTracker(HealthPolicy())
        tracker.observe_failure(1, HostHealthState.DOWN)
        assert tracker.observe_ok(1) == 0
        assert tracker.false_alarms_suppressed == 0
        assert tracker.state_of(1) is HostHealthState.UP


class TestConfirmationRounds:
    def test_single_failure_is_only_suspect(self):
        tracker = HealthTracker(HealthPolicy(confirm_rounds=2))
        obs = tracker.observe_failure(1, HostHealthState.DOWN)
        assert not obs.confirmed
        assert obs.state is HostHealthState.SUSPECT
        assert obs.streak == 1
        assert tracker.suspects() == {1: 1}

    def test_streak_reaching_policy_confirms(self):
        tracker = HealthTracker(HealthPolicy(confirm_rounds=3))
        assert not tracker.observe_failure(1, HostHealthState.DOWN).confirmed
        assert not tracker.observe_failure(1, HostHealthState.DOWN).confirmed
        obs = tracker.observe_failure(1, HostHealthState.DOWN)
        assert obs.confirmed
        assert obs.streak == 3

    def test_streak_spans_failure_kinds(self):
        # A host behind a dead switch that also stops answering is one
        # continuing outage; the current round's kind is reported.
        tracker = HealthTracker(HealthPolicy(confirm_rounds=2))
        tracker.observe_failure(1, HostHealthState.UNREACHABLE)
        obs = tracker.observe_failure(1, HostHealthState.DOWN)
        assert obs.confirmed
        assert obs.state is HostHealthState.DOWN

    def test_recovery_suppresses_false_alarm(self):
        tracker = HealthTracker(HealthPolicy(confirm_rounds=3))
        tracker.observe_failure(1, HostHealthState.DOWN)
        tracker.observe_failure(1, HostHealthState.DOWN)
        assert tracker.observe_ok(1) == 2
        assert tracker.false_alarms_suppressed == 1
        assert tracker.state_of(1) is HostHealthState.UP

    def test_recovery_resets_streak(self):
        tracker = HealthTracker(HealthPolicy(confirm_rounds=2))
        tracker.observe_failure(1, HostHealthState.DOWN)
        tracker.observe_ok(1)
        obs = tracker.observe_failure(1, HostHealthState.DOWN)
        assert not obs.confirmed
        assert obs.streak == 1

    def test_non_failure_kind_rejected(self):
        tracker = HealthTracker(HealthPolicy())
        with pytest.raises(ValueError):
            tracker.observe_failure(1, HostHealthState.SUSPECT)


class TestTrackerBookkeeping:
    def test_unknown_host_is_up(self):
        tracker = HealthTracker(HealthPolicy())
        assert tracker.state_of(42) is HostHealthState.UP

    def test_ok_on_unknown_host_is_noop(self):
        tracker = HealthTracker(HealthPolicy(confirm_rounds=2))
        assert tracker.observe_ok(42) == 0
        assert tracker.false_alarms_suppressed == 0

    def test_forget_drops_standing(self):
        tracker = HealthTracker(HealthPolicy(confirm_rounds=2))
        tracker.observe_failure(1, HostHealthState.DOWN)
        tracker.forget(1)
        assert tracker.state_of(1) is HostHealthState.UP
        assert tracker.suspects() == {}

    def test_hosts_are_independent(self):
        tracker = HealthTracker(HealthPolicy(confirm_rounds=2))
        tracker.observe_failure(1, HostHealthState.DOWN)
        obs = tracker.observe_failure(2, HostHealthState.DOWN)
        assert obs.streak == 1
        assert tracker.suspects() == {1: 1, 2: 1}
