"""Tests for the link-fault plan and partial-transfer accounting."""

import pytest

from repro.monitoring.transport import (
    MD5_LINE_BYTES,
    SENSOR_SAMPLE_BYTES,
    SSH_SESSION_OVERHEAD_BYTES,
    LinkFault,
    LinkFaultAction,
    LinkFaultPlan,
    LinkStorm,
    RsyncChannel,
    TransferLedger,
)


class TestLinkFaultValidation:
    def test_negative_round_rejected(self):
        with pytest.raises(ValueError):
            LinkFault(1, -1, LinkFaultAction.SSH_TIMEOUT)

    def test_zero_attempts_rejected(self):
        with pytest.raises(ValueError):
            LinkFault(1, 0, LinkFaultAction.SSH_TIMEOUT, attempts=0)

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            LinkFault(1, 0, LinkFaultAction.PARTIAL_TRANSFER, fraction=1.5)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            LinkFault(1, 0, LinkFaultAction.SLOW_SESSION, delay_s=-1.0)

    def test_storm_probability_bounds(self):
        with pytest.raises(ValueError):
            LinkStorm(probability=1.5)

    def test_storm_window_order(self):
        with pytest.raises(ValueError):
            LinkStorm(probability=0.5, first_round=10, last_round=5)


class TestLinkFaultPlan:
    def test_empty_plan_is_falsy(self):
        assert not LinkFaultPlan()
        assert LinkFaultPlan.of(LinkFault(1, 0, LinkFaultAction.SSH_TIMEOUT))
        assert LinkFaultPlan(storm=LinkStorm(probability=0.1))

    def test_lookup_matches_host_round_attempt(self):
        fault = LinkFault(5, 3, LinkFaultAction.SSH_TIMEOUT, attempts=2)
        plan = LinkFaultPlan.of(fault)
        assert plan.lookup(5, 3, 1) is fault
        assert plan.lookup(5, 3, 2) is fault
        assert plan.lookup(5, 3, 3) is None  # retries past the window win
        assert plan.lookup(5, 4, 1) is None
        assert plan.lookup(6, 3, 1) is None

    def test_explicit_fault_wins_over_storm(self):
        explicit = LinkFault(1, 0, LinkFaultAction.PARTIAL_TRANSFER)
        plan = LinkFaultPlan(
            faults=(explicit,),
            storm=LinkStorm(probability=1.0, action=LinkFaultAction.SSH_TIMEOUT),
        )
        assert plan.lookup(1, 0, 1) is explicit
        storm_fault = plan.lookup(2, 0, 1)
        assert storm_fault is not None
        assert storm_fault.action is LinkFaultAction.SSH_TIMEOUT


class TestLinkStorm:
    def test_deterministic_replay(self):
        a = LinkStorm(probability=0.3, seed=9)
        b = LinkStorm(probability=0.3, seed=9)
        hits_a = [(h, r) for h in range(8) for r in range(50) if a.fault_for(h, r)]
        hits_b = [(h, r) for h in range(8) for r in range(50) if b.fault_for(h, r)]
        assert hits_a == hits_b
        assert hits_a  # a 30 % storm over 400 coins strikes

    def test_coins_are_independent_per_host(self):
        # One host's draw never shifts another's: querying host 1 in any
        # order leaves host 2's outcomes untouched.
        storm = LinkStorm(probability=0.5, seed=1)
        before = [bool(storm.fault_for(2, r)) for r in range(40)]
        for r in range(40):
            storm.fault_for(1, r)
        after = [bool(storm.fault_for(2, r)) for r in range(40)]
        assert before == after

    def test_window_and_host_filter(self):
        storm = LinkStorm(
            probability=1.0, first_round=5, last_round=6, host_ids=(3,)
        )
        assert storm.fault_for(3, 4) is None
        assert storm.fault_for(3, 5) is not None
        assert storm.fault_for(3, 6) is not None
        assert storm.fault_for(3, 7) is None
        assert storm.fault_for(4, 5) is None

    def test_storm_fault_carries_parameters(self):
        storm = LinkStorm(
            probability=1.0,
            action=LinkFaultAction.PARTIAL_TRANSFER,
            fraction=0.25,
            attempts=2,
        )
        fault = storm.fault_for(1, 0)
        assert fault.action is LinkFaultAction.PARTIAL_TRANSFER
        assert fault.fraction == 0.25
        assert fault.attempts == 2


class TestParse:
    def test_parse_storm(self):
        plan = LinkFaultPlan.parse("storm:0.25:seed=3:attempts=2:from=1:to=9")
        assert plan.storm.probability == 0.25
        assert plan.storm.seed == 3
        assert plan.storm.attempts == 2
        assert plan.storm.first_round == 1
        assert plan.storm.last_round == 9
        assert plan.faults == ()

    def test_parse_explicit_faults(self):
        plan = LinkFaultPlan.parse("5:12:partial:fraction=0.3,7:2:slow:delay=30")
        assert len(plan.faults) == 2
        first, second = plan.faults
        assert (first.host_id, first.round_index) == (5, 12)
        assert first.action is LinkFaultAction.PARTIAL_TRANSFER
        assert first.fraction == 0.3
        assert second.action is LinkFaultAction.SLOW_SESSION
        assert second.delay_s == 30.0

    def test_parse_mixed_clauses(self):
        plan = LinkFaultPlan.parse("storm:0.1,1:0:ssh-timeout")
        assert plan.storm is not None
        assert len(plan.faults) == 1

    def test_parse_rejects_bad_action(self):
        with pytest.raises(ValueError):
            LinkFaultPlan.parse("1:0:teleport")

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(ValueError):
            LinkFaultPlan.parse("1:0:partial:seed=3")  # seed is storm-only

    def test_parse_rejects_second_storm(self):
        with pytest.raises(ValueError):
            LinkFaultPlan.parse("storm:0.1,storm:0.2")

    def test_parse_rejects_short_clause(self):
        with pytest.raises(ValueError):
            LinkFaultPlan.parse("5:12")


class TestPartialTransfer:
    def test_cap_moves_whole_record_prefix(self):
        chan = RsyncChannel(host_id=1)
        # 4 md5 lines + 3 samples pending; the cap fits 3 whole lines
        # (md5 first) with 74 bytes left over -- too small for a sample,
        # and partial records never move.
        cap = 2 * MD5_LINE_BYTES + 1 * SENSOR_SAMPLE_BYTES + 10
        record = chan.sync(0.0, 4, 3, max_payload_bytes=cap)
        assert record.new_md5_lines == 3
        assert record.new_sensor_samples == 0
        assert not record.complete

    def test_md5_lines_transfer_first(self):
        chan = RsyncChannel(host_id=1)
        record = chan.sync(0.0, 3, 5, max_payload_bytes=3 * MD5_LINE_BYTES)
        assert record.new_md5_lines == 3
        assert record.new_sensor_samples == 0

    def test_backlog_carries_to_next_session(self):
        chan = RsyncChannel(host_id=1)
        chan.sync(0.0, 4, 3, max_payload_bytes=MD5_LINE_BYTES)
        record = chan.sync(1200.0, 4, 3)
        assert record.new_md5_lines == 3
        assert record.new_sensor_samples == 3
        assert record.complete

    def test_conservation_with_interruptions(self):
        # However the sessions are chopped, payload bytes are conserved:
        # the difference from an uninterrupted twin is session overheads.
        faulty = RsyncChannel(host_id=1)
        clean = RsyncChannel(host_id=1)
        faulty.sync(0.0, 10, 6, max_payload_bytes=2 * MD5_LINE_BYTES)
        faulty.sync(1200.0, 12, 7, max_payload_bytes=0)
        faulty.sync(2400.0, 14, 8)
        clean.sync(2400.0, 14, 8)
        extra_sessions = faulty.sessions - clean.sessions
        assert faulty.total_bytes == (
            clean.total_bytes + extra_sessions * SSH_SESSION_OVERHEAD_BYTES
        )

    def test_zero_cap_moves_only_overhead(self):
        chan = RsyncChannel(host_id=1)
        record = chan.sync(0.0, 5, 5, max_payload_bytes=0)
        assert record.bytes_moved == SSH_SESSION_OVERHEAD_BYTES
        assert not record.complete

    def test_negative_cap_rejected(self):
        chan = RsyncChannel(host_id=1)
        with pytest.raises(ValueError):
            chan.sync(0.0, 1, 1, max_payload_bytes=-1)

    def test_ledger_counts_partial_sessions(self):
        ledger = TransferLedger()
        ledger.record_sync(0.0, 1, 5, 5, max_payload_bytes=0)
        ledger.record_sync(0.0, 2, 5, 5)
        assert ledger.partial_sessions == 1

    def test_full_cap_is_complete(self):
        chan = RsyncChannel(host_id=1)
        cap = 5 * MD5_LINE_BYTES + 5 * SENSOR_SAMPLE_BYTES
        record = chan.sync(0.0, 5, 5, max_payload_bytes=cap)
        assert record.complete


class TestLedgerRunningTotals:
    def test_totals_match_recomputation(self):
        ledger = TransferLedger()
        ledger.record_sync(0.0, 1, 5, 2)
        ledger.record_sync(0.0, 2, 3, 2)
        ledger.record_sync(1200.0, 1, 9, 4, max_payload_bytes=2 * MD5_LINE_BYTES)
        ledger.record_sync(2400.0, 1, 9, 4)
        assert ledger.total_bytes == sum(r.bytes_moved for r in ledger.records)
        for host_id in (1, 2, 99):
            assert ledger.bytes_for_host(host_id) == sum(
                r.bytes_moved for r in ledger.records if r.host_id == host_id
            )
