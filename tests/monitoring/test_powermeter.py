"""Tests for the Technoline Cost Control power meter."""

import pytest

from repro.climate.generator import WeatherGenerator
from repro.climate.profiles import HELSINKI_2010
from repro.hardware.faults import TransientFaultModel
from repro.hardware.host import Host
from repro.hardware.vendors import VENDOR_A
from repro.monitoring.powermeter import TechnolineCostControl
from repro.sim.clock import HOUR, MINUTE, SimClock
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.thermal.enclosure import BasementMachineRoom


def make_hosts(n):
    weather = WeatherGenerator(HELSINKI_2010, RngStreams(1))
    basement = BasementMachineRoom("basement", weather)
    basement.advance(SimClock().at(2010, 2, 19))
    hosts = []
    for i in range(n):
        host = Host(
            i + 1, VENDOR_A, RngStreams(1),
            transient_model=TransientFaultModel(base_rate_per_hour=0.0),
        )
        host.install(basement, 0.0)
        hosts.append(host)
    return hosts


def make_meter(hosts, **kwargs):
    kwargs.setdefault("streams", RngStreams(1))
    meter = TechnolineCostControl(**kwargs)
    for host in hosts:
        meter.plug_in(host)
    return meter


class TestReadings:
    def test_sums_plugged_hosts(self):
        meter = make_meter(make_hosts(3))
        assert meter.true_draw_w() == pytest.approx(3 * VENDOR_A.idle_power_w)

    def test_displayed_reading_close_to_truth(self):
        meter = make_meter(make_hosts(3))
        reading = meter.sample(time=0.0)
        assert reading.watts == pytest.approx(meter.true_draw_w(), rel=0.10)

    def test_reading_quantized_to_whole_watts(self):
        meter = make_meter(make_hosts(2))
        reading = meter.sample(time=0.0)
        assert reading.watts == round(reading.watts)

    def test_down_host_draws_nothing(self):
        hosts = make_hosts(1)
        meter = make_meter(hosts)
        hosts[0].retire(0.0)
        assert meter.true_draw_w() == 0.0

    def test_starts_empty(self):
        meter = TechnolineCostControl(RngStreams(1))
        assert meter.hosts == []
        assert meter.true_draw_w() == 0.0

    def test_plug_in_adds_once(self):
        hosts = make_hosts(2)
        meter = make_meter(hosts[:1])
        meter.plug_in(hosts[1])
        meter.plug_in(hosts[1])
        assert len(meter.hosts) == 2


class TestEnergyIntegration:
    def test_energy_accrues_between_samples(self):
        meter = make_meter(make_hosts(1), relative_error_std=0.0)  # ~70 W idle
        meter.sample(time=0.0)
        meter.sample(time=HOUR)
        assert meter.energy_kwh == pytest.approx(VENDOR_A.idle_power_w / 1000.0, rel=0.02)

    def test_first_sample_accrues_nothing(self):
        meter = make_meter(make_hosts(1))
        meter.sample(time=0.0)
        assert meter.energy_kwh == 0.0


class TestPeriodicSampling:
    def test_attach_samples_on_cadence(self):
        sim = Simulator()
        meter = make_meter(make_hosts(1), period_s=10 * MINUTE)
        meter.attach(sim, start=0.0)
        sim.run_until(HOUR)
        assert len(meter.readings) == 7

    def test_attach_twice_rejected(self):
        sim = Simulator()
        meter = TechnolineCostControl(RngStreams(1))
        meter.attach(sim)
        with pytest.raises(RuntimeError):
            meter.attach(sim)

    def test_detach_stops(self):
        sim = Simulator()
        meter = make_meter(make_hosts(1), period_s=10 * MINUTE)
        meter.attach(sim, start=0.0)
        sim.run_until(HOUR)
        meter.detach()
        count = len(meter.readings)
        sim.run_until(2 * HOUR)
        assert len(meter.readings) == count

    def test_mean_draw(self):
        meter = make_meter(make_hosts(2))
        assert meter.mean_draw_w() == 0.0
        meter.sample(0.0)
        meter.sample(600.0)
        assert meter.mean_draw_w() == pytest.approx(2 * VENDOR_A.idle_power_w, rel=0.10)

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            TechnolineCostControl(period_s=0.0)
