"""Tests for typed log records and the line format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monitoring.records import (
    HashRecord,
    LoggerRecord,
    SensorRecord,
    parse_line,
    to_line,
)


class TestRoundTrips:
    def test_sensor_record(self):
        record = SensorRecord(time=1200.0, host_id=15, cpu_temp_c=-4.25)
        parsed = parse_line(to_line(record))
        assert isinstance(parsed, SensorRecord)
        assert parsed.host_id == 15
        assert parsed.cpu_temp_c == pytest.approx(-4.25)

    def test_sensor_record_with_absent_chip(self):
        record = SensorRecord(time=1200.0, host_id=1, cpu_temp_c=None)
        parsed = parse_line(to_line(record))
        assert parsed.cpu_temp_c is None

    def test_logger_record(self):
        record = LoggerRecord(time=60.0, temp_c=-9.5, rh_percent=87.5)
        parsed = parse_line(to_line(record))
        assert isinstance(parsed, LoggerRecord)
        assert parsed.temp_c == pytest.approx(-9.5)
        assert parsed.rh_percent == pytest.approx(87.5)

    def test_hash_record_ok_and_mismatch(self):
        ok = parse_line(to_line(HashRecord(time=0.0, host_id=3, hash_ok=True)))
        bad = parse_line(to_line(HashRecord(time=0.0, host_id=3, hash_ok=False)))
        assert ok.hash_ok and not bad.hash_ok

    @given(
        time=st.floats(min_value=0.0, max_value=1e8),
        host_id=st.integers(min_value=0, max_value=99),
        temp=st.one_of(st.none(), st.floats(min_value=-120.0, max_value=120.0)),
    )
    @settings(max_examples=100, deadline=None)
    def test_sensor_roundtrip_property(self, time, host_id, temp):
        record = SensorRecord(time=time, host_id=host_id, cpu_temp_c=temp)
        parsed = parse_line(to_line(record))
        assert parsed.host_id == host_id
        assert parsed.time == pytest.approx(time, abs=0.06)
        if temp is None:
            assert parsed.cpu_temp_c is None
        else:
            assert parsed.cpu_temp_c == pytest.approx(temp, abs=0.006)


class TestMalformedInput:
    def test_empty_line_rejected(self):
        with pytest.raises(ValueError):
            parse_line("")

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError):
            parse_line("mystery\t1\t2")

    def test_wrong_field_count_rejected(self):
        with pytest.raises(ValueError):
            parse_line("sensor\t100.0\t15")

    def test_non_numeric_field_rejected(self):
        with pytest.raises(ValueError):
            parse_line("logger\tabc\t1.0\t2.0")

    def test_bad_hash_verdict_rejected(self):
        with pytest.raises(ValueError):
            parse_line("hash\t0.0\t3\tmaybe")

    def test_unknown_record_type_to_line(self):
        with pytest.raises(TypeError):
            to_line(object())  # type: ignore[arg-type]
