"""Tests for the SSH/rsync transfer model."""

import pytest

from repro.monitoring.transport import (
    MD5_LINE_BYTES,
    SENSOR_SAMPLE_BYTES,
    SSH_SESSION_OVERHEAD_BYTES,
    RsyncChannel,
    TransferLedger,
    TransferRecord,
)


class TestRsyncChannel:
    def test_first_sync_moves_everything(self):
        chan = RsyncChannel(host_id=3)
        record = chan.sync(0.0, produced_md5_lines=10, produced_sensor_samples=5)
        assert record.new_md5_lines == 10
        assert record.new_sensor_samples == 5
        assert record.bytes_moved == (
            10 * MD5_LINE_BYTES + 5 * SENSOR_SAMPLE_BYTES + SSH_SESSION_OVERHEAD_BYTES
        )

    def test_incremental_sync_moves_only_deltas(self):
        chan = RsyncChannel(host_id=3)
        chan.sync(0.0, 10, 5)
        record = chan.sync(1200.0, 12, 6)
        assert record.new_md5_lines == 2
        assert record.new_sensor_samples == 1

    def test_idle_sync_costs_only_overhead(self):
        # rsync with nothing new still opens a session.
        chan = RsyncChannel(host_id=3)
        chan.sync(0.0, 10, 5)
        record = chan.sync(1200.0, 10, 5)
        assert record.bytes_moved == SSH_SESSION_OVERHEAD_BYTES

    def test_backlog_carried_after_missed_rounds(self):
        # A dead switch skips rounds; the next success carries the backlog.
        chan = RsyncChannel(host_id=3)
        chan.sync(0.0, 2, 1)
        # Rounds at t=1200, 2400 missed; host kept producing.
        record = chan.sync(3600.0, 8, 4)
        assert record.new_md5_lines == 6
        assert record.new_sensor_samples == 3

    def test_pending_preview(self):
        chan = RsyncChannel(host_id=3)
        chan.sync(0.0, 2, 1)
        assert chan.pending(4, 2) == 2 * MD5_LINE_BYTES + 1 * SENSOR_SAMPLE_BYTES

    def test_production_counts_cannot_regress(self):
        chan = RsyncChannel(host_id=3)
        chan.sync(0.0, 10, 5)
        with pytest.raises(ValueError):
            chan.sync(1.0, 9, 5)

    def test_totals_accumulate(self):
        chan = RsyncChannel(host_id=3)
        chan.sync(0.0, 1, 1)
        chan.sync(1.0, 2, 2)
        assert chan.sessions == 2
        assert chan.total_bytes > 2 * SSH_SESSION_OVERHEAD_BYTES


class TestTransferLedger:
    def test_channels_are_per_host(self):
        ledger = TransferLedger()
        assert ledger.channel(1) is ledger.channel(1)
        assert ledger.channel(1) is not ledger.channel(2)

    def test_record_sync_aggregates(self):
        ledger = TransferLedger()
        ledger.record_sync(0.0, 1, 5, 2)
        ledger.record_sync(0.0, 2, 3, 2)
        ledger.record_sync(1200.0, 1, 6, 3)
        assert ledger.total_sessions == 3
        assert ledger.bytes_for_host(1) > ledger.bytes_for_host(2)
        assert ledger.mean_session_bytes() == pytest.approx(
            ledger.total_bytes / 3
        )

    def test_empty_ledger(self):
        ledger = TransferLedger()
        assert ledger.total_bytes == 0
        assert ledger.mean_session_bytes() == 0.0

    def test_record_validation(self):
        with pytest.raises(ValueError):
            TransferRecord(0.0, 1, new_md5_lines=-1, new_sensor_samples=0, bytes_moved=0)


class TestExperimentIntegration:
    def test_transfers_wired_into_the_run(self, short_results):
        transfers = short_results.transfers
        assert transfers is not None
        assert transfers.total_sessions > 100
        assert transfers.total_bytes > transfers.total_sessions * SSH_SESSION_OVERHEAD_BYTES

    def test_md5_lines_match_workload_runs(self, short_results):
        # Every completed run's md5sum eventually crosses the wire.
        transfers = short_results.transfers
        ledger = short_results.ledger
        for host_id, runs in ledger.runs_per_host.items():
            moved = sum(
                r.new_md5_lines for r in transfers.records if r.host_id == host_id
            )
            # The final few runs may still be pending at campaign end.
            assert runs - 3 <= moved <= runs
