"""Tests for the terrace webcam model."""

import numpy as np
import pytest

from repro.climate.generator import WeatherGenerator
from repro.climate.profiles import HELSINKI_2010
from repro.monitoring.webcam import TerraceWebcam, WebcamFrame
from repro.sim.clock import DAY, HOUR, SimClock
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams


@pytest.fixture(scope="module")
def weather():
    return WeatherGenerator(HELSINKI_2010, RngStreams(23))


class TestFrames:
    def test_night_frames_are_dark(self, weather):
        cam = TerraceWebcam(weather, RngStreams(23))
        frame = cam.capture(SimClock().at(2010, 2, 20, 2, 0))
        assert frame.night
        assert frame.brightness < 0.05

    def test_spring_noon_is_bright(self, weather):
        cam = TerraceWebcam(weather, RngStreams(23))
        # Scan a week of noons: at least one mostly-clear noon is bright.
        brightest = 0.0
        for day in range(7):
            t = SimClock().at(2010, 4, 20 + day, 12, 0)
            brightest = max(brightest, cam.capture(t).brightness)
        assert brightest > 0.5

    def test_brightness_tracks_solar_series(self, weather):
        # Cross-validation: the camera is an independent solar instrument.
        cam = TerraceWebcam(weather, RngStreams(23))
        clock = SimClock()
        times = np.arange(clock.at(2010, 3, 1), clock.at(2010, 3, 8), HOUR)
        for t in times:
            cam.capture(float(t))
        solar = np.asarray(weather.solar_irradiance(times))
        brightness = cam.brightness_series()
        correlation = np.corrcoef(solar, brightness)[0, 1]
        assert correlation > 0.9

    def test_frame_validation(self):
        with pytest.raises(ValueError):
            WebcamFrame(time=0.0, brightness=1.5, snowing=False, tent_snow_cover=0.0)
        with pytest.raises(ValueError):
            WebcamFrame(time=0.0, brightness=0.5, snowing=False, tent_snow_cover=-0.1)


class TestSnowCover:
    def test_snowfall_accumulates_cover(self, weather):
        cam = TerraceWebcam(weather, RngStreams(23))
        clock = SimClock()
        t = clock.at(2010, 2, 19)
        snowy_frames = 0
        while t < clock.at(2010, 3, 19) and snowy_frames < 5:
            frame = cam.capture(t)
            if frame.snowing:
                snowy_frames += 1
            t += HOUR
        if snowy_frames == 0:
            pytest.skip("no snowfall at this seed")
        assert max(f.tent_snow_cover for f in cam.frames) > 0.0

    def test_cover_bounded(self, weather):
        cam = TerraceWebcam(weather, RngStreams(23))
        clock = SimClock()
        t = clock.at(2010, 2, 12)
        while t < clock.at(2010, 4, 12):
            frame = cam.capture(t)
            assert 0.0 <= frame.tent_snow_cover <= 1.0
            t += 3 * HOUR

    def test_warm_sunny_days_melt_the_cover(self, weather):
        cam = TerraceWebcam(weather, RngStreams(23))
        cam._snow_cover = 1.0
        cam._last_time = SimClock().at(2010, 4, 25, 8, 0)
        t = SimClock().at(2010, 4, 25, 9, 0)
        for _ in range(48):
            frame = cam.capture(t)
            t += HOUR
        assert frame.tent_snow_cover < 0.5


class TestAttachment:
    def test_hourly_cadence(self, weather):
        sim = Simulator()
        start = SimClock().at(2010, 2, 19)
        sim.run_until(start)
        cam = TerraceWebcam(weather, RngStreams(23))
        cam.attach(sim)
        sim.run_until(start + DAY)
        assert len(cam.frames) == 25  # inclusive endpoints

    def test_attach_twice_rejected(self, weather):
        sim = Simulator()
        cam = TerraceWebcam(weather, RngStreams(23))
        cam.attach(sim)
        with pytest.raises(RuntimeError):
            cam.attach(sim)

    def test_daylight_fraction_reasonable_for_march(self, weather):
        sim = Simulator()
        start = SimClock().at(2010, 3, 1)
        sim.run_until(start)
        cam = TerraceWebcam(weather, RngStreams(23))
        cam.attach(sim)
        sim.run_until(start + 7 * DAY)
        # Helsinki in March: roughly 11 hours of usable light.
        assert 0.25 < cam.daylight_fraction() < 0.75
