"""The chaos plane through the paper campaign: census, kill-and-resume.

The tentpole's hardest promise lives here: a campaign killed in the
*middle of an active outage* -- shed hosts, CRAC down, trip latched --
and resumed cold from disk must finish byte-identical to the straight
run, on both fleet backends.  And a campaign built with an *empty* plan
must not merely be close to the plain seed-7 run: it must reproduce the
pinned record digest exactly, because no plant is constructed at all.

The fault plan below keeps a five-day compound outage (full intake
blockage plus CRAC loss from day 1) in force across every checkpoint
cut, and the deliberately hair-trigger trip policy guarantees the cut
we resume from has latched trips and shed hosts in flight.
"""

import datetime as dt
import hashlib
import os

import pytest

from repro.analysis.survival import SurvivalCensus
from repro.core.builder import Campaign, CampaignBuilder
from repro.core.config import ExperimentConfig
from repro.plant.faults import PlantFaultPlan
from repro.plant.trip import ThermalTripPolicy
from repro.runner.records import record_from_results
from repro.sim import events as ev
from repro.sim.events import EventRecorder

PLAN = "intake:blockage@day1,repair=5d,severity=1.0; crac:outage@day1,repair=5d"
POLICY = "trip=10,clear=4,shed=0.5+1.0,hold=30m,cooldown=12h"
#: Eight days past test_start (2010-02-19 12:00) -- the outage spans
#: days 1..6 of the test window, so every interior cut is mid-incident.
UNTIL = dt.datetime(2010, 2, 27, 12, 0)
EVERY = 2 * 86_400.0
#: The cut verified to land mid-outage: shed hosts and an active CRAC
#: fault both in force at restore time (asserted below, not assumed).
MID_OUTAGE_CUT = 3


def _chaos_builder(backend="columnar"):
    return (
        CampaignBuilder(ExperimentConfig(seed=7))
        .with_fleet_backend(backend)
        .with_plant_faults(PlantFaultPlan.parse(PLAN))
        .with_trip_policy(ThermalTripPolicy.parse(POLICY))
    )


def _record_json(results):
    return record_from_results(7, results, until=UNTIL).canonical_json()


class TestChaosCampaign:
    @pytest.fixture(scope="class")
    def straight(self):
        campaign = _chaos_builder().build()
        recorder = EventRecorder()
        recorder.attach(campaign.bus)
        results = campaign.run(until=UNTIL)
        return campaign, recorder, results

    def test_census_counts_the_incident(self, straight):
        campaign, _, _ = straight
        census = SurvivalCensus.from_campaign(campaign)
        assert census.faults_injected == 2
        assert census.faults_repaired == 2
        assert census.trips > 0
        assert census.hosts_shed > 0
        assert census.host_hours_shed > 0.0
        assert census.excursion_minutes > 0.0

    def test_events_match_the_census(self, straight):
        campaign, recorder, _ = straight
        census = SurvivalCensus.from_campaign(campaign)
        assert len(recorder.of_type(ev.PlantFaultInjected)) == 2
        assert len(recorder.of_type(ev.PlantFaultRepaired)) == 2
        assert len(recorder.of_type(ev.ThermalTrip)) == census.trips
        shed = recorder.of_type(ev.LoadShed)
        assert sum(e.hosts for e in shed) == census.hosts_shed

    def test_chaos_changes_the_record(self, straight):
        _, _, results = straight
        plain = CampaignBuilder(ExperimentConfig(seed=7)).build().run(until=UNTIL)
        assert _record_json(results) != _record_json(plain)


class TestKillAndResumeMidOutage:
    @pytest.mark.parametrize("backend", ["object", "columnar"])
    def test_resume_is_byte_identical(self, backend, tmp_path):
        straight_campaign = _chaos_builder(backend).build()
        straight = straight_campaign.run(until=UNTIL)

        campaign = _chaos_builder(backend).build()
        campaign.run(
            until=UNTIL, checkpoint_every=EVERY, checkpoint_dir=str(tmp_path)
        )
        assert len(campaign.checkpoints_written) > MID_OUTAGE_CUT

        from repro.state.checkpoint import read_checkpoint

        snapshot = read_checkpoint(campaign.checkpoints_written[MID_OUTAGE_CUT])
        mid = Campaign.restore(snapshot)
        # The cut really was mid-incident: hosts shed, CRAC still down.
        assert mid.plant is not None
        assert mid.plant.shed_host_count() > 0
        assert mid.plant.crac_until > mid.sim.now
        # The plan and policy rode inside the checkpoint.
        assert mid._plant_faults == PlantFaultPlan.parse(PLAN)
        assert mid._trip_policy == ThermalTripPolicy.parse(POLICY)

        results = mid.continue_run(until=UNTIL)
        assert _record_json(results) == _record_json(straight)
        assert mid.plant.census == straight_campaign.plant.census


class TestEmptyPlanDigest:
    def test_disarmed_plane_keeps_the_pinned_seed7_digest(self):
        until = dt.datetime(2010, 3, 6, 12, 0)
        campaign = (
            CampaignBuilder(ExperimentConfig(seed=7))
            .with_plant_faults(PlantFaultPlan.parse(""))
            .build()
        )
        assert campaign.plant is None
        results = campaign.run(until=until)
        record = record_from_results(7, results, until=until).canonical_json()
        pin_path = os.path.join(
            os.path.dirname(__file__), "..", "data", "seed7_record.sha256"
        )
        with open(pin_path) as fh:
            pinned = fh.read().split()[0]
        actual = hashlib.sha256(record.encode("utf-8")).hexdigest()
        assert actual == pinned, (
            "an empty plant plan perturbed the seed-7 paper record"
        )
