"""The plant fault plan: grammar, storm determinism, physics helpers."""

import pytest

from repro.plant.faults import (
    DEFAULT_REPAIR_S,
    AIRFLOW_FLOOR,
    PlantFault,
    PlantFaultKind,
    PlantFaultPlan,
    PlantStorm,
    airflow_factors,
)
from repro.state.codec import decode_value, encode_value


class TestGrammar:
    def test_empty_plan_is_falsy(self):
        assert not PlantFaultPlan.parse("")
        assert not PlantFaultPlan.parse("  ;  ; ")
        assert not PlantFaultPlan()

    def test_single_crac_outage(self):
        plan = PlantFaultPlan.parse("crac:outage@day3,repair=6h")
        assert plan
        (fault,) = plan.faults
        assert fault.kind is PlantFaultKind.CRAC_OUTAGE
        assert fault.start_day == 3.0
        assert fault.repair_s == 6 * 3600.0
        assert fault.severity == 1.0

    def test_every_component_parses(self):
        plan = PlantFaultPlan.parse(
            "fan:failure@day1,pod=4; crac:outage@day2; "
            "intake:blockage@36h,severity=0.8; heater:loss@day5; "
            "feed:drop@day4,feed=1"
        )
        kinds = [f.kind for f in plan.faults]
        assert kinds == [
            PlantFaultKind.FAN_FAILURE,
            PlantFaultKind.INTAKE_BLOCKAGE,
            PlantFaultKind.CRAC_OUTAGE,
            PlantFaultKind.FEED_DROP,
            PlantFaultKind.HEATER_LOSS,
        ]  # sorted by start_day: day1, 1.5, 2, 4, 5

    def test_when_forms_agree(self):
        by_day = PlantFaultPlan.parse("crac:outage@day1.5").faults[0]
        by_duration = PlantFaultPlan.parse("crac:outage@36h").faults[0]
        assert by_day.start_day == by_duration.start_day == 1.5

    def test_default_repair_per_kind(self):
        for clause, kind in (
            ("fan:failure@day1", PlantFaultKind.FAN_FAILURE),
            ("feed:drop@day1", PlantFaultKind.FEED_DROP),
        ):
            fault = PlantFaultPlan.parse(clause).faults[0]
            assert fault.repair_s == DEFAULT_REPAIR_S[kind]

    def test_storm_clause(self):
        plan = PlantFaultPlan.parse("storm:fan:0.25,seed=11,from=2,to=40")
        (storm,) = plan.storms
        assert storm.kind is PlantFaultKind.FAN_FAILURE
        assert storm.rate_per_day == 0.25
        assert storm.seed == 11
        assert storm.first_day == 2.0
        assert storm.last_day == 40.0

    @pytest.mark.parametrize(
        "bad",
        [
            "crac:outage",  # missing @when
            "pump:outage@day1",  # unknown component
            "crac:outage@soon",  # bad when
            "crac:outage@day1,repair=-3h",  # negative duration
            "crac:outage@day1,nonsense=1",  # unknown option
            "intake:blockage@day1,severity=1.5",  # severity out of range
            "storm:crac:2.0",  # rate out of range
            "storm:fan:0.1,from=5,to=2",  # inverted window
        ],
    )
    def test_bad_clauses_raise(self, bad):
        with pytest.raises(ValueError):
            PlantFaultPlan.parse(bad)


class TestStormDeterminism:
    def test_fault_for_is_pure(self):
        storm = PlantStorm(PlantFaultKind.FAN_FAILURE, rate_per_day=0.5, seed=3)
        draws = [storm.fault_for(2, 7) for _ in range(5)]
        assert all(d == draws[0] for d in draws)

    def test_different_domains_decorrelate(self):
        storm = PlantStorm(PlantFaultKind.FAN_FAILURE, rate_per_day=0.5, seed=3)
        outcomes = {
            domain: storm.fault_for(domain, 10) is not None
            for domain in range(40)
        }
        assert len(set(outcomes.values())) == 2  # some hit, some spared

    def test_rate_one_always_strikes_inside_window(self):
        storm = PlantStorm(
            PlantFaultKind.INTAKE_BLOCKAGE, rate_per_day=1.0, seed=0,
            first_day=3.0, last_day=5.0,
        )
        assert storm.fault_for(0, 2) is None
        assert storm.fault_for(0, 6) is None
        fault = storm.fault_for(0, 4)
        assert fault is not None
        assert 4.0 <= fault.start_day < 5.0
        assert fault.pod == 0
        # Repair jitter stays within the documented band.
        assert 0.5 * storm.repair_s <= fault.repair_s <= 1.5 * storm.repair_s

    def test_independent_of_global_random_state(self):
        import random as _random

        storm = PlantStorm(PlantFaultKind.FEED_DROP, rate_per_day=0.5, seed=9)
        first = storm.fault_for(1, 3)
        _random.seed(12345)
        _random.random()
        assert storm.fault_for(1, 3) == first


class TestAirflowFactors:
    def test_healthy_is_identity(self):
        assert airflow_factors(0.0, 0.0, False) == (1.0, 1.0)

    def test_blockage_reduces_both(self):
        ua, ach = airflow_factors(0.0, 1.0, False)
        assert ua < 1.0 and ach < 1.0

    def test_flap_recovers_airflow(self):
        blocked = airflow_factors(0.0, 1.0, False)
        flapped = airflow_factors(0.0, 1.0, True)
        assert flapped[0] > blocked[0]
        assert flapped[1] > blocked[1]

    def test_floor_holds_under_compound_failure(self):
        ua, ach = airflow_factors(1.0, 1.0, False)
        assert ua >= AIRFLOW_FLOOR
        assert ach >= AIRFLOW_FLOOR


class TestCheckpointCodec:
    def test_plan_roundtrips_through_codec(self):
        plan = PlantFaultPlan.parse(
            "crac:outage@day3,repair=6h; fan:failure@day2,pod=4; "
            "storm:intake:0.1,seed=3,from=2,to=40"
        )
        assert decode_value(encode_value(plan)) == plan

    def test_fault_roundtrips(self):
        fault = PlantFault(
            PlantFaultKind.HEATER_LOSS, start_day=5.0, severity=0.7
        )
        assert decode_value(encode_value(fault)) == fault
