"""The vectorized chaos plane at fleet scale.

Covers the acceptance surfaces: an empty plan leaves the cohort
bit-for-bit unperturbed, a seeded plan reproduces an identical survival
census run-to-run, faults have physical consequences (basement drift,
airflow loss, feed sheds), protective trips shed and restore load, and
the per-pod plant state round-trips through its state dict.
"""

import numpy as np
import pytest

from repro.core.config import ExperimentConfig
from repro.core.fleetscale import FleetScaleCampaign
from repro.plant.faults import PlantFaultKind, PlantFaultPlan
from repro.plant.fleet import FleetPlant
from repro.plant.trip import ThermalTripPolicy
from repro.sim import events as ev

HOSTS = 190  # 10 pods; enough for a feed group plus spares

CHAOS_PLAN = (
    "crac:outage@day1,repair=12h; "
    "intake:blockage@day2,repair=18h,severity=1.0"
)
# Above the fleet's fault-free intake peak, below the blockage peak:
# trips fire only while the physics is actually degraded.
CHAOS_POLICY = "trip=42,clear=34"


def _chaos_campaign(plan=CHAOS_PLAN, policy=CHAOS_POLICY, hosts=HOSTS, **kw):
    return FleetScaleCampaign(
        hosts,
        ExperimentConfig(seed=7),
        plant_faults=PlantFaultPlan.parse(plan) if plan is not None else None,
        trip_policy=ThermalTripPolicy.parse(policy) if policy else None,
        **kw,
    )


class TestEmptyPlanIsFree:
    def test_no_plant_is_constructed(self):
        campaign = _chaos_campaign(plan="", policy=None)
        assert campaign.plant is None
        assert campaign.plant_events is None
        assert campaign.plant_census() is None

    def test_summary_identical_to_plain_campaign(self):
        plain = FleetScaleCampaign(HOSTS, ExperimentConfig(seed=7))
        disarmed = _chaos_campaign(plan="", policy=None)
        plain.run(5.0)
        disarmed.run(5.0)
        assert plain.summary() == disarmed.summary()


class TestPhysicalConsequences:
    def test_crac_outage_drifts_the_basement(self):
        plain = FleetScaleCampaign(
            HOSTS, ExperimentConfig(seed=7), record_series=True
        )
        chaos = _chaos_campaign(
            plan="crac:outage@day1,repair=12h", policy=None,
            record_series=True,
        )
        plain.run(2.0)
        chaos.run(2.0)
        plain_basement = plain.series.values("basement_c")
        chaos_basement = chaos.series.values("basement_c")
        # Healthy CRAC holds a tight band around 21 degC; the outage
        # lets the basement leave it (toward outside in a Finnish
        # February, i.e. it gets cold down there).
        assert float(np.ptp(plain_basement)) < 1.0
        assert float(np.ptp(chaos_basement)) > 3.0

    def test_blockage_heats_the_tents(self):
        plain = FleetScaleCampaign(HOSTS, ExperimentConfig(seed=7))
        chaos = _chaos_campaign(
            plan="intake:blockage@day1,repair=2d,severity=1.0", policy=None
        )
        peak_plain = peak_chaos = -99.0
        for _ in range(3 * 48):
            plain.step_days(1 / 48)
            chaos.step_days(1 / 48)
            peak_plain = max(peak_plain, float(plain.tents.air_temp_c.max()))
            peak_chaos = max(peak_chaos, float(chaos.tents.air_temp_c.max()))
        assert peak_chaos > peak_plain + 5.0

    def test_feed_drop_sheds_and_restores_the_feed_group(self):
        campaign = _chaos_campaign(
            plan="feed:drop@day1,repair=6h,feed=0", policy=None
        )
        campaign.run(0.9)
        running_before = int(campaign.summary()["running"])
        campaign.step_days(0.2)  # into the outage
        census = campaign.plant_census()
        assert census["hosts_shed"] > 0
        assert census["hosts_shed_now"] > 0
        # Only feed 0's pods (4 pods x 19 hosts) are eligible.
        assert census["hosts_shed"] <= 4 * 19
        campaign.step_days(0.3)  # past the repair
        census = campaign.plant_census()
        assert census["hosts_shed_now"] == 0
        assert census["hosts_restored"] == census["hosts_shed"]
        assert int(campaign.summary()["running"]) >= running_before - 2

    def test_trips_shed_then_recover(self):
        campaign = _chaos_campaign()
        campaign.run(8.0)
        census = campaign.plant_census()
        assert census["faults_injected"] == 2
        assert census["faults_repaired"] == 2
        assert census["trips"] > 0
        assert census["trip_clears"] == census["trips"]
        assert census["hosts_shed"] > 0
        assert census["hosts_restored"] == census["hosts_shed"]
        assert census["host_hours_shed"] > 0.0
        assert census["excursion_minutes"] > 0.0

    def test_events_flow_through_the_recorder(self):
        campaign = _chaos_campaign()
        campaign.run(8.0)
        recorder = campaign.plant_events
        census = campaign.plant_census()
        assert len(recorder.of_type(ev.PlantFaultInjected)) == 2
        assert len(recorder.of_type(ev.PlantFaultRepaired)) == 2
        assert len(recorder.of_type(ev.ThermalTrip)) == census["trips"]
        assert len(recorder.of_type(ev.ThermalTripCleared)) == census["trips"]
        shed_events = recorder.of_type(ev.LoadShed)
        assert sum(e.hosts for e in shed_events) == census["hosts_shed"]


class TestDeterminism:
    def test_same_seed_same_census(self):
        first = _chaos_campaign(plan=CHAOS_PLAN + "; storm:fan:0.2,seed=11")
        second = _chaos_campaign(plan=CHAOS_PLAN + "; storm:fan:0.2,seed=11")
        first.run(8.0)
        second.run(8.0)
        assert first.plant_census() == second.plant_census()
        assert first.summary() == second.summary()

    def test_storm_seed_changes_the_outcome(self):
        first = _chaos_campaign(plan="storm:intake:0.5,seed=1,severity=1.0")
        second = _chaos_campaign(plan="storm:intake:0.5,seed=2,severity=1.0")
        first.run(6.0)
        second.run(6.0)
        assert (
            first.plant_census()["faults_injected"]
            != second.plant_census()["faults_injected"]
        )


class TestStateRoundtrip:
    def _advance(self, plant, until_days):
        t = 0.0
        while t < until_days * 86_400.0:
            t += 300.0
            plant.advance(t, 300.0, -10.0)
            if plant.policy is not None:
                plant.evaluate(t, 300.0, np.full(plant.n_pods, 30.0))

    def test_mid_outage_state_roundtrips(self):
        plan = PlantFaultPlan.parse(
            "crac:outage@day0.5,repair=2d; fan:failure@day0.25,pod=3,"
            "severity=0.9; storm:intake:0.3,seed=5"
        )
        policy = ThermalTripPolicy.parse("trip=25,clear=20")
        original = FleetPlant(plan, policy, n_pods=10, start_s=0.0)
        self._advance(original, 1.0)
        assert original.crac_until > 86_400.0  # outage still active

        clone = FleetPlant(plan, policy, n_pods=10, start_s=0.0)
        clone.load_state_dict(original.state_dict())
        for attr in (
            "fan_until", "fan_severity", "block_until", "block_severity",
            "feed_until", "tripped", "stage", "stage_deadline",
            "restore_at", "flap", "ua_factor", "ach_factor",
        ):
            np.testing.assert_array_equal(
                getattr(original, attr), getattr(clone, attr), err_msg=attr
            )
        assert clone.crac_until == original.crac_until
        assert clone.ice_severity == original.ice_severity
        assert clone.faults_injected == original.faults_injected
        assert clone.hosts_shed == original.hosts_shed

        # The clone continues exactly like the original.
        self._advance(original, 2.0)
        self._advance(clone, 2.0)
        np.testing.assert_array_equal(original.ua_factor, clone.ua_factor)
        assert original.faults_injected == clone.faults_injected
        assert original.trips == clone.trips

    def test_version_guard(self):
        plant = FleetPlant(PlantFaultPlan(), None, n_pods=2, start_s=0.0)
        state = plant.state_dict()
        state["version"] = 99
        with pytest.raises(Exception):
            FleetPlant(PlantFaultPlan(), None, 2, 0.0).load_state_dict(state)
