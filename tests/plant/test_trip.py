"""The thermal trip policy: parsing, validation, stage arithmetic."""

import pytest

from repro.plant.trip import ThermalTripPolicy
from repro.state.codec import decode_value, encode_value


class TestDefaults:
    def test_empty_spec_is_the_stock_policy(self):
        policy = ThermalTripPolicy.parse("")
        assert policy == ThermalTripPolicy()
        assert policy.trip_c == 45.0
        assert policy.clear_c == 38.0
        assert policy.shed_stages == (0.5, 1.0)
        assert policy.emergency_flap is True


class TestParse:
    def test_full_spec(self):
        policy = ThermalTripPolicy.parse(
            "trip=40,clear=32,shed=0.3+0.6+1.0,hold=15m,cooldown=2h,flap=off"
        )
        assert policy.trip_c == 40.0
        assert policy.clear_c == 32.0
        assert policy.shed_stages == (0.3, 0.6, 1.0)
        assert policy.stage_hold_s == 900.0
        assert policy.cooldown_s == 7200.0
        assert policy.emergency_flap is False

    def test_partial_spec_keeps_other_defaults(self):
        policy = ThermalTripPolicy.parse("trip=50,clear=44")
        assert policy.trip_c == 50.0
        assert policy.shed_stages == (0.5, 1.0)

    @pytest.mark.parametrize(
        "bad",
        [
            "trip",  # no value
            "trip=40,clear=42",  # no hysteresis gap
            "shed=1.0+0.5",  # non-increasing stages
            "shed=0.5+1.5",  # stage above 1
            "hold=0",  # non-positive hold
            "flap=maybe",  # bad flap
            "volume=11",  # unknown key
        ],
    )
    def test_bad_specs_raise(self, bad):
        with pytest.raises(ValueError):
            ThermalTripPolicy.parse(bad)


class TestStages:
    def test_stage_fraction_is_cumulative_and_clamped(self):
        policy = ThermalTripPolicy.parse("shed=0.3+0.6+1.0")
        assert policy.max_stage == 3
        assert policy.stage_fraction(0) == 0.0
        assert policy.stage_fraction(1) == 0.3
        assert policy.stage_fraction(3) == 1.0
        assert policy.stage_fraction(99) == 1.0


class TestCheckpointCodec:
    def test_policy_roundtrips_through_codec(self):
        policy = ThermalTripPolicy.parse("trip=41,clear=33,shed=0.25+1.0")
        assert decode_value(encode_value(policy)) == policy
