"""Cache robustness: corrupt entries, tmp-file hygiene, key collisions."""

import dataclasses
import datetime as dt
import json
import os

import pytest

from repro import ExperimentConfig
from repro.runner import sweep_records
from repro.runner.pool import (
    RUN_RECORD_CODEC,
    RunSpec,
    _cache_path,
    _horizon_token,
    _load_cached,
    _store_cached,
)

UNTIL = dt.datetime(2010, 2, 20)


def _seed_cache(tmp_path, seeds=(7,)):
    cache = str(tmp_path / "runs")
    result = sweep_records(list(seeds), until=UNTIL, jobs=1, cache_dir=cache)
    return cache, result


def _entry_path(cache):
    spec = RunSpec(config=ExperimentConfig(seed=7), until=UNTIL)
    return _cache_path(cache, spec)


def _no_tmp_files(cache):
    assert [n for n in os.listdir(cache) if n.endswith(".tmp")] == []


class TestEviction:
    def test_truncated_json_is_quarantined_and_recomputed(self, tmp_path):
        cache, _ = _seed_cache(tmp_path)
        path = _entry_path(cache)
        content = open(path, encoding="utf-8").read()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(content[: len(content) // 2])
        again = sweep_records([7], until=UNTIL, jobs=1, cache_dir=cache)
        assert (again.cache_hits, again.cache_misses) == (0, 1)
        assert again.cache_evictions == 1
        assert again.runner_telemetry.counter("runner.cache_evictions") == 1
        assert os.path.exists(path + ".corrupt")
        # The recomputed record replaced the poisoned entry for good.
        third = sweep_records([7], until=UNTIL, jobs=1, cache_dir=cache)
        assert (third.cache_hits, third.cache_evictions) == (1, 0)
        _no_tmp_files(cache)

    def test_wrong_schema_is_evicted(self, tmp_path):
        cache, _ = _seed_cache(tmp_path)
        path = _entry_path(cache)
        data = json.load(open(path, encoding="utf-8"))
        data["schema"] = 999
        json.dump(data, open(path, "w", encoding="utf-8"))
        again = sweep_records([7], until=UNTIL, jobs=1, cache_dir=cache)
        assert again.cache_evictions == 1
        assert not os.path.exists(path) or json.load(
            open(path, encoding="utf-8")
        )["schema"] != 999

    def test_seed_mismatch_is_evicted(self, tmp_path):
        cache, _ = _seed_cache(tmp_path)
        path = _entry_path(cache)
        data = json.load(open(path, encoding="utf-8"))
        data["seed"] = 99
        json.dump(data, open(path, "w", encoding="utf-8"))
        spec = RunSpec(config=ExperimentConfig(seed=7), until=UNTIL)
        record, evicted = _load_cached(cache, spec, RUN_RECORD_CODEC)
        assert record is None
        assert evicted
        assert os.path.exists(path + ".corrupt")

    def test_digest_mismatch_is_evicted(self, tmp_path):
        cache, _ = _seed_cache(tmp_path)
        path = _entry_path(cache)
        data = json.load(open(path, encoding="utf-8"))
        data["config_digest"] = "0" * 64
        json.dump(data, open(path, "w", encoding="utf-8"))
        spec = RunSpec(config=ExperimentConfig(seed=7), until=UNTIL)
        record, evicted = _load_cached(cache, spec, RUN_RECORD_CODEC)
        assert record is None
        assert evicted

    def test_missing_entry_is_not_an_eviction(self, tmp_path):
        spec = RunSpec(config=ExperimentConfig(seed=7), until=UNTIL)
        record, evicted = _load_cached(str(tmp_path), spec, RUN_RECORD_CODEC)
        assert record is None
        assert not evicted


class TestStoreHygiene:
    def test_unserialisable_record_leaks_no_tmp_and_does_not_raise(self, tmp_path):
        cache, result = _seed_cache(tmp_path)
        spec = RunSpec(config=ExperimentConfig(seed=7), until=UNTIL)
        # object() cannot be JSON-encoded: json.dump raises TypeError
        # halfway through writing the tmp file.
        bad = dataclasses.replace(
            result.records[0], fault_counts=(("boom", object()),)
        )
        assert _store_cached(cache, spec, bad, RUN_RECORD_CODEC) is False
        _no_tmp_files(cache)

    def test_store_failure_is_non_fatal_in_a_sweep(self, tmp_path, monkeypatch):
        import repro.runner.pool as pool

        cache = str(tmp_path / "runs")
        monkeypatch.setattr(
            pool.json, "dump", lambda *a, **k: (_ for _ in ()).throw(TypeError("x"))
        )
        result = sweep_records([7], until=UNTIL, jobs=1, cache_dir=cache)
        assert len(result.records) == 1
        assert result.failures == ()
        assert result.runner_telemetry.counter("runner.cache_store_failures") == 1
        _no_tmp_files(cache)

    def test_successful_store_round_trips(self, tmp_path):
        cache, result = _seed_cache(tmp_path)
        spec = RunSpec(config=ExperimentConfig(seed=7), until=UNTIL)
        record, evicted = _load_cached(cache, spec, RUN_RECORD_CODEC)
        assert record == result.records[0]
        assert not evicted
        _no_tmp_files(cache)


class TestKeyCollisions:
    def test_distinct_specs_never_share_a_cache_path(self):
        later = dt.datetime(2010, 4, 1)
        specs = [
            RunSpec(config=ExperimentConfig(seed=7)),
            RunSpec(config=ExperimentConfig(seed=8)),
            RunSpec(config=ExperimentConfig(seed=7), until=UNTIL),
            RunSpec(config=ExperimentConfig(seed=7), until=UNTIL, telemetry=True),
            RunSpec(config=ExperimentConfig(seed=7), telemetry=True),
            RunSpec(
                config=ExperimentConfig(seed=7).with_end(later), until=UNTIL
            ),
            RunSpec(config=ExperimentConfig(seed=7), until=dt.datetime(2010, 2, 21)),
        ]
        keys = [spec.cache_key() for spec in specs]
        assert len(set(keys)) == len(keys)


class TestTimezoneHorizons:
    def test_aware_horizons_normalise_to_utc(self):
        plus2 = dt.timezone(dt.timedelta(hours=2))
        in_plus2 = _horizon_token(dt.datetime(2010, 2, 24, 12, 0, tzinfo=plus2))
        in_utc = _horizon_token(
            dt.datetime(2010, 2, 24, 10, 0, tzinfo=dt.timezone.utc)
        )
        assert in_plus2 == in_utc == "20100224T100000Z"

    def test_equal_wall_time_different_offsets_do_not_collide(self):
        # The old strftime-only key dropped the offset, mapping both of
        # these to one cache entry.
        plus2 = dt.timezone(dt.timedelta(hours=2))
        a = _horizon_token(dt.datetime(2010, 2, 24, 12, 0, tzinfo=plus2))
        b = _horizon_token(dt.datetime(2010, 2, 24, 12, 0, tzinfo=dt.timezone.utc))
        assert a != b

    def test_naive_horizon_keeps_historical_key(self):
        assert _horizon_token(dt.datetime(2010, 2, 24)) == "20100224T000000"
        assert _horizon_token(None) == "full"

    def test_mixed_naive_aware_rejected_with_clear_error(self):
        aware = dt.datetime(2010, 2, 24, tzinfo=dt.timezone.utc)
        with pytest.raises(ValueError, match="mixed naive/aware"):
            RunSpec(config=ExperimentConfig(seed=7), until=aware)
