"""Fault-injection tests: retries, timeouts, degradation, pool repair.

Every path here is driven deterministically through the
:class:`repro.runner.faults.FaultPlan` seam, mirroring the paper's own
campaign: faults happen on schedule, and the measurement keeps running.
"""

import datetime as dt
import os

import pytest

from repro.runner import (
    Fault,
    FaultAction,
    FaultPlan,
    InjectedFault,
    RetryPolicy,
    sweep_records,
)

UNTIL = dt.datetime(2010, 2, 20)
#: Short horizon (prototype weekend + a day) for timeout tests: a real
#: attempt finishes in well under a second, so the per-attempt budget
#: only ever fires on the injected stall.
UNTIL_TINY = dt.datetime(2010, 2, 16)
FAST = dict(backoff_base_s=0.01, backoff_max_s=0.05)


def _canonical(result):
    return [record.canonical_json() for record in result.records]


def _no_tmp_files(cache_dir):
    leftovers = [n for n in os.listdir(cache_dir) if n.endswith(".tmp")]
    assert leftovers == []


class TestRetry:
    def test_transient_crash_retried_serially(self):
        baseline = sweep_records([7], until=UNTIL, jobs=1)
        plan = FaultPlan.of(Fault(seed=7, attempt=1, action=FaultAction.RAISE))
        result = sweep_records(
            [7], until=UNTIL, jobs=1,
            policy=RetryPolicy(max_attempts=2, **FAST), faults=plan,
        )
        assert result.failures == ()
        assert result.retries == 1
        assert _canonical(result) == _canonical(baseline)

    def test_worker_death_retried_in_pool_byte_identical(self):
        # The acceptance scenario: one worker hard-exits mid-sweep with
        # retries=2; the pool is rebuilt, every in-flight spec re-driven,
        # and the records match a fault-free run byte for byte.
        baseline = sweep_records([7, 11], until=UNTIL, jobs=2)
        plan = FaultPlan.of(Fault(seed=11, attempt=1, action=FaultAction.DIE))
        result = sweep_records(
            [7, 11], until=UNTIL, jobs=2,
            policy=RetryPolicy(max_attempts=3, **FAST), faults=plan,
        )
        assert result.failures == ()
        assert result.ok
        assert [r.seed for r in result.records] == [7, 11]
        assert _canonical(result) == _canonical(baseline)

    def test_retry_counters_reach_runner_telemetry(self):
        plan = FaultPlan.of(Fault(seed=7, attempt=1, action=FaultAction.RAISE))
        result = sweep_records(
            [7], until=UNTIL, jobs=1,
            policy=RetryPolicy(max_attempts=2, **FAST), faults=plan,
        )
        snapshot = result.runner_telemetry
        assert snapshot is not None
        assert snapshot.counter("runner.retries") == result.retries == 1
        assert snapshot.counter("runner.failures") == 0
        assert snapshot.counter("runner.cache_misses") == 1


class TestDegradation:
    def test_exhausted_retries_keep_going(self, tmp_path):
        cache = str(tmp_path / "runs")
        plan = FaultPlan.of(
            Fault(seed=7, attempt=1, action=FaultAction.RAISE, message="boom"),
            Fault(seed=7, attempt=2, action=FaultAction.RAISE, message="boom"),
        )
        result = sweep_records(
            [7, 11], until=UNTIL, jobs=1, cache_dir=cache,
            policy=RetryPolicy(max_attempts=2, **FAST), faults=plan,
        )
        assert [r.seed for r in result.records] == [11]
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.seed == 7
        assert failure.attempts == 2
        assert failure.error_type == "InjectedFault"
        assert "boom" in failure.error_message
        assert not failure.timed_out
        assert "seed 7" in failure.describe()
        # The survivor was cached on completion despite the failure.
        again = sweep_records([11], until=UNTIL, jobs=1, cache_dir=cache)
        assert again.cache_hits == 1
        _no_tmp_files(cache)

    def test_strict_fail_fast_raises_original_error(self):
        plan = FaultPlan.of(Fault(seed=7, attempt=1, action=FaultAction.RAISE))
        with pytest.raises(InjectedFault):
            sweep_records([7], until=UNTIL, jobs=1, faults=plan, strict=True)

    def test_single_attempt_without_policy_records_failure(self):
        plan = FaultPlan.of(Fault(seed=7, attempt=1, action=FaultAction.RAISE))
        result = sweep_records([7], until=UNTIL, jobs=1, faults=plan)
        assert result.records == ()
        assert len(result.failures) == 1
        assert result.failures[0].attempts == 1
        with pytest.raises(ValueError, match="no records survived"):
            result.summary

    def test_die_degrades_to_raise_in_serial_mode(self):
        # A hard exit in a serial sweep would kill the test process; the
        # plan degrades it to an InjectedFault instead.
        plan = FaultPlan.of(Fault(seed=7, attempt=1, action=FaultAction.DIE))
        result = sweep_records([7], until=UNTIL, jobs=1, faults=plan)
        assert len(result.failures) == 1
        assert result.failures[0].error_type == "InjectedFault"


class TestTimeout:
    def test_wedged_worker_times_out_and_retries(self):
        baseline = sweep_records([7], until=UNTIL_TINY, jobs=1)
        plan = FaultPlan.of(
            Fault(seed=7, attempt=1, action=FaultAction.STALL, delay_s=6.0)
        )
        policy = RetryPolicy(max_attempts=2, timeout_s=2.0, **FAST)
        result = sweep_records(
            [7], until=UNTIL_TINY, jobs=2, policy=policy, faults=plan
        )
        assert result.failures == ()
        assert result.timeouts == 1
        assert result.retries == 1
        assert result.runner_telemetry.counter("runner.timeouts") == 1
        assert _canonical(result) == _canonical(baseline)

    def test_timeout_exhaustion_reports_timed_out_failure(self):
        plan = FaultPlan.of(
            Fault(seed=7, attempt=1, action=FaultAction.STALL, delay_s=4.0),
            Fault(seed=7, attempt=2, action=FaultAction.STALL, delay_s=4.0),
        )
        policy = RetryPolicy(max_attempts=2, timeout_s=1.0, **FAST)
        result = sweep_records(
            [7], until=UNTIL_TINY, jobs=2, policy=policy, faults=plan
        )
        assert result.records == ()
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.timed_out
        assert failure.error_type == "SpecTimeoutError"
        assert "timed out" in failure.describe()

    def test_slow_worker_within_budget_succeeds(self):
        plan = FaultPlan.of(
            Fault(seed=7, attempt=1, action=FaultAction.DELAY, delay_s=0.2)
        )
        policy = RetryPolicy(max_attempts=2, timeout_s=60.0, **FAST)
        result = sweep_records(
            [7], until=UNTIL_TINY, jobs=2, policy=policy, faults=plan
        )
        assert result.failures == ()
        assert result.timeouts == 0
        assert result.retries == 0


class TestFaultPlan:
    def test_lookup_matches_seed_and_attempt(self):
        fault = Fault(seed=7, attempt=2, action=FaultAction.RAISE)
        plan = FaultPlan.of(fault)
        assert plan.lookup(7, 2) is fault
        assert plan.lookup(7, 1) is None
        assert plan.lookup(11, 2) is None

    def test_invalid_faults_rejected(self):
        with pytest.raises(ValueError):
            Fault(seed=7, attempt=0, action=FaultAction.RAISE)
        with pytest.raises(ValueError):
            Fault(seed=7, attempt=1, action=FaultAction.DELAY, delay_s=-1.0)
