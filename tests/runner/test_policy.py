"""Tests for the retry policy: validation, backoff shape, determinism."""

import pytest

from repro.runner.policy import RetryPolicy, SpecTimeoutError


class TestValidation:
    def test_defaults_are_single_attempt(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 1
        assert policy.retries == 0
        assert policy.timeout_s is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_base_s": -0.1},
            {"backoff_factor": 0.5},
            {"backoff_max_s": -1.0},
            {"jitter_fraction": -0.1},
            {"jitter_fraction": 1.5},
            {"timeout_s": 0.0},
            {"timeout_s": -2.0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_attempts_counted_from_one(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=3).backoff_s(0, seed=7)


class TestBackoff:
    def test_deterministic_for_same_seed_and_attempt(self):
        policy = RetryPolicy(max_attempts=5)
        assert policy.backoff_s(2, seed=7) == policy.backoff_s(2, seed=7)
        assert RetryPolicy(max_attempts=5).backoff_s(2, seed=7) == policy.backoff_s(
            2, seed=7
        )

    def test_zero_jitter_is_exact_exponential(self):
        policy = RetryPolicy(
            max_attempts=5, backoff_base_s=0.1, backoff_factor=3.0,
            backoff_max_s=100.0, jitter_fraction=0.0,
        )
        assert policy.backoff_s(1, seed=7) == pytest.approx(0.1)
        assert policy.backoff_s(2, seed=7) == pytest.approx(0.3)
        assert policy.backoff_s(3, seed=7) == pytest.approx(0.9)

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(
            max_attempts=10, backoff_base_s=1.0, backoff_factor=1.0,
            jitter_fraction=0.25,
        )
        for seed in range(20):
            delay = policy.backoff_s(1, seed=seed)
            assert 0.75 <= delay <= 1.25

    def test_growth_dominates_jitter(self):
        # Default 10 % jitter cannot make attempt n+1 back off less than
        # attempt n when the factor is 2.
        policy = RetryPolicy(max_attempts=5, backoff_max_s=100.0)
        assert policy.backoff_s(2, seed=7) > policy.backoff_s(1, seed=7)
        assert policy.backoff_s(3, seed=7) > policy.backoff_s(2, seed=7)

    def test_cap_applies(self):
        policy = RetryPolicy(
            max_attempts=20, backoff_base_s=1.0, backoff_factor=10.0,
            backoff_max_s=2.0,
        )
        assert policy.backoff_s(10, seed=7) <= 2.0 * (1 + policy.jitter_fraction)

    def test_zero_base_means_no_delay(self):
        policy = RetryPolicy(max_attempts=3, backoff_base_s=0.0)
        assert policy.backoff_s(1, seed=7) == 0.0
        assert policy.backoff_s(2, seed=7) == 0.0


class TestSpecTimeoutError:
    def test_is_a_timeout(self):
        assert issubclass(SpecTimeoutError, TimeoutError)
