"""Tests for the parallel sweep runner and its cache."""

import datetime as dt

import pytest

from repro import ExperimentConfig
from repro.analysis.seedsweep import outcome_from_results
from repro.runner.pool import RunSpec, run_specs, sweep_records, sweep_seeds

UNTIL = dt.datetime(2010, 2, 24)


class TestRunSpec:
    def test_cache_key_shape(self):
        spec = RunSpec(config=ExperimentConfig(seed=7), until=UNTIL)
        key = spec.cache_key()
        assert key.endswith("-7-20100224T000000")
        assert len(key.split("-")[0]) == 16

    def test_full_run_key(self):
        spec = RunSpec(config=ExperimentConfig(seed=7))
        assert spec.cache_key().endswith("-7-full")


class TestValidation:
    def test_empty_specs_rejected(self):
        with pytest.raises(ValueError):
            run_specs([])

    def test_bad_jobs_rejected(self):
        spec = RunSpec(config=ExperimentConfig(seed=7), until=UNTIL)
        with pytest.raises(ValueError):
            run_specs([spec], jobs=0)

    def test_empty_seed_list_rejected(self):
        with pytest.raises(ValueError):
            sweep_seeds([], until=UNTIL)


class TestDeterminism:
    def test_serial_and_parallel_records_byte_identical(self):
        seeds = [7, 11, 13]
        serial = sweep_records(seeds, until=UNTIL, jobs=1)
        parallel = sweep_records(seeds, until=UNTIL, jobs=4)
        assert serial.records == parallel.records
        for a, b in zip(serial.records, parallel.records):
            assert a.canonical_json() == b.canonical_json()
        assert [r.seed for r in parallel.records] == seeds

    def test_summary_matches_legacy_serial_sweep(self):
        # sweep_seeds is the drop-in successor of the old serial loop in
        # analysis.seedsweep: same aggregate, whatever the job count.
        summary = sweep_seeds([7, 11], until=UNTIL, jobs=2)
        assert [o.seed for o in summary.outcomes] == [7, 11]
        assert summary.describe()

    def test_record_census_matches_short_fixture(self, short_results):
        record = sweep_records([7], until=dt.datetime(2010, 3, 3), jobs=1).records[0]
        assert record.to_outcome() == outcome_from_results(7, short_results)


class TestCache:
    def test_second_invocation_hits_cache(self, tmp_path):
        cache = str(tmp_path / "runs")
        first = sweep_records([7, 11], until=UNTIL, jobs=1, cache_dir=cache)
        second = sweep_records([7, 11], until=UNTIL, jobs=1, cache_dir=cache)
        assert (first.cache_hits, first.cache_misses) == (0, 2)
        assert (second.cache_hits, second.cache_misses) == (2, 0)
        assert second.records == first.records

    def test_corrupt_cache_entry_recomputed(self, tmp_path):
        cache = str(tmp_path / "runs")
        spec = RunSpec(config=ExperimentConfig(seed=7), until=UNTIL)
        sweep_records([7], until=UNTIL, jobs=1, cache_dir=cache)
        path = tmp_path / "runs" / f"{spec.cache_key()}.json"
        path.write_text("{not json")
        again = sweep_records([7], until=UNTIL, jobs=1, cache_dir=cache)
        assert (again.cache_hits, again.cache_misses) == (0, 1)

    def test_different_config_never_shares_entries(self, tmp_path):
        cache = str(tmp_path / "runs")
        sweep_records([7], until=UNTIL, jobs=1, cache_dir=cache)
        truncated = sweep_records(
            [7],
            until=UNTIL,
            config_factory=lambda seed: ExperimentConfig(seed=seed).with_end(
                dt.datetime(2010, 4, 1)
            ),
            jobs=1,
            cache_dir=cache,
        )
        assert truncated.cache_hits == 0


class TestCompatReexport:
    def test_analysis_seedsweep_lazily_reexports(self):
        from repro.analysis.seedsweep import sweep_seeds as via_module
        from repro.analysis import sweep_seeds as via_package

        assert via_module is sweep_seeds
        assert via_package is sweep_seeds

    def test_unknown_attribute_still_raises(self):
        import repro.analysis.seedsweep as seedsweep

        with pytest.raises(AttributeError):
            seedsweep.does_not_exist


class TestProgressCallback:
    def test_completed_events_in_spec_order_serially(self):
        events = []
        sweep_records([7, 11], until=UNTIL, jobs=1, progress=events.append)
        assert [(e["kind"], e["label"]) for e in events] == [
            ("completed", "seed 7"),
            ("completed", "seed 11"),
        ]
        assert all(e["attempt"] == 1 for e in events)

    def test_cache_hits_reported_as_cached(self, tmp_path):
        cache = str(tmp_path / "cache")
        sweep_records([7], until=UNTIL, cache_dir=cache)
        events = []
        sweep_records([7], until=UNTIL, cache_dir=cache, progress=events.append)
        assert [e["kind"] for e in events] == ["cached"]

    def test_retry_and_failure_events_carry_error(self):
        from repro.runner.faults import Fault, FaultAction, FaultPlan
        from repro.runner.policy import RetryPolicy

        plan = FaultPlan.of(
            Fault(seed=7, attempt=1, action=FaultAction.RAISE),
            Fault(seed=7, attempt=2, action=FaultAction.RAISE),
        )
        events = []
        result = sweep_records(
            [7], until=UNTIL, jobs=1,
            policy=RetryPolicy(
                max_attempts=2, backoff_base_s=0.01, backoff_max_s=0.05
            ),
            faults=plan, strict=False, progress=events.append,
        )
        assert result.failures
        assert [e["kind"] for e in events] == ["retried", "failed"]
        assert all("error" in e for e in events)

    def test_broken_sink_never_kills_the_sweep(self):
        def sink(event):
            raise RuntimeError("telemetry plane down")

        result = sweep_records([7], until=UNTIL, jobs=1, progress=sink)
        assert len(result.records) == 1

    def test_progress_does_not_change_records(self):
        quiet = sweep_records([7], until=UNTIL, jobs=1)
        noisy = sweep_records([7], until=UNTIL, jobs=1, progress=lambda e: None)
        assert [r.canonical_json() for r in quiet.records] == [
            r.canonical_json() for r in noisy.records
        ]

    def test_pooled_sweep_reports_every_spec(self):
        events = []
        sweep_records([7, 11, 13], until=UNTIL, jobs=3, progress=events.append)
        assert sorted(e["label"] for e in events) == ["seed 11", "seed 13", "seed 7"]
        assert {e["kind"] for e in events} == {"completed"}
