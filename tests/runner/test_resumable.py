"""Preemption-tolerant resumable sweeps.

A resumable sweep flushes campaign checkpoints as each attempt runs, so
a retried attempt restarts from the dead attempt's last flush instead of
simulated ``t=0`` -- and still produces records byte-identical to a
fault-free sweep.  Deaths are injected deterministically through the
deferred-``DIE`` seam (``Fault.after_checkpoints``).
"""

import datetime as dt
import os

import pytest

from repro.runner import (
    Fault,
    FaultAction,
    FaultPlan,
    RetryPolicy,
    run_recorded,
    sweep_records,
)
from repro.runner.pool import _latest_checkpoint
from repro.sim.clock import DAY
from repro.state.checkpoint import CampaignCheckpoint, write_checkpoint

UNTIL = dt.datetime(2010, 2, 20)
EVERY = 2 * DAY  # three flushes before the Feb 20 horizon
FAST = dict(backoff_base_s=0.01, backoff_max_s=0.05)


def _canonical(result):
    return [record.canonical_json() for record in result.records]


class TestSerialResume:
    def test_death_after_checkpoint_resumes_byte_identical(self, tmp_path):
        baseline = sweep_records([7], until=UNTIL, jobs=1)
        plan = FaultPlan.of(
            Fault(
                seed=7, attempt=1, action=FaultAction.DIE, after_checkpoints=2
            )
        )
        result = sweep_records(
            [7], until=UNTIL, jobs=1,
            cache_dir=str(tmp_path),
            policy=RetryPolicy(max_attempts=2, **FAST),
            faults=plan,
            resumable=True,
            checkpoint_every_s=EVERY,
        )
        assert result.ok
        assert result.retries == 1
        assert result.checkpoint_resumes == 1
        assert _canonical(result) == _canonical(baseline)

    def test_resume_counter_reaches_runner_telemetry(self, tmp_path):
        plan = FaultPlan.of(
            Fault(
                seed=7, attempt=1, action=FaultAction.DIE, after_checkpoints=1
            )
        )
        result = sweep_records(
            [7], until=UNTIL, jobs=1,
            cache_dir=str(tmp_path),
            policy=RetryPolicy(max_attempts=2, **FAST),
            faults=plan,
            resumable=True,
            checkpoint_every_s=EVERY,
        )
        assert result.ok
        snapshot = result.runner_telemetry
        assert snapshot is not None
        assert snapshot.counter("runner.checkpoint_resumes") == 1

    def test_checkpoints_cleaned_up_after_success(self, tmp_path):
        result = sweep_records(
            [7], until=UNTIL, jobs=1,
            cache_dir=str(tmp_path),
            resumable=True,
            checkpoint_every_s=EVERY,
        )
        assert result.ok
        checkpoint_root = tmp_path / "checkpoints"
        leftovers = (
            os.listdir(checkpoint_root) if checkpoint_root.is_dir() else []
        )
        assert leftovers == []

    def test_faultless_resumable_sweep_matches_plain(self, tmp_path):
        baseline = sweep_records([7], until=UNTIL, jobs=1)
        result = sweep_records(
            [7], until=UNTIL, jobs=1,
            cache_dir=str(tmp_path),
            resumable=True,
            checkpoint_every_s=EVERY,
        )
        assert result.checkpoint_resumes == 0
        assert _canonical(result) == _canonical(baseline)


class TestPooledResume:
    def test_worker_death_resumes_in_pool_byte_identical(self, tmp_path):
        # The acceptance scenario on a real pool: a worker hard-exits
        # right after its second flush, the executor is rebuilt, and the
        # retry resumes mid-campaign.  The broken pool may also kill the
        # innocent sibling spec, which then resumes from its own flushes
        # -- hence >= on the counters.
        baseline = sweep_records([7, 11], until=UNTIL, jobs=2)
        plan = FaultPlan.of(
            Fault(
                seed=11, attempt=1, action=FaultAction.DIE, after_checkpoints=2
            )
        )
        result = sweep_records(
            [7, 11], until=UNTIL, jobs=2,
            cache_dir=str(tmp_path),
            policy=RetryPolicy(max_attempts=3, **FAST),
            faults=plan,
            resumable=True,
            checkpoint_every_s=EVERY,
        )
        assert result.ok
        assert result.retries >= 1
        assert result.checkpoint_resumes >= 1
        assert [r.seed for r in result.records] == [7, 11]
        assert _canonical(result) == _canonical(baseline)


class TestFallbacks:
    def test_missing_resume_checkpoint_falls_back_to_scratch(self):
        from repro.core.config import ExperimentConfig

        config = ExperimentConfig(seed=7)
        baseline = run_recorded(config, until=UNTIL)
        record = run_recorded(
            config, until=UNTIL, resume_from="/nonexistent/checkpoint.json"
        )
        assert record.canonical_json() == baseline.canonical_json()

    def test_latest_checkpoint_skips_corrupt_newest(self, tmp_path):
        older = str(tmp_path / "checkpoint_000000000100.json")
        newer = str(tmp_path / "checkpoint_000000000200.json")
        snapshot = CampaignCheckpoint(
            config_digest="d", sim_time=100.0, seed=7, components={}
        )
        assert write_checkpoint(older, snapshot)
        with open(newer, "w") as fh:
            fh.write("torn mid-write")
        assert _latest_checkpoint(str(tmp_path)) == older
        # The poisoned file was quarantined, not retried forever.
        assert os.path.exists(newer + ".corrupt")

    def test_latest_checkpoint_empty_or_missing_dir(self, tmp_path):
        assert _latest_checkpoint(None) is None
        assert _latest_checkpoint(str(tmp_path / "absent")) is None
        assert _latest_checkpoint(str(tmp_path)) is None


class TestValidation:
    def test_resumable_needs_cache_dir(self):
        with pytest.raises(ValueError, match="cache_dir"):
            sweep_records([7], until=UNTIL, jobs=1, resumable=True)

    def test_checkpoint_cadence_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="positive"):
            sweep_records(
                [7], until=UNTIL, jobs=1,
                cache_dir=str(tmp_path),
                resumable=True,
                checkpoint_every_s=0.0,
            )

    def test_deferred_death_only_defers_die(self):
        with pytest.raises(ValueError, match="DIE"):
            Fault(
                seed=7, attempt=1, action=FaultAction.RAISE, after_checkpoints=1
            )

    def test_deferred_death_cannot_be_negative(self):
        with pytest.raises(ValueError):
            Fault(
                seed=7, attempt=1, action=FaultAction.DIE, after_checkpoints=-1
            )
