"""Tests for run records and config digests."""

import dataclasses
import datetime as dt
import json

import pytest

from repro import Experiment, ExperimentConfig
from repro.analysis.seedsweep import outcome_from_results
from repro.core.scenarios import SCENARIOS
from repro.runner.records import (
    RECORD_SCHEMA,
    config_digest,
    record_from_json_dict,
    record_from_results,
)

UNTIL = dt.datetime(2010, 2, 21)


@pytest.fixture(scope="module")
def tiny_record():
    results = Experiment(ExperimentConfig(seed=5)).run(until=UNTIL)
    return record_from_results(5, results, until=UNTIL, elapsed_s=1.25), results


class TestConfigDigest:
    def test_digest_is_stable(self):
        assert config_digest(ExperimentConfig(seed=7)) == config_digest(
            ExperimentConfig(seed=7)
        )

    def test_digest_distinguishes_seeds(self):
        assert config_digest(ExperimentConfig(seed=7)) != config_digest(
            ExperimentConfig(seed=8)
        )

    def test_digest_distinguishes_any_field(self):
        base = ExperimentConfig(seed=7)
        shorter = base.with_end(dt.datetime(2010, 4, 1))
        assert config_digest(base) != config_digest(shorter)

    def test_every_scenario_is_digestable(self):
        digests = {name: config_digest(factory(seed=7)) for name, factory in SCENARIOS.items()}
        assert len(set(digests.values())) == len(digests)


class TestRunRecord:
    def test_census_matches_outcome_from_results(self, tiny_record):
        record, results = tiny_record
        assert record.to_outcome() == outcome_from_results(5, results)

    def test_schema_and_key_fields(self, tiny_record):
        record, results = tiny_record
        assert record.schema == RECORD_SCHEMA
        assert record.seed == 5
        assert record.config_digest == config_digest(results.config)
        assert record.until == UNTIL.isoformat()
        assert record.total_runs == results.ledger.total_runs

    def test_event_counts_round_in(self, tiny_record):
        record, results = tiny_record
        assert dict(record.event_counts) == results.event_counts()

    def test_json_round_trip(self, tiny_record):
        record, _ = tiny_record
        rebuilt = record_from_json_dict(json.loads(json.dumps(record.to_json_dict())))
        assert rebuilt == record
        assert rebuilt.canonical_json() == record.canonical_json()

    def test_elapsed_excluded_from_equality_and_canonical_json(self, tiny_record):
        record, _ = tiny_record
        slower = dataclasses.replace(record, elapsed_s=99.0)
        assert slower == record
        assert slower.canonical_json() == record.canonical_json()
        assert "elapsed" not in record.canonical_json()

    def test_series_digests_cover_instruments(self, tiny_record):
        record, _ = tiny_record
        names = [s.name for s in record.series]
        assert "outside_temperature" in names
        outside = next(s for s in record.series if s.name == "outside_temperature")
        assert outside.points > 0
        assert outside.minimum is not None
        # The Lascar logger has not arrived by Feb 21.
        inside = next(s for s in record.series if s.name == "inside_temperature_raw")
        assert inside.points == 0
        assert inside.minimum is None
