"""Tests for the generic task plane (:func:`repro.runner.pool.run_tasks`).

A deliberately tiny task family -- square a number -- exercises the
duck-typed spec surface (``cache_key()``/``label``/``seed``), custom
codecs, retries, and the strict/keep-going split without dragging in
campaigns or weather.  The campaign wrapper's behaviour is covered by
the existing ``test_pool``/``test_cache_robustness`` suites; these tests
pin the contract any *new* task family (like the atlas) builds on.
"""

import time
from dataclasses import dataclass

import pytest

from repro.runner import RetryPolicy, TaskCodec, run_tasks
from repro.runner.pool import RUN_RECORD_CODEC, run_specs


@dataclass(frozen=True)
class SquareSpec:
    value: int
    label: str = ""

    @property
    def seed(self) -> int:
        return self.value

    def cache_key(self) -> str:
        return f"square-{self.value}"


@dataclass(frozen=True)
class SquareResult:
    value: int
    squared: int


SQUARE_CODEC = TaskCodec(
    encode=lambda r: {"value": r.value, "squared": r.squared},
    decode=lambda d: SquareResult(value=int(d["value"]), squared=int(d["squared"])),
    validate=lambda spec, r: r.value == spec.value,
)


def square_worker(item):
    if item.backoff_s > 0:
        time.sleep(item.backoff_s)
    return SquareResult(value=item.spec.value, squared=item.spec.value**2)


def flaky_worker(item):
    # Crashes on the first attempt at every even value; retries succeed.
    if item.spec.value % 2 == 0 and item.attempt == 1:
        raise RuntimeError(f"flake at {item.spec.value}")
    return square_worker(item)


class TestRunTasks:
    def test_records_in_spec_order(self):
        specs = [SquareSpec(v) for v in (3, 1, 4, 1, 5)]
        result = run_tasks(specs, square_worker, codec=SQUARE_CODEC)
        assert [r.squared for r in result.records] == [9, 1, 16, 1, 25]
        assert result.ok

    def test_pooled_matches_serial(self):
        specs = [SquareSpec(v) for v in range(8)]
        serial = run_tasks(specs, square_worker, codec=SQUARE_CODEC, jobs=1)
        pooled = run_tasks(specs, square_worker, codec=SQUARE_CODEC, jobs=4)
        assert pooled.records == serial.records

    def test_cache_round_trips_through_the_codec(self, tmp_path):
        specs = [SquareSpec(v) for v in (2, 7)]
        cache = str(tmp_path / "squares")
        cold = run_tasks(specs, square_worker, codec=SQUARE_CODEC, cache_dir=cache)
        warm = run_tasks(specs, square_worker, codec=SQUARE_CODEC, cache_dir=cache)
        assert (cold.cache_hits, warm.cache_hits) == (0, 2)
        assert warm.records == cold.records

    def test_codec_validation_evicts_foreign_entries(self, tmp_path):
        cache = str(tmp_path / "squares")
        run_tasks([SquareSpec(2)], square_worker, codec=SQUARE_CODEC, cache_dir=cache)
        # Same cache key, different spec value: validate() must veto.
        import json
        import os

        path = os.path.join(cache, "square-2.json")
        data = json.load(open(path, encoding="utf-8"))
        data["value"] = 99
        json.dump(data, open(path, "w", encoding="utf-8"))
        again = run_tasks(
            [SquareSpec(2)], square_worker, codec=SQUARE_CODEC, cache_dir=cache
        )
        assert again.cache_evictions == 1
        assert again.records[0].squared == 4

    def test_retries_heal_flaky_workers(self):
        specs = [SquareSpec(v) for v in range(5)]
        policy = RetryPolicy(max_attempts=2, backoff_base_s=0.0)
        result = run_tasks(specs, flaky_worker, codec=SQUARE_CODEC, policy=policy)
        assert result.ok
        assert result.retries == 3  # values 0, 2, 4 each flaked once
        assert [r.squared for r in result.records] == [0, 1, 4, 9, 16]

    def test_strict_reraises_exhausted_specs(self):
        with pytest.raises(RuntimeError, match="flake at 2"):
            run_tasks([SquareSpec(2)], flaky_worker, codec=SQUARE_CODEC, strict=True)

    def test_keep_going_reports_tombstones(self):
        result = run_tasks(
            [SquareSpec(2), SquareSpec(3)],
            flaky_worker,
            codec=SQUARE_CODEC,
            strict=False,
        )
        assert len(result.records) == 1
        assert result.records[0].squared == 9
        (failure,) = result.failures
        assert failure.spec.value == 2
        assert failure.error_type == "RuntimeError"

    def test_progress_events_use_the_duck_typed_label(self):
        events = []
        run_tasks(
            [SquareSpec(3, label="three")],
            square_worker,
            codec=SQUARE_CODEC,
            progress=events.append,
        )
        assert events == [{"kind": "completed", "label": "three", "attempt": 1}]

    def test_empty_specs_rejected(self):
        with pytest.raises(ValueError):
            run_tasks([], square_worker, codec=SQUARE_CODEC)


class TestCampaignWrapper:
    def test_run_specs_still_speaks_run_records(self):
        # The wrapper's codec is the campaign one; spot-check the seam
        # rather than re-running a campaign (test_pool covers that).
        import repro.runner.pool as pool

        assert pool.RUN_RECORD_CODEC is RUN_RECORD_CODEC
        assert run_specs.__module__ == "repro.runner.pool"

    def test_lazy_exports_resolve(self):
        import repro.runner as runner

        assert runner.run_tasks is run_tasks
        assert runner.TaskCodec is TaskCodec
        assert runner.RUN_RECORD_CODEC is RUN_RECORD_CODEC
