"""The telemetry acceptance guarantees, enforced at the runner layer:

- telemetry **off** (the default): records carry no telemetry key and
  stay byte-identical to the pre-telemetry layout;
- telemetry **on**: serial and parallel sweeps produce identical merged
  metric counts (wall-time fields excluded), and enabling telemetry
  never perturbs the simulation itself.
"""

import dataclasses
import datetime as dt
import json

from repro import ExperimentConfig
from repro.runner.local import run_recorded
from repro.runner.pool import sweep_records

UNTIL = dt.datetime(2010, 2, 24)


class TestDisabledIsInvisible:
    def test_record_json_has_no_telemetry_key(self):
        record = run_recorded(ExperimentConfig(seed=7), until=UNTIL)
        assert record.telemetry is None
        assert "telemetry" not in record.to_json_dict()
        assert '"telemetry"' not in record.canonical_json()

    def test_enabling_telemetry_does_not_perturb_the_run(self):
        plain = run_recorded(ExperimentConfig(seed=7), until=UNTIL)
        traced = run_recorded(ExperimentConfig(seed=7), until=UNTIL, telemetry=True)
        assert traced.telemetry is not None
        stripped = dataclasses.replace(traced, telemetry=None, elapsed_s=plain.elapsed_s)
        assert stripped == plain
        assert stripped.canonical_json() == plain.canonical_json()


class TestSerialParallelMergedCounts:
    def test_merged_metric_counts_identical(self):
        seeds = [7, 11]
        serial = sweep_records(seeds, until=UNTIL, jobs=1, telemetry=True)
        parallel = sweep_records(seeds, until=UNTIL, jobs=2, telemetry=True)
        merged_serial = serial.merged_telemetry()
        merged_parallel = parallel.merged_telemetry()
        # Snapshot equality excludes the per-span wall-time fields.
        assert merged_serial == merged_parallel
        assert merged_serial.counters == merged_parallel.counters
        assert merged_serial.span_counts == merged_parallel.span_counts
        assert merged_serial.gauges == merged_parallel.gauges
        assert merged_serial.histograms == merged_parallel.histograms
        # Per-record comparison also holds (snapshot eq ignores wall).
        assert serial.records == parallel.records
        # One runner.run span per seed survives the merge.
        assert merged_serial.span_count("runner.run") == len(seeds)

    def test_merged_telemetry_none_without_telemetry(self):
        result = sweep_records([7], until=UNTIL, jobs=1)
        assert result.merged_telemetry() is None


class TestCacheSeparation:
    def test_telemetry_and_plain_runs_never_share_entries(self, tmp_path):
        cache = str(tmp_path / "runs")
        plain = sweep_records([7], until=UNTIL, jobs=1, cache_dir=cache)
        traced = sweep_records(
            [7], until=UNTIL, jobs=1, cache_dir=cache, telemetry=True
        )
        assert plain.cache_misses == 1
        assert traced.cache_hits == 0 and traced.cache_misses == 1
        again = sweep_records(
            [7], until=UNTIL, jobs=1, cache_dir=cache, telemetry=True
        )
        assert again.cache_hits == 1
        assert again.records[0].telemetry is not None

    def test_cached_telemetry_round_trips(self, tmp_path):
        cache = str(tmp_path / "runs")
        first = sweep_records([7], until=UNTIL, jobs=1, cache_dir=cache, telemetry=True)
        second = sweep_records([7], until=UNTIL, jobs=1, cache_dir=cache, telemetry=True)
        assert second.records[0].telemetry == first.records[0].telemetry
        # The cache file itself is valid JSON with the telemetry payload.
        files = list((tmp_path / "runs").glob("*-telemetry.json"))
        assert len(files) == 1
        payload = json.loads(files[0].read_text())
        assert payload["telemetry"]["span_counts"]
