"""Tests for the simulated calendar clock."""

import datetime as dt

import pytest

from repro.sim.clock import DAY, HOUR, MINUTE, PAPER_EPOCH, SECOND, WEEK, SimClock


class TestConstants:
    def test_time_unit_relations(self):
        assert MINUTE == 60 * SECOND
        assert HOUR == 60 * MINUTE
        assert DAY == 24 * HOUR
        assert WEEK == 7 * DAY

    def test_paper_epoch_is_prototype_friday(self):
        assert PAPER_EPOCH == dt.datetime(2010, 2, 12)
        assert PAPER_EPOCH.weekday() == 4  # Friday


class TestConversions:
    def test_zero_maps_to_epoch(self, clock):
        assert clock.to_datetime(0.0) == PAPER_EPOCH

    def test_roundtrip_through_seconds(self, clock):
        when = dt.datetime(2010, 3, 7, 4, 40)  # host #15's first failure
        assert clock.to_datetime(clock.to_seconds(when)) == when

    def test_at_matches_to_seconds(self, clock):
        assert clock.at(2010, 3, 17, 12, 20) == clock.to_seconds(
            dt.datetime(2010, 3, 17, 12, 20)
        )

    def test_seconds_before_epoch_are_negative(self, clock):
        assert clock.to_seconds(dt.datetime(2010, 2, 11)) == -DAY

    def test_one_week_in(self, clock):
        assert clock.to_datetime(WEEK) == dt.datetime(2010, 2, 19)


class TestCalendarDecomposition:
    def test_hour_of_day_at_noon(self, clock):
        assert clock.hour_of_day(12 * HOUR) == pytest.approx(12.0)

    def test_hour_of_day_fractional(self, clock):
        assert clock.hour_of_day(4 * HOUR + 40 * MINUTE) == pytest.approx(4.0 + 40 / 60)

    def test_day_of_year_feb_12(self, clock):
        # Jan has 31 days; Feb 12 is day 31 + 12 = 43.
        assert clock.day_of_year(0.0) == pytest.approx(43.0)

    def test_day_index_counts_whole_days(self, clock):
        assert clock.day_index(0.0) == 0
        assert clock.day_index(DAY - 1) == 0
        assert clock.day_index(DAY) == 1

    def test_midnight_before_midday(self, clock):
        assert clock.midnight_before(10 * DAY + 13 * HOUR) == 10 * DAY

    def test_midnight_before_exact_midnight(self, clock):
        assert clock.midnight_before(3 * DAY) == 3 * DAY


class TestIterDays:
    def test_yields_each_midnight(self, clock):
        days = list(clock.iter_days(0.0, 3 * DAY))
        assert days == [0.0, DAY, 2 * DAY]

    def test_first_midnight_at_or_after_start(self, clock):
        days = list(clock.iter_days(HOUR, 2 * DAY))
        assert days == [DAY]

    def test_empty_interval(self, clock):
        assert list(clock.iter_days(HOUR, HOUR + MINUTE)) == []


class TestFormatting:
    def test_format_is_human_readable(self, clock):
        t = clock.at(2010, 3, 7, 4, 40)
        assert clock.format(t) == "2010-03-07 04:40"

    def test_repr_mentions_epoch(self, clock):
        assert "2010-02-12" in repr(clock)


class TestEquality:
    def test_same_epoch_clocks_are_equal(self):
        assert SimClock() == SimClock(PAPER_EPOCH)

    def test_different_epochs_differ(self):
        assert SimClock() != SimClock(dt.datetime(2011, 1, 1))

    def test_hashable(self):
        assert len({SimClock(), SimClock()}) == 1
