"""Units for the columnar fleet-state layer (sim/columns.py)."""

import numpy as np
import pytest

from repro.sim.columns import (
    ColumnAttr,
    EnumColumnAttr,
    FleetColumns,
    bind_object,
)


class Probe:
    """Minimal column-backed object for descriptor tests."""

    uptime_s = ColumnAttr("uptime_s", float)
    reset_count = ColumnAttr("reset_count", int)
    busy = ColumnAttr("cpu_busy", bool)

    def __init__(self):
        self.uptime_s = 0.0
        self.reset_count = 0
        self.busy = False


class TestColumnAttr:
    def test_unbound_falls_back_to_instance_slot(self):
        p = Probe()
        p.uptime_s = 42.5
        assert p.uptime_s == 42.5
        assert not hasattr(p, "_columns")

    def test_binding_preserves_preexisting_values(self):
        p = Probe()
        p.uptime_s = 7.0
        p.reset_count = 3
        p.busy = True
        cols = FleetColumns(capacity=2)
        index, _ = cols.add_host(1, 0)
        bind_object(p, cols, index)
        assert p.uptime_s == 7.0
        assert p.reset_count == 3
        assert p.busy is True
        assert cols.uptime_s[index] == 7.0

    def test_bound_writes_land_in_the_column(self):
        p = Probe()
        cols = FleetColumns(capacity=2)
        index, _ = cols.add_host(1, 0)
        bind_object(p, cols, index)
        p.uptime_s = 123.0
        assert cols.uptime_s[index] == 123.0
        cols.uptime_s[index] = 456.0
        assert p.uptime_s == 456.0

    def test_bound_reads_are_plain_python_scalars(self):
        p = Probe()
        cols = FleetColumns(capacity=2)
        bind_object(p, cols, cols.add_host(1, 0)[0])
        p.uptime_s = 1.5
        p.busy = True
        assert type(p.uptime_s) is float
        assert type(p.reset_count) is int
        assert type(p.busy) is bool


class TestFleetColumns:
    def test_add_host_rejects_duplicates(self):
        cols = FleetColumns(capacity=2)
        cols.add_host(4, 2)
        with pytest.raises(ValueError):
            cols.add_host(4, 1)

    def test_capacity_doubles_transparently(self):
        cols = FleetColumns(capacity=1, disk_capacity=1)
        indices = [cols.add_host(i, 3) for i in range(10)]
        assert [i for i, _ in indices] == list(range(10))
        # disk ranges are disjoint and consecutive
        starts = [s for _, s in indices]
        assert starts == [3 * i for i in range(10)]
        assert cols.uptime_s.shape[0] >= 10
        assert cols.disk_temp_c.shape[0] >= 30

    def test_growth_preserves_values(self):
        cols = FleetColumns(capacity=1)
        i0, _ = cols.add_host(0, 1)
        cols.uptime_s[i0] = 99.0
        for i in range(1, 20):
            cols.add_host(i, 1)
        assert cols.uptime_s[i0] == 99.0

    def test_index_of_maps_host_ids(self):
        cols = FleetColumns(capacity=4)
        for host_id in (14, 3, 7):
            cols.add_host(host_id, 0)
        assert cols.index_of[14] == 0
        assert cols.index_of[3] == 1
        assert cols.index_of[7] == 2

    def test_state_roundtrip_restores_scratch_columns(self):
        cols = FleetColumns(capacity=2)
        index, _ = cols.add_host(5, 1)
        cols.case_temp_c[index] = 33.25
        cols.cpu_temp_c[index] = 47.5
        blob = cols.state_dict()
        other = FleetColumns(capacity=2)
        other.add_host(5, 1)
        other.load_state_dict(blob)
        assert other.case_temp_c[index] == 33.25
        assert other.cpu_temp_c[index] == 47.5

    def test_columns_are_float64_int64_bool(self):
        cols = FleetColumns(capacity=2)
        assert cols.uptime_s.dtype == np.float64
        assert cols.host_state.dtype == np.int64
        assert cols.cpu_busy.dtype == np.bool_
        assert cols.disk_power_on_hours.dtype == np.float64


class TestEnumColumnAttr:
    def test_roundtrips_enum_values_through_int_codes(self):
        import enum

        class Mood(enum.Enum):
            CALM = "calm"
            GRUMPY = "grumpy"

        class Holder:
            mood = EnumColumnAttr("host_state", {Mood.CALM: 0, Mood.GRUMPY: 1})

            def __init__(self):
                self.mood = Mood.CALM

        h = Holder()
        assert h.mood is Mood.CALM
        cols = FleetColumns(capacity=1)
        bind_object(h, cols, cols.add_host(1, 0)[0])
        h.mood = Mood.GRUMPY
        assert cols.host_state[0] == 1
        assert h.mood is Mood.GRUMPY
