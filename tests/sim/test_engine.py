"""Tests for the discrete-event engine."""

import datetime as dt

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self, sim):
        order = []
        sim.schedule(30.0, lambda: order.append("late"))
        sim.schedule(10.0, lambda: order.append("early"))
        sim.run_until(100.0)
        assert order == ["early", "late"]

    def test_ties_break_by_scheduling_order(self, sim):
        order = []
        sim.schedule(10.0, lambda: order.append("first"))
        sim.schedule(10.0, lambda: order.append("second"))
        sim.run_until(100.0)
        assert order == ["first", "second"]

    def test_now_reflects_event_time_inside_callback(self, sim):
        seen = []
        sim.schedule(25.0, lambda: seen.append(sim.now))
        sim.run_until(100.0)
        assert seen == [25.0]

    def test_run_until_advances_clock_even_without_events(self, sim):
        sim.run_until(500.0)
        assert sim.now == 500.0

    def test_callback_may_schedule_at_current_instant(self, sim):
        order = []

        def outer():
            order.append("outer")
            sim.schedule(0.0, lambda: order.append("inner"))

        sim.schedule(10.0, outer)
        sim.run_until(100.0)
        assert order == ["outer", "inner"]

    def test_schedule_datetime(self, sim):
        seen = []
        sim.schedule_datetime(dt.datetime(2010, 2, 13), lambda: seen.append(sim.now))
        sim.run_until(3 * 86400.0)
        assert seen == [86400.0]

    def test_events_beyond_horizon_do_not_fire(self, sim):
        fired = []
        sim.schedule(100.0, lambda: fired.append(1))
        sim.run_until(99.0)
        assert fired == []
        sim.run_until(101.0)
        assert fired == [1]


class TestValidation:
    def test_scheduling_into_the_past_raises(self, sim):
        sim.run_until(50.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(10.0, lambda: None)

    def test_run_until_backwards_raises(self, sim):
        sim.run_until(50.0)
        with pytest.raises(SimulationError):
            sim.run_until(10.0)

    def test_reentrant_run_until_raises(self, sim):
        def bad():
            sim.run_until(100.0)

        sim.schedule(10.0, bad)
        with pytest.raises(SimulationError):
            sim.run_until(50.0)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        handle = sim.schedule(10.0, lambda: fired.append(1))
        handle.cancel()
        sim.run_until(100.0)
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        handle = sim.schedule(10.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_pending_count_ignores_cancelled(self, sim):
        h1 = sim.schedule(10.0, lambda: None)
        sim.schedule(20.0, lambda: None)
        h1.cancel()
        assert sim.pending_count == 1


class TestPeriodic:
    def test_every_fires_repeatedly(self, sim):
        ticks = []
        sim.every(10.0, lambda: ticks.append(sim.now))
        sim.run_until(35.0)
        assert ticks == [10.0, 20.0, 30.0]

    def test_every_with_explicit_start(self, sim):
        ticks = []
        sim.every(10.0, lambda: ticks.append(sim.now), start=5.0)
        sim.run_until(30.0)
        assert ticks == [5.0, 15.0, 25.0]

    def test_cancelling_control_handle_stops_recurrence(self, sim):
        ticks = []
        control = sim.every(10.0, lambda: ticks.append(sim.now))
        sim.run_until(25.0)
        control.cancel()
        sim.run_until(100.0)
        assert ticks == [10.0, 20.0]


class TestStepAndPeek:
    def test_peek_returns_next_time(self, sim):
        sim.schedule(42.0, lambda: None)
        assert sim.peek_time() == 42.0

    def test_peek_empty_returns_none(self, sim):
        assert sim.peek_time() is None

    def test_step_fires_single_event(self, sim):
        fired = []
        sim.schedule(10.0, lambda: fired.append(1))
        sim.schedule(20.0, lambda: fired.append(2))
        assert sim.step() is True
        assert fired == [1]
        assert sim.now == 10.0

    def test_step_on_empty_queue_returns_false(self, sim):
        assert sim.step() is False

    def test_run_drains_everything(self, sim):
        fired = []
        sim.schedule(10.0, lambda: fired.append(1))
        sim.schedule(20.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1, 2]

    def test_events_fired_counter(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.events_fired == 2


class TestFiredAndCancelledCounters:
    def test_cancelled_events_do_not_count_as_fired(self, sim):
        sim.schedule(1.0, lambda: None)
        handle = sim.schedule(2.0, lambda: None)
        handle.cancel()
        sim.run_until(10.0)
        assert sim.events_fired == 1
        assert sim.events_cancelled == 1

    def test_cancelled_counter_via_step_drain(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        assert sim.step() is False  # only a cancelled handle was queued
        assert sim.events_fired == 0
        assert sim.events_cancelled == 1

    def test_cancelled_counter_via_peek(self, sim):
        sim.schedule(1.0, lambda: None).cancel()
        sim.schedule(2.0, lambda: None)
        assert sim.peek_time() == 2.0
        assert sim.events_cancelled == 1
        assert sim.events_fired == 0

    def test_counters_start_at_zero(self, sim):
        assert sim.events_fired == 0
        assert sim.events_cancelled == 0

    def test_each_cancellation_counted_once(self, sim):
        handles = [sim.schedule(float(i), lambda: None) for i in range(1, 4)]
        for handle in handles:
            handle.cancel()
            handle.cancel()  # idempotent cancel must not double-count
        sim.run_until(10.0)
        assert sim.events_cancelled == 3
        assert sim.events_fired == 0

    def test_mixed_fired_and_cancelled(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2)).cancel()
        sim.schedule(3.0, lambda: fired.append(3))
        sim.run_until(10.0)
        assert fired == [1, 3]
        assert sim.events_fired == 2
        assert sim.events_cancelled == 1


class TestEventHandleContract:
    def test_cancel_is_idempotent_and_clears_callback(self, sim):
        handle = sim.schedule(10.0, lambda: None, label="x")
        assert handle.callback is not None
        handle.cancel()
        first_state = (handle.cancelled, handle.callback)
        handle.cancel()
        assert first_state == (handle.cancelled, handle.callback) == (True, None)

    def test_repr_pending_state(self, sim):
        handle = sim.schedule(90.0, lambda: None, label="webcam")
        assert repr(handle) == "EventHandle('webcam', at 90.0s)"

    def test_repr_cancelled_state(self, sim):
        handle = sim.schedule(90.0, lambda: None, label="webcam")
        handle.cancel()
        assert repr(handle) == "EventHandle('webcam', cancelled)"

    def test_same_instant_ties_break_by_scheduling_order(self, sim):
        # The determinism rule from the module docstring: ties in time
        # break by a monotone sequence number, never by label or hash.
        order = []
        for name in ("a", "b", "c", "d"):
            sim.schedule(10.0, lambda n=name: order.append(n), label=name)
        sim.run_until(10.0)
        assert order == ["a", "b", "c", "d"]

    def test_same_instant_spawned_events_run_after_existing_ties(self, sim):
        order = []

        def first():
            order.append("first")
            sim.schedule(0.0, lambda: order.append("spawned"))

        sim.schedule(10.0, first)
        sim.schedule(10.0, lambda: order.append("second"))
        sim.run_until(10.0)
        assert order == ["first", "second", "spawned"]

    def test_cancelling_a_tie_preserves_remaining_order(self, sim):
        order = []
        sim.schedule(10.0, lambda: order.append("a"))
        doomed = sim.schedule(10.0, lambda: order.append("b"))
        sim.schedule(10.0, lambda: order.append("c"))
        doomed.cancel()
        sim.run_until(10.0)
        assert order == ["a", "c"]


class TestEngineTracer:
    def test_tracer_records_span_per_fired_label(self, sim):
        from repro.telemetry import SpanTracer

        sim.tracer = SpanTracer()
        sim.schedule(1.0, lambda: None, label="tick")
        sim.schedule(2.0, lambda: None, label="tick")
        sim.schedule(3.0, lambda: None)
        sim.run_until(10.0)
        assert sim.tracer.counts() == {"engine.tick": 2, "engine.unlabeled": 1}

    def test_tracer_skips_cancelled_events(self, sim):
        from repro.telemetry import SpanTracer

        sim.tracer = SpanTracer()
        sim.schedule(1.0, lambda: None, label="tick").cancel()
        sim.run_until(10.0)
        assert sim.tracer.counts() == {}

    def test_tracer_records_even_when_callback_raises(self, sim):
        from repro.telemetry import SpanTracer

        sim.tracer = SpanTracer()

        def boom():
            raise RuntimeError("x")

        sim.schedule(1.0, boom, label="boom")
        with pytest.raises(RuntimeError):
            sim.run_until(10.0)
        assert sim.tracer.counts() == {"engine.boom": 1}
