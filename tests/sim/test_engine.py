"""Tests for the discrete-event engine."""

import datetime as dt

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self, sim):
        order = []
        sim.schedule(30.0, lambda: order.append("late"))
        sim.schedule(10.0, lambda: order.append("early"))
        sim.run_until(100.0)
        assert order == ["early", "late"]

    def test_ties_break_by_scheduling_order(self, sim):
        order = []
        sim.schedule(10.0, lambda: order.append("first"))
        sim.schedule(10.0, lambda: order.append("second"))
        sim.run_until(100.0)
        assert order == ["first", "second"]

    def test_now_reflects_event_time_inside_callback(self, sim):
        seen = []
        sim.schedule(25.0, lambda: seen.append(sim.now))
        sim.run_until(100.0)
        assert seen == [25.0]

    def test_run_until_advances_clock_even_without_events(self, sim):
        sim.run_until(500.0)
        assert sim.now == 500.0

    def test_callback_may_schedule_at_current_instant(self, sim):
        order = []

        def outer():
            order.append("outer")
            sim.schedule(0.0, lambda: order.append("inner"))

        sim.schedule(10.0, outer)
        sim.run_until(100.0)
        assert order == ["outer", "inner"]

    def test_schedule_datetime(self, sim):
        seen = []
        sim.schedule_datetime(dt.datetime(2010, 2, 13), lambda: seen.append(sim.now))
        sim.run_until(3 * 86400.0)
        assert seen == [86400.0]

    def test_events_beyond_horizon_do_not_fire(self, sim):
        fired = []
        sim.schedule(100.0, lambda: fired.append(1))
        sim.run_until(99.0)
        assert fired == []
        sim.run_until(101.0)
        assert fired == [1]


class TestValidation:
    def test_scheduling_into_the_past_raises(self, sim):
        sim.run_until(50.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(10.0, lambda: None)

    def test_run_until_backwards_raises(self, sim):
        sim.run_until(50.0)
        with pytest.raises(SimulationError):
            sim.run_until(10.0)

    def test_reentrant_run_until_raises(self, sim):
        def bad():
            sim.run_until(100.0)

        sim.schedule(10.0, bad)
        with pytest.raises(SimulationError):
            sim.run_until(50.0)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        handle = sim.schedule(10.0, lambda: fired.append(1))
        handle.cancel()
        sim.run_until(100.0)
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        handle = sim.schedule(10.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_pending_count_ignores_cancelled(self, sim):
        h1 = sim.schedule(10.0, lambda: None)
        sim.schedule(20.0, lambda: None)
        h1.cancel()
        assert sim.pending_count == 1


class TestPeriodic:
    def test_every_fires_repeatedly(self, sim):
        ticks = []
        sim.every(10.0, lambda: ticks.append(sim.now))
        sim.run_until(35.0)
        assert ticks == [10.0, 20.0, 30.0]

    def test_every_with_explicit_start(self, sim):
        ticks = []
        sim.every(10.0, lambda: ticks.append(sim.now), start=5.0)
        sim.run_until(30.0)
        assert ticks == [5.0, 15.0, 25.0]

    def test_cancelling_control_handle_stops_recurrence(self, sim):
        ticks = []
        control = sim.every(10.0, lambda: ticks.append(sim.now))
        sim.run_until(25.0)
        control.cancel()
        sim.run_until(100.0)
        assert ticks == [10.0, 20.0]


class TestStepAndPeek:
    def test_peek_returns_next_time(self, sim):
        sim.schedule(42.0, lambda: None)
        assert sim.peek_time() == 42.0

    def test_peek_empty_returns_none(self, sim):
        assert sim.peek_time() is None

    def test_step_fires_single_event(self, sim):
        fired = []
        sim.schedule(10.0, lambda: fired.append(1))
        sim.schedule(20.0, lambda: fired.append(2))
        assert sim.step() is True
        assert fired == [1]
        assert sim.now == 10.0

    def test_step_on_empty_queue_returns_false(self, sim):
        assert sim.step() is False

    def test_run_drains_everything(self, sim):
        fired = []
        sim.schedule(10.0, lambda: fired.append(1))
        sim.schedule(20.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1, 2]

    def test_events_fired_counter(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.events_fired == 2
