"""Heap hygiene: tombstone compaction keeps long runs bounded.

A campaign that schedules and cancels events for months must not let
cancelled tombstones accumulate in the priority queue.  The engine
sweeps the heap when more than half of it is dead; these tests drive a
million-operation schedule/cancel workload and assert the queue stays
bounded, and that the compaction count surfaces in the telemetry
snapshot of a real campaign run.
"""

import datetime as dt

from repro.core.builder import CampaignBuilder
from repro.core.config import ExperimentConfig
from repro.sim.clock import SimClock
from repro.sim.engine import Simulator
from repro.telemetry import Telemetry


class TestHeapBounded:
    def test_million_op_cancel_heavy_run_keeps_heap_bounded(self):
        sim = Simulator(SimClock())
        live = []
        fired = []
        peak = 0
        # 500k schedules + ~500k cancels = a million heap operations,
        # with only ~16 events ever truly pending.
        for i in range(500_000):
            live.append(sim.schedule_at(1e9 + i, lambda i=i: fired.append(i)))
            if len(live) > 16:
                live.pop(0).cancel()
            if i % 4096 == 0:
                peak = max(peak, len(sim._queue))
        peak = max(peak, len(sim._queue))
        assert sim.heap_compactions > 0
        # Bounded means proportional to the live set, not the op count.
        assert peak < 1000
        # The survivors still fire in order.
        sim.run_until(2e9)
        assert len(fired) == 16

    def test_compaction_preserves_event_order(self):
        sim = Simulator(SimClock())
        seen = []
        handles = [
            sim.schedule_at(float(t), lambda t=t: seen.append(t))
            for t in range(1, 2000)
        ]
        for h in handles[::2]:
            h.cancel()
        assert sim.heap_compactions >= 0  # cancellation may or may not sweep yet
        sim.run_until(3000.0)
        assert seen == [t for t in range(1, 2000) if t % 2 == 0]


class TestHeapTelemetry:
    def test_heap_compactions_exposed_in_telemetry_snapshot(self):
        telemetry = Telemetry()
        campaign = (
            CampaignBuilder(ExperimentConfig(seed=7))
            .with_telemetry(telemetry)
            .build()
        )
        campaign.run(until=dt.datetime(2010, 2, 22, 12, 0))
        gauges = telemetry.metrics.to_json_dict()["gauges"]
        assert "engine.heap_compactions" in gauges
        assert gauges["engine.heap_compactions"] == float(
            campaign.sim.heap_compactions
        )
