"""Heap hygiene: tombstone compaction keeps long runs bounded.

A campaign that schedules and cancels events for months must not let
cancelled tombstones accumulate in the priority queue.  The engine
sweeps the heap when more than half of it is dead; these tests drive a
million-operation schedule/cancel workload and assert the queue stays
bounded, and that the compaction count surfaces in the telemetry
snapshot of a real campaign run.
"""

import datetime as dt

from repro.core.builder import CampaignBuilder
from repro.core.config import ExperimentConfig
from repro.sim.clock import SimClock
from repro.sim.engine import Simulator
from repro.telemetry import Telemetry


class TestHeapBounded:
    def test_million_op_cancel_heavy_run_keeps_heap_bounded(self):
        sim = Simulator(SimClock())
        live = []
        fired = []
        peak = 0
        # 500k schedules + ~500k cancels = a million heap operations,
        # with only ~16 events ever truly pending.
        for i in range(500_000):
            live.append(sim.schedule_at(1e9 + i, lambda i=i: fired.append(i)))
            if len(live) > 16:
                live.pop(0).cancel()
            if i % 4096 == 0:
                peak = max(peak, len(sim._queue))
        peak = max(peak, len(sim._queue))
        assert sim.heap_compactions > 0
        # Bounded means proportional to the live set, not the op count.
        assert peak < 1000
        # The survivors still fire in order.
        sim.run_until(2e9)
        assert len(fired) == 16

    def test_compaction_preserves_event_order(self):
        sim = Simulator(SimClock())
        seen = []
        handles = [
            sim.schedule_at(float(t), lambda t=t: seen.append(t))
            for t in range(1, 2000)
        ]
        for h in handles[::2]:
            h.cancel()
        assert sim.heap_compactions >= 0  # cancellation may or may not sweep yet
        sim.run_until(3000.0)
        assert seen == [t for t in range(1, 2000) if t % 2 == 0]


class TestMassCancellation:
    """A staged load-shed abandons thousands of per-host pending
    occurrences at once; the heap must compact the tombstones away and
    the survivors must fire exactly as if the dead entries had never
    been scheduled."""

    N_HOSTS = 4000
    PERIOD = 300.0

    @staticmethod
    def _pending_ticks(sim, hosts, fired, at):
        """One queued keyed occurrence per host -- the shape of a
        fleet's next tick wave."""
        return [
            sim.schedule_at_key(at, "host.tick", args=(h,), label=f"host-{h}")
            for h in hosts
        ]

    def test_staged_shed_compacts_and_keeps_draw_order(self):
        sim = Simulator(SimClock())
        fired = []
        sim.register("host.tick", lambda h: fired.append(h))
        handles = self._pending_ticks(
            sim, range(self.N_HOSTS), fired, self.PERIOD
        )
        before = len(sim._queue)
        assert before == self.N_HOSTS
        # Two shed stages: half the fleet, then half the remainder.
        for h in handles[: self.N_HOSTS // 2]:
            h.cancel()
        for h in handles[self.N_HOSTS // 2 : 3 * self.N_HOSTS // 4]:
            h.cancel()
        assert sim.heap_compactions > 0
        # Compaction reclaims the tombstones instead of letting the
        # queue carry ~3000 dead entries to the next draw.
        assert len(sim._queue) <= before - self.N_HOSTS // 2
        sim.run_until(2 * self.PERIOD)
        survivors = list(range(3 * self.N_HOSTS // 4, self.N_HOSTS))
        assert fired == survivors

        # Draw-order oracle: a sim that only ever had the survivors.
        oracle = Simulator(SimClock())
        oracle_fired = []
        oracle.register("host.tick", lambda h: oracle_fired.append(h))
        self._pending_ticks(oracle, survivors, oracle_fired, self.PERIOD)
        oracle.run_until(2 * self.PERIOD)
        assert fired == oracle_fired

    def test_periodic_mass_cancel_drains_without_tombstones(self):
        # PeriodicTask.cancel is a table flag: the queued occurrence
        # fires lame-duck and simply stops rescheduling, so a mass
        # cancellation of per-host periodic keys drains the queue by
        # itself -- no tombstone pile-up, no compaction needed.
        sim = Simulator(SimClock())
        fired = []
        sim.register("host.tick", lambda h: fired.append(h))
        tasks = [
            sim.every_key(
                self.PERIOD, "host.tick", args=(h,), start=self.PERIOD,
                label=f"host-{h}",
            )
            for h in range(self.N_HOSTS)
        ]
        for task in tasks[self.N_HOSTS // 4 :]:
            task.cancel()
        sim.run_until(2 * self.PERIOD + 1.0)
        # The lame-duck wave fired once; after it only survivors remain.
        assert len(sim._queue) == self.N_HOSTS // 4
        fired.clear()
        sim.run_until(3 * self.PERIOD + 1.0)
        assert fired == list(range(self.N_HOSTS // 4))


class TestHeapTelemetry:
    def test_heap_compactions_exposed_in_telemetry_snapshot(self):
        telemetry = Telemetry()
        campaign = (
            CampaignBuilder(ExperimentConfig(seed=7))
            .with_telemetry(telemetry)
            .build()
        )
        campaign.run(until=dt.datetime(2010, 2, 22, 12, 0))
        gauges = telemetry.metrics.to_json_dict()["gauges"]
        assert "engine.heap_compactions" in gauges
        assert gauges["engine.heap_compactions"] == float(
            campaign.sim.heap_compactions
        )
