"""Snapshot/restore of the discrete-event engine.

The engine only serialises *key-registered* work: every queue entry is
re-materialised from ``(key, args)`` against the registry of the
restoring process, never by pickling a closure.  These tests pin the
round-trip contract, the live-closure refusal, and the cancelled-entry
heap compaction that keeps long campaigns from dragging tombstones.
"""

import pytest

from repro.sim.engine import SimulationError, Simulator


def _twin(log):
    """A simulator whose registered callbacks append to ``log``."""
    sim = Simulator()
    sim.register("tick", lambda tag: log.append((sim.now, "tick", tag)))
    sim.register("beat", lambda: log.append((sim.now, "beat")))
    return sim


class TestRoundTrip:
    def test_pending_events_rematerialise(self):
        log1, log2 = [], []
        sim1 = _twin(log1)
        sim1.schedule_key(10.0, "tick", args=("a",), label="tick-a")
        sim1.schedule_key(30.0, "tick", args=("b",), label="tick-b")
        sim1.schedule_key(50.0, "beat", label="beat")
        sim1.run_until(20.0)

        sim2 = _twin(log2)
        sim2.load_state_dict(sim1.state_dict())
        assert sim2.now == 20.0
        assert sim2.pending_count == sim1.pending_count

        sim1.run_until(100.0)
        sim2.run_until(100.0)
        assert log2 == [entry for entry in log1 if entry[0] > 20.0]

    def test_tie_break_order_survives(self):
        log1, log2 = [], []
        sim1 = _twin(log1)
        for tag in ("first", "second", "third"):
            sim1.schedule_key(10.0, "tick", args=(tag,))
        sim2 = _twin(log2)
        sim2.load_state_dict(sim1.state_dict())
        sim1.run_until(20.0)
        sim2.run_until(20.0)
        assert log1 == log2 == [
            (10.0, "tick", "first"),
            (10.0, "tick", "second"),
            (10.0, "tick", "third"),
        ]

    def test_counters_survive(self):
        sim1 = _twin([])
        sim1.schedule_key(5.0, "beat")
        handle = sim1.schedule_key(15.0, "beat")
        handle.cancel()
        sim1.run_until(10.0)
        sim2 = _twin([])
        sim2.load_state_dict(sim1.state_dict())
        assert sim2.events_fired == sim1.events_fired
        assert sim2.events_cancelled == sim1.events_cancelled
        assert sim2.heap_compactions == sim1.heap_compactions

    def test_periodic_task_resumes_cadence(self):
        log1, log2 = [], []
        sim1 = _twin(log1)
        sim1.every_key(10.0, "beat", start=5.0, label="heartbeat")
        sim1.run_until(17.0)

        sim2 = _twin(log2)
        sim2.load_state_dict(sim1.state_dict())
        sim1.run_until(40.0)
        sim2.run_until(40.0)
        assert [t for t, *_ in log1] == [5.0, 15.0, 25.0, 35.0]
        assert log2 == [entry for entry in log1 if entry[0] > 17.0]

    def test_cancelled_periodic_task_stays_cancelled(self):
        log = []
        sim1 = _twin([])
        task = sim1.every_key(10.0, "beat", start=5.0)
        sim1.run_until(7.0)
        task.cancel()

        sim2 = _twin(log)
        sim2.load_state_dict(sim1.state_dict())
        sim2.run_until(100.0)
        assert log == []
        assert sim2.periodic_task(task.task_id).cancelled

    def test_load_replaces_construction_time_schedules(self):
        """The snapshot is the whole truth: stray schedules are wiped."""
        log = []
        sim1 = _twin([])
        sim1.schedule_key(30.0, "beat")

        sim2 = _twin(log)
        sim2.schedule_key(10.0, "tick", args=("stray",))
        sim2.load_state_dict(sim1.state_dict())
        sim2.run_until(100.0)
        assert log == [(30.0, "beat")]


class TestRefusals:
    def test_live_closure_blocks_snapshot(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None, label="raw-closure")
        with pytest.raises(SimulationError, match="raw-closure"):
            sim.state_dict()

    def test_cancelled_closure_tombstone_is_fine(self):
        sim = Simulator()
        handle = sim.schedule(10.0, lambda: None, label="doomed")
        handle.cancel()
        state = sim.state_dict()
        sim2 = Simulator()
        sim2.load_state_dict(state)
        sim2.run_until(100.0)
        assert sim2.events_fired == 0

    def test_unregistered_key_blocks_load(self):
        sim1 = Simulator()
        sim1.register("known", lambda: None)
        sim1.schedule_key(10.0, "known")
        state = sim1.state_dict()
        sim2 = Simulator()
        with pytest.raises(SimulationError, match="known"):
            sim2.load_state_dict(state)

    def test_version_mismatch_blocks_load(self):
        sim = Simulator()
        state = sim.state_dict()
        state["version"] = 99
        with pytest.raises(SimulationError, match="version"):
            Simulator().load_state_dict(state)

    def test_schedule_key_requires_registration(self):
        sim = Simulator()
        with pytest.raises(SimulationError, match="unknown"):
            sim.schedule_key(10.0, "unknown")


class TestHeapCompaction:
    def test_majority_cancelled_triggers_compaction(self):
        sim = Simulator()
        sim.register("noop", lambda i: None)
        handles = [sim.schedule_key(float(i + 1), "noop", args=(i,)) for i in range(16)]
        assert sim.heap_compactions == 0
        for handle in handles[:12]:
            handle.cancel()
        assert sim.heap_compactions >= 1
        assert sim.pending_count == 4

    def test_survivors_fire_in_order_after_compaction(self):
        fired = []
        sim = Simulator()
        sim.register("noop", lambda i: fired.append(i))
        handles = [sim.schedule_key(float(i + 1), "noop", args=(i,)) for i in range(16)]
        for handle in handles[:12]:
            handle.cancel()
        sim.run_until(100.0)
        assert fired == [12, 13, 14, 15]
        assert sim.events_cancelled == 12

    def test_small_queues_never_compact(self):
        sim = Simulator()
        sim.register("noop", lambda: None)
        handles = [sim.schedule_key(float(i + 1), "noop") for i in range(4)]
        for handle in handles:
            handle.cancel()
        assert sim.heap_compactions == 0

    def test_compaction_counter_round_trips(self):
        sim = Simulator()
        sim.register("noop", lambda i: None)
        handles = [sim.schedule_key(float(i + 1), "noop", args=(i,)) for i in range(16)]
        for handle in handles[:12]:
            handle.cancel()
        compactions = sim.heap_compactions
        assert compactions >= 1
        sim2 = Simulator()
        sim2.register("noop", lambda i: None)
        sim2.load_state_dict(sim.state_dict())
        assert sim2.heap_compactions == compactions
