"""Tests for the campaign event bus."""

import pytest

from repro.climate.generator import WeatherGenerator
from repro.climate.profiles import HELSINKI_2010
from repro.hardware.faults import FaultKind, FaultLog, TransientFaultModel
from repro.hardware.host import Host, HostState
from repro.hardware.vendors import VENDOR_A
from repro.sim.clock import SimClock
from repro.sim.events import (
    Event,
    EventBus,
    EventRecorder,
    HostFailed,
    HostInstalled,
    SensorLatched,
    SnapshotTaken,
    SwitchDied,
    TentModified,
    WrongHash,
)
from repro.sim.rng import RngStreams
from repro.thermal.enclosure import BasementMachineRoom


class TestDispatch:
    def test_exact_type_dispatch(self):
        bus = EventBus()
        seen = []
        bus.subscribe(HostFailed, seen.append)
        bus.publish(HostFailed(time=1.0, host_id=15))
        bus.publish(WrongHash(time=2.0, host_id=3))
        assert len(seen) == 1
        assert seen[0].host_id == 15

    def test_wildcard_subscriber_sees_everything(self):
        bus = EventBus()
        seen = []
        bus.subscribe(Event, seen.append)
        bus.publish(HostFailed(time=1.0, host_id=15))
        bus.publish(SwitchDied(time=2.0, switch_name="tent-sw1"))
        assert [type(e).__name__ for e in seen] == ["HostFailed", "SwitchDied"]

    def test_exact_subscribers_run_before_wildcards(self):
        bus = EventBus()
        order = []
        bus.subscribe(Event, lambda e: order.append("wildcard"))
        bus.subscribe(HostFailed, lambda e: order.append("exact"))
        bus.publish(HostFailed(time=1.0, host_id=1))
        assert order == ["exact", "wildcard"]

    def test_subscription_order_within_type(self):
        bus = EventBus()
        order = []
        bus.subscribe(HostFailed, lambda e: order.append("first"))
        bus.subscribe(HostFailed, lambda e: order.append("second"))
        bus.publish(HostFailed(time=1.0, host_id=1))
        assert order == ["first", "second"]

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        seen = []
        handler = bus.subscribe(HostFailed, seen.append)
        bus.publish(HostFailed(time=1.0, host_id=1))
        bus.unsubscribe(HostFailed, handler)
        bus.publish(HostFailed(time=2.0, host_id=2))
        assert len(seen) == 1

    def test_non_event_subscription_rejected(self):
        bus = EventBus()
        with pytest.raises(TypeError):
            bus.subscribe(int, print)

    def test_publish_tallies_counts(self):
        bus = EventBus()
        bus.publish(HostFailed(time=1.0, host_id=1))
        bus.publish(HostFailed(time=2.0, host_id=2))
        bus.publish(SwitchDied(time=3.0, switch_name="x"))
        assert bus.counts == {"HostFailed": 2, "SwitchDied": 1}


class TestRecorder:
    def test_records_in_publish_order(self):
        bus = EventBus()
        recorder = EventRecorder()
        recorder.attach(bus)
        bus.publish(HostFailed(time=1.0, host_id=1))
        bus.publish(WrongHash(time=2.0, host_id=2))
        assert len(recorder) == 2
        assert [type(e).__name__ for e in recorder] == ["HostFailed", "WrongHash"]
        assert recorder.counts() == {"HostFailed": 1, "WrongHash": 1}

    def test_of_type_filters(self):
        bus = EventBus()
        recorder = EventRecorder()
        recorder.attach(bus)
        bus.publish(HostFailed(time=1.0, host_id=1))
        bus.publish(WrongHash(time=2.0, host_id=2))
        assert [e.host_id for e in recorder.of_type(WrongHash)] == [2]

    def test_detach_stops_recording(self):
        bus = EventBus()
        recorder = EventRecorder()
        recorder.attach(bus)
        bus.publish(HostFailed(time=1.0, host_id=1))
        recorder.detach(bus)
        bus.publish(HostFailed(time=2.0, host_id=2))
        assert len(recorder) == 1


def _doomed_host(bus):
    """A running host whose next tick is (almost surely) fatal."""
    weather = WeatherGenerator(HELSINKI_2010, RngStreams(1))
    basement = BasementMachineRoom("basement", weather)
    basement.advance(SimClock().at(2010, 2, 19))
    host = Host(
        15, VENDOR_A, RngStreams(1),
        transient_model=TransientFaultModel(base_rate_per_hour=1e9),
        bus=bus,
    )
    host.install(basement, 0.0)
    return host


class TestPublisherWiring:
    def test_forced_failure_publishes_exactly_one_host_failed(self):
        bus = EventBus()
        fault_log = FaultLog()
        fault_log.attach_bus(bus)
        recorder = EventRecorder()
        recorder.attach(bus)
        host = _doomed_host(bus)
        host.tick(300.0, 300.0, fault_log)
        assert host.state is HostState.FAILED
        failures = recorder.of_type(HostFailed)
        assert len(failures) == 1
        assert failures[0].host_id == 15
        # The subscribed fault log converted it into the census entry.
        assert len(fault_log.of_kind(FaultKind.TRANSIENT_SYSTEM)) == 1
        assert fault_log.events[0].host_id == 15

    def test_bus_and_direct_record_paths_match(self):
        bus = EventBus()
        bus_log = FaultLog()
        bus_log.attach_bus(bus)
        published = _doomed_host(bus)
        published.tick(300.0, 300.0, bus_log)

        direct_log = FaultLog()
        direct = _doomed_host(None)
        direct.tick(300.0, 300.0, direct_log)

        assert bus_log.events == direct_log.events

    def test_failed_host_stops_publishing(self):
        bus = EventBus()
        recorder = EventRecorder()
        recorder.attach(bus)
        host = _doomed_host(bus)
        host.tick(300.0, 300.0, None)
        host.tick(300.0, 600.0, None)  # already down: no second event
        assert len(recorder.of_type(HostFailed)) == 1


class TestEndToEnd:
    def test_full_campaign_event_census(self, full_results):
        counts = full_results.event_counts()
        # All five scheduled tent modifications (R, I, B, F, door).
        assert counts.get("TentModified") == 5
        assert counts.get("SnapshotTaken") == 1
        # 18 initial installs plus the #19 replacement.
        assert counts.get("HostInstalled", 0) >= 18
        assert counts.get("WrongHash", 0) == full_results.ledger.total_wrong_hashes

    def test_events_property_ordered_by_time(self, full_results):
        events = full_results.events
        assert events, "a full campaign publishes events"
        kinds = {type(e).__name__ for e in events}
        assert "HostInstalled" in kinds
        assert [e.time for e in events if isinstance(e, (TentModified, SnapshotTaken))] == sorted(
            e.time for e in events if isinstance(e, (TentModified, SnapshotTaken))
        )

    def test_sensor_latch_published(self, full_results):
        # Seed 7 reproduces the paper's February sensor latch-up.
        latched = full_results.event_counts().get("SensorLatched", 0)
        assert latched >= 1
        hosts_latched = sum(
            1 for h in full_results.fleet.hosts.values() if h.sensor.ever_latched
        )
        assert latched == hosts_latched

    def test_host_installed_carries_group(self, full_results):
        installs = [e for e in full_results.events if isinstance(e, HostInstalled)]
        groups = {e.group for e in installs}
        assert {"tent", "basement"} <= groups
        assert all(e.enclosure in ("tent", "basement") for e in installs)
