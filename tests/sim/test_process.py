"""Tests for generator-based simulated processes."""

import pytest

from repro.sim.engine import SimulationError
from repro.sim.process import Process, wait_until


class TestBasicExecution:
    def test_body_runs_to_first_yield_immediately(self, sim):
        log = []

        def body():
            log.append("started")
            yield 10.0

        Process(sim, body())
        assert log == ["started"]

    def test_yield_sleeps_for_delay(self, sim):
        log = []

        def body():
            yield 10.0
            log.append(sim.now)
            yield 5.0
            log.append(sim.now)

        Process(sim, body())
        sim.run_until(100.0)
        assert log == [10.0, 15.0]

    def test_wait_until_resumes_at_absolute_time(self, sim):
        log = []

        def body():
            yield wait_until(42.0)
            log.append(sim.now)

        Process(sim, body())
        sim.run_until(100.0)
        assert log == [42.0]

    def test_integer_delays_accepted(self, sim):
        log = []

        def body():
            yield 7
            log.append(sim.now)

        Process(sim, body())
        sim.run_until(100.0)
        assert log == [7.0]

    def test_finishes_when_generator_returns(self, sim):
        def body():
            yield 1.0

        proc = Process(sim, body())
        assert proc.alive
        sim.run_until(100.0)
        assert not proc.alive

    def test_infinite_loop_stays_alive(self, sim):
        def body():
            while True:
                yield 10.0

        proc = Process(sim, body())
        sim.run_until(1000.0)
        assert proc.alive


class TestStop:
    def test_stop_cancels_pending_sleep(self, sim):
        log = []

        def body():
            yield 10.0
            log.append("resumed")

        proc = Process(sim, body())
        proc.stop()
        sim.run_until(100.0)
        assert log == []
        assert not proc.alive

    def test_stop_is_idempotent(self, sim):
        def body():
            yield 10.0

        proc = Process(sim, body())
        proc.stop()
        proc.stop()
        assert not proc.alive


class TestValidation:
    def test_negative_sleep_raises(self, sim):
        def body():
            yield -1.0

        with pytest.raises(SimulationError):
            Process(sim, body())

    def test_invalid_yield_value_raises(self, sim):
        def body():
            yield "soon"  # type: ignore[misc]

        with pytest.raises(SimulationError):
            Process(sim, body())

    def test_repr_shows_name_and_state(self, sim):
        def body():
            yield 1.0

        proc = Process(sim, body(), name="archiver.host01")
        assert "archiver.host01" in repr(proc)
        assert "alive" in repr(proc)
