"""Tests for named deterministic RNG streams."""

import numpy as np
import pytest

from repro.sim.rng import RngStreams


class TestDeterminism:
    def test_same_seed_same_name_same_draws(self):
        a = RngStreams(42).stream("climate.noise")
        b = RngStreams(42).stream("climate.noise")
        assert np.array_equal(a.normal(size=16), b.normal(size=16))

    def test_different_seeds_differ(self):
        a = RngStreams(1).stream("x")
        b = RngStreams(2).stream("x")
        assert not np.array_equal(a.normal(size=16), b.normal(size=16))

    def test_different_names_differ(self):
        streams = RngStreams(42)
        a = streams.stream("weather").normal(size=16)
        b = streams.stream("faults").normal(size=16)
        assert not np.array_equal(a, b)

    def test_stream_identity_independent_of_creation_order(self):
        forward = RngStreams(7)
        forward.stream("first")
        f_second = forward.stream("second").normal(size=8)

        backward = RngStreams(7)
        b_second = backward.stream("second").normal(size=8)
        assert np.array_equal(f_second, b_second)


class TestCaching:
    def test_same_name_returns_same_object(self):
        streams = RngStreams(0)
        assert streams.stream("a") is streams.stream("a")

    def test_draws_consume_shared_state(self):
        streams = RngStreams(0)
        first = streams.stream("a").random()
        second = streams.stream("a").random()
        assert first != second


class TestSpawn:
    def test_children_are_independent_of_parent(self):
        parent = RngStreams(9)
        child = parent.spawn("host.01")
        p = parent.stream("memory").normal(size=8)
        c = child.stream("memory").normal(size=8)
        assert not np.array_equal(p, c)

    def test_children_with_different_names_differ(self):
        parent = RngStreams(9)
        a = parent.spawn("host.01").stream("memory").normal(size=8)
        b = parent.spawn("host.02").stream("memory").normal(size=8)
        assert not np.array_equal(a, b)

    def test_spawn_is_deterministic(self):
        a = RngStreams(9).spawn("host.01").stream("memory").normal(size=8)
        b = RngStreams(9).spawn("host.01").stream("memory").normal(size=8)
        assert np.array_equal(a, b)

    def test_fork_seed_stable(self):
        assert RngStreams(9).fork_seed("x") == RngStreams(9).fork_seed("x")
        assert RngStreams(9).fork_seed("x") != RngStreams(9).fork_seed("y")


class TestValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            RngStreams(0).stream("")

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngStreams("seven")  # type: ignore[arg-type]

    def test_numpy_integer_seed_accepted(self):
        streams = RngStreams(np.int64(5))
        assert streams.master_seed == 5

    def test_repr_lists_created_streams(self):
        streams = RngStreams(3)
        streams.stream("beta")
        streams.stream("alpha")
        assert "alpha" in repr(streams) and "beta" in repr(streams)
