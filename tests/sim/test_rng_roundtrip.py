"""Property-style snapshot/restore tests for the named RNG streams.

The invariant: wherever a snapshot is cut, a restored family replays
exactly the draws the original family would have made next -- for every
stream, for spawned child families, and regardless of how many draws
happened before the cut.  Plus a source scan proving no module in the
package leans on the process-global RNG state (which no snapshot could
capture).
"""

import json
import pathlib
import re

import pytest

from repro.sim.rng import RngStreams
from repro.state.protocol import StateError

STREAMS = ("climate.noise", "hardware.faults", "workload.fuzz")


def _draws(family: RngStreams, n: int):
    """A deterministic fingerprint of the next ``n`` draws of each stream."""
    return {
        name: family.stream(name).random(n).tolist() for name in STREAMS
    }


class TestRoundTrip:
    @pytest.mark.parametrize("warmup", [0, 1, 7, 32, 1000])
    def test_tail_identical_regardless_of_cut_point(self, warmup):
        family = RngStreams(7)
        for name in STREAMS:
            family.stream(name).random(warmup)
        state = family.state_dict()
        expected = _draws(family, 16)

        restored = RngStreams(7)
        restored.load_state_dict(state)
        assert _draws(restored, 16) == expected

    def test_state_is_json_serialisable(self):
        family = RngStreams(7)
        family.stream("a").random(3)
        family.spawn("child").stream("b").random(5)
        state = family.state_dict()
        assert json.loads(json.dumps(state)) == state

    def test_children_round_trip(self):
        family = RngStreams(7)
        for host in ("host.00", "host.07"):
            family.spawn(host).stream("psu").random(11)
        state = family.state_dict()
        expected = {
            host: family.spawn(host).stream("psu").random(8).tolist()
            for host in ("host.00", "host.07")
        }
        restored = RngStreams(7)
        restored.load_state_dict(state)
        for host, tail in expected.items():
            assert restored.spawn(host).stream("psu").random(8).tolist() == tail

    def test_child_derivation_is_order_independent(self):
        a = RngStreams(7)
        a.stream("x").random(100)  # parent draws never leak into children
        b = RngStreams(7)
        assert (
            a.spawn("host.03").stream("psu").random(4).tolist()
            == b.spawn("host.03").stream("psu").random(4).tolist()
        )

    def test_streams_created_after_snapshot_keep_fresh_positions(self):
        family = RngStreams(7)
        family.stream("old").random(5)
        state = family.state_dict()

        restored = RngStreams(7)
        restored.stream("new")  # created during reconstruction, no draws
        restored.load_state_dict(state)
        fresh = RngStreams(7)
        assert (
            restored.stream("new").random(4).tolist()
            == fresh.stream("new").random(4).tolist()
        )

    def test_snapshot_then_more_draws_diverges(self):
        """The snapshot captures a position, not a frozen sequence."""
        family = RngStreams(7)
        state = family.state_dict()
        before = _draws(family, 4)
        restored = RngStreams(7)
        restored.load_state_dict(state)
        restored_draws = _draws(restored, 4)
        assert restored_draws == before
        assert _draws(restored, 4) != before  # positions advanced

    def test_master_seed_mismatch_rejected(self):
        family = RngStreams(7)
        state = family.state_dict()
        with pytest.raises(StateError, match="master seed"):
            RngStreams(8).load_state_dict(state)

    def test_version_mismatch_rejected(self):
        family = RngStreams(7)
        state = family.state_dict()
        state["version"] = 99
        with pytest.raises(StateError):
            RngStreams(7).load_state_dict(state)


class TestNoGlobalRngEscapes:
    """No ``repro`` module may touch the process-global RNG state.

    Global draws (``np.random.rand``, ``random.random``, seeding the
    module singletons) would be invisible to ``RngStreams.state_dict``
    and break resume byte-identity.  Instance-based constructions
    (``np.random.default_rng``, ``random.Random(...)``) are fine -- they
    are either owned by the stream family or derived from stable seeds.
    """

    FORBIDDEN = re.compile(
        r"np\.random\.(?:rand|randn|randint|random|random_sample|choice|"
        r"shuffle|seed|get_state|set_state)\b"
        r"|(?<![.\w])random\.(?:random|randint|randrange|choice|shuffle|"
        r"seed|uniform|gauss|getstate|setstate)\("
    )

    def test_source_tree_is_clean(self):
        src = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
        assert src.is_dir()
        offenders = []
        for path in sorted(src.rglob("*.py")):
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                if self.FORBIDDEN.search(line):
                    offenders.append(f"{path.relative_to(src)}:{lineno}: {line.strip()}")
        assert not offenders, "global RNG use found:\n" + "\n".join(offenders)
