"""Tests for the checkpoint envelope, tagged codec, and crash-safe IO."""

import datetime as dt
import json
import os

import pytest

from repro.core.config import ExperimentConfig
from repro.state import codec
from repro.state.checkpoint import (
    CHECKPOINT_SCHEMA,
    CampaignCheckpoint,
    read_checkpoint,
    write_checkpoint,
)
from repro.state.protocol import StateError, check_version


def _checkpoint(**overrides) -> CampaignCheckpoint:
    base = dict(
        config_digest="abc123",
        sim_time=86400.0,
        seed=7,
        components={"engine": {"version": 1, "now": 86400.0}},
        meta={"ran": True},
    )
    base.update(overrides)
    return CampaignCheckpoint(**base)


class TestEnvelope:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "ck.json")
        original = _checkpoint()
        assert write_checkpoint(path, original)
        loaded = read_checkpoint(path)
        assert loaded is not None
        assert loaded.config_digest == original.config_digest
        assert loaded.sim_time == original.sim_time
        assert loaded.seed == original.seed
        assert loaded.components == original.components
        assert loaded.meta == original.meta
        assert loaded.schema == CHECKPOINT_SCHEMA

    def test_write_is_atomic_no_tmp_left_behind(self, tmp_path):
        path = str(tmp_path / "ck.json")
        assert write_checkpoint(path, _checkpoint())
        leftovers = [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]
        assert leftovers == []
        assert os.listdir(tmp_path) == ["ck.json"]

    def test_write_creates_parent_directory(self, tmp_path):
        path = str(tmp_path / "nested" / "deep" / "ck.json")
        assert write_checkpoint(path, _checkpoint())
        assert read_checkpoint(path) is not None

    def test_unencodable_component_degrades_to_false(self, tmp_path):
        path = str(tmp_path / "ck.json")
        bad = _checkpoint(components={"engine": {"fn": object()}})
        assert write_checkpoint(path, bad) is False
        assert not os.path.exists(path)

    def test_missing_file_is_none(self, tmp_path):
        assert read_checkpoint(str(tmp_path / "absent.json")) is None

    def test_meta_codec_round_trips_config(self, tmp_path):
        path = str(tmp_path / "ck.json")
        original = _checkpoint()
        config = ExperimentConfig(seed=11)
        original.encode_meta("config", config)
        original.encode_meta("when", dt.datetime(2010, 3, 1, 12))
        write_checkpoint(path, original)
        loaded = read_checkpoint(path)
        assert loaded.decode_meta("config") == config
        assert loaded.decode_meta("when") == dt.datetime(2010, 3, 1, 12)
        assert loaded.decode_meta("absent", default="x") == "x"


class TestQuarantine:
    def _corrupt_siblings(self, tmp_path):
        return [n for n in os.listdir(tmp_path) if n.endswith(".corrupt")]

    def test_unparsable_json_quarantined(self, tmp_path):
        path = str(tmp_path / "ck.json")
        with open(path, "w") as fh:
            fh.write("{not json at all")
        assert read_checkpoint(path) is None
        assert not os.path.exists(path)
        assert self._corrupt_siblings(tmp_path) == ["ck.json.corrupt"]

    def test_checksum_mismatch_quarantined(self, tmp_path):
        path = str(tmp_path / "ck.json")
        write_checkpoint(path, _checkpoint())
        with open(path) as fh:
            envelope = json.load(fh)
        envelope["payload"] = envelope["payload"].replace("86400.0", "86400.5")
        with open(path, "w") as fh:
            json.dump(envelope, fh)
        assert read_checkpoint(path) is None
        assert not os.path.exists(path)
        assert self._corrupt_siblings(tmp_path) == ["ck.json.corrupt"]

    def test_unknown_schema_quarantined(self, tmp_path):
        path = str(tmp_path / "ck.json")
        write_checkpoint(path, _checkpoint(schema=CHECKPOINT_SCHEMA + 1))
        assert read_checkpoint(path) is None
        assert self._corrupt_siblings(tmp_path) == ["ck.json.corrupt"]

    def test_quarantined_file_never_reparsed(self, tmp_path):
        path = str(tmp_path / "ck.json")
        with open(path, "w") as fh:
            fh.write("garbage")
        assert read_checkpoint(path) is None
        # A second read sees no file at all (the poison moved aside).
        assert read_checkpoint(path) is None
        assert self._corrupt_siblings(tmp_path) == ["ck.json.corrupt"]


class TestPackedColumns:
    def test_floats_round_trip(self):
        values = [0.0, -1.5, 3.25e17, 1e-300]
        assert codec.unpack_floats(codec.pack_floats(values)) == values

    def test_ints_round_trip(self):
        values = [0, -7, 2**53]
        assert codec.unpack_ints(codec.pack_ints(values)) == values

    def test_bools_round_trip(self):
        values = [True, False, True, True]
        assert codec.unpack_bools(codec.pack_bools(values)) == values

    def test_optional_floats_round_trip_none(self):
        values = [1.0, None, -2.5, None]
        packed = codec.pack_optional_floats(values)
        assert codec.unpack_optional_floats(packed) == values

    def test_packed_blob_is_json_serialisable(self):
        blob = codec.pack_floats([1.0, 2.0])
        assert json.loads(json.dumps(blob)) == blob

    def test_dtype_mismatch_rejected(self):
        with pytest.raises(ValueError):
            codec.unpack_ints(codec.pack_floats([1.0]))


class TestTaggedValues:
    def test_dataclass_round_trip(self):
        config = ExperimentConfig(seed=3)
        encoded = codec.encode_value(config)
        assert json.loads(json.dumps(encoded)) == encoded
        assert codec.decode_value(encoded) == config

    def test_enum_and_datetime_round_trip(self):
        from repro.thermal.tent import Modification

        for value in (
            Modification.REFLECTIVE_FOIL,
            dt.datetime(2010, 4, 1, 9, 30),
        ):
            assert codec.decode_value(codec.encode_value(value)) == value

    def test_sequences_decode_to_tuples(self):
        assert codec.decode_value(codec.encode_value((1, 2, 3))) == (1, 2, 3)
        assert codec.decode_value(codec.encode_value([1, 2])) == (1, 2)

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError, match="unknown class"):
            codec.decode_value({"__dataclass__": "EvilClass", "fields": {}})

    def test_unencodable_object_rejected(self):
        with pytest.raises(TypeError):
            codec.encode_value(object())


class TestProtocol:
    def test_check_version_accepts_match(self):
        check_version("widget", {"version": 2}, 2)

    def test_check_version_rejects_mismatch(self):
        with pytest.raises(StateError, match="widget"):
            check_version("widget", {"version": 1}, 2)

    def test_check_version_rejects_missing(self):
        with pytest.raises(StateError):
            check_version("widget", {}, 1)
