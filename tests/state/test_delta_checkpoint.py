"""Delta checkpoint chain: diff/apply algebra, writer cadence, recovery."""

import json
import os
import random
import string

import pytest

from repro.state.checkpoint import (
    CHECKPOINT_SCHEMA,
    DELTA_SCHEMA,
    CampaignCheckpoint,
    DeltaCheckpointWriter,
    _apply,
    _common_prefix_len,
    _diff,
    read_checkpoint,
)


def _checkpoint(sim_time, components=None, meta=None):
    return CampaignCheckpoint(
        config_digest="digest",
        sim_time=sim_time,
        seed=7,
        components=components if components is not None else {},
        meta=meta if meta is not None else {},
    )


def _schema(path):
    with open(path) as fh:
        return json.load(fh)["schema"]


class TestDiffApply:
    CASES = [
        ({"a": 1}, {"a": 2}),
        ({"a": 1}, {"a": 1, "b": [1, 2]}),
        ({"a": 1, "b": 2}, {"b": 2}),
        ({"nest": {"x": [1, 2, 3]}}, {"nest": {"x": [1, 2, 3, 4]}}),
        ([1, 2, 3], [1, 2, 9, 10]),
        ([1, 2], []),
        ("x" * 100, "x" * 100 + "tail"),
        ("short", "other"),
        (1.5, "now a string"),
        (None, {"k": None}),
        ({"deep": {"list": [{"a": 1}, {"b": 2}]}}, {"deep": {"list": [{"a": 1}, {"b": 3}]}}),
    ]

    @pytest.mark.parametrize("old,new", CASES)
    def test_apply_inverts_diff(self, old, new):
        delta = _diff(old, new)
        assert delta is not None
        assert _apply(old, delta) == new

    def test_equal_values_diff_to_none(self):
        for value in ({"a": [1, {"b": "c"}]}, [1, 2], "same", 3, None):
            assert _diff(value, value) is None

    def test_randomized_roundtrip(self):
        rng = random.Random(42)

        def rand_value(depth=0):
            kinds = ["int", "str", "list", "dict"] if depth < 3 else ["int", "str"]
            kind = rng.choice(kinds)
            if kind == "int":
                return rng.randrange(100)
            if kind == "str":
                return "".join(rng.choices(string.ascii_letters, k=rng.randrange(0, 80)))
            if kind == "list":
                return [rand_value(depth + 1) for _ in range(rng.randrange(0, 5))]
            return {
                f"k{i}": rand_value(depth + 1) for i in range(rng.randrange(0, 5))
            }

        for _ in range(200):
            old, new = rand_value(), rand_value()
            delta = _diff(old, new)
            assert (delta is None and old == new) or _apply(old, delta) == new

    def test_common_prefix_len_matches_naive_scan(self):
        rng = random.Random(9)
        for _ in range(300):
            base = "".join(rng.choices("ab", k=rng.randrange(0, 300)))
            other = base[: rng.randrange(0, len(base) + 1)] + "".join(
                rng.choices("abc", k=rng.randrange(0, 50))
            )
            naive = 0
            limit = min(len(base), len(other))
            while naive < limit and base[naive] == other[naive]:
                naive += 1
            assert _common_prefix_len(base, other) == naive

    def test_common_prefix_len_on_megabyte_blobs(self):
        blob = "j" * 3_000_000
        assert _common_prefix_len(blob, blob) == 3_000_000
        assert _common_prefix_len(blob, blob + "x") == 3_000_000
        assert _common_prefix_len(blob[:-1] + "q", blob) == 2_999_999
        assert _common_prefix_len("", blob) == 0


class TestWriterCadence:
    def test_first_cut_full_then_deltas_then_rebase(self, tmp_path):
        writer = DeltaCheckpointWriter(rebase_every=4)
        paths = []
        for i in range(9):
            path = str(tmp_path / f"cut{i:02d}.json")
            assert writer.write(path, _checkpoint(float(i), {"tick": {"i": i}}))
            paths.append(path)
        schemas = [_schema(p) for p in paths]
        assert schemas == [
            CHECKPOINT_SCHEMA, DELTA_SCHEMA, DELTA_SCHEMA, DELTA_SCHEMA,
            CHECKPOINT_SCHEMA, DELTA_SCHEMA, DELTA_SCHEMA, DELTA_SCHEMA,
            CHECKPOINT_SCHEMA,
        ]

    def test_every_cut_in_the_chain_is_readable(self, tmp_path):
        writer = DeltaCheckpointWriter(rebase_every=16)
        paths = []
        for i in range(6):
            path = str(tmp_path / f"cut{i:02d}.json")
            writer.write(
                path, _checkpoint(float(i), {"log": {"lines": list(range(i + 1))}})
            )
            paths.append(path)
        for i, path in enumerate(paths):
            loaded = read_checkpoint(path)
            assert loaded is not None
            assert loaded.sim_time == float(i)
            assert loaded.components == {"log": {"lines": list(range(i + 1))}}

    def test_rebase_every_zero_means_never_rebase(self, tmp_path):
        writer = DeltaCheckpointWriter(rebase_every=0)
        schemas = []
        for i in range(5):
            path = str(tmp_path / f"cut{i}.json")
            writer.write(path, _checkpoint(float(i)))
            schemas.append(_schema(path))
        assert schemas == [CHECKPOINT_SCHEMA] + [DELTA_SCHEMA] * 4

    def test_directory_change_forces_full_cut(self, tmp_path):
        writer = DeltaCheckpointWriter(rebase_every=16)
        a, b = tmp_path / "a", tmp_path / "b"
        a.mkdir(), b.mkdir()
        writer.write(str(a / "c0.json"), _checkpoint(0.0))
        writer.write(str(b / "c1.json"), _checkpoint(1.0))
        assert _schema(str(b / "c1.json")) == CHECKPOINT_SCHEMA

    def test_identical_snapshots_write_an_empty_delta(self, tmp_path):
        writer = DeltaCheckpointWriter()
        snap = _checkpoint(5.0, {"k": {"v": 1}})
        writer.write(str(tmp_path / "c0.json"), snap)
        writer.write(str(tmp_path / "c1.json"), snap)
        assert _schema(str(tmp_path / "c1.json")) == DELTA_SCHEMA
        loaded = read_checkpoint(str(tmp_path / "c1.json"))
        assert loaded is not None and loaded.components == {"k": {"v": 1}}


class TestRecovery:
    def _chain(self, tmp_path, n=3):
        writer = DeltaCheckpointWriter(rebase_every=16)
        paths = []
        for i in range(n):
            path = str(tmp_path / f"cut{i}.json")
            writer.write(path, _checkpoint(float(i), {"t": {"i": i}}))
            paths.append(path)
        return paths

    def test_corrupt_delta_is_quarantined(self, tmp_path):
        paths = self._chain(tmp_path)
        with open(paths[2], "a") as fh:
            fh.write("garbage")
        assert read_checkpoint(paths[2]) is None
        assert not os.path.exists(paths[2])
        assert os.path.exists(paths[2] + ".corrupt")
        # The rest of the chain is untouched.
        assert read_checkpoint(paths[1]) is not None

    def test_missing_base_leaves_delta_intact(self, tmp_path):
        paths = self._chain(tmp_path)
        os.remove(paths[0])
        assert read_checkpoint(paths[1]) is None
        # Not quarantined: the delta file itself is fine.
        assert os.path.exists(paths[1])
        assert not os.path.exists(paths[1] + ".corrupt")

    def test_corrupt_base_poisons_dependents_but_only_base_quarantined(self, tmp_path):
        paths = self._chain(tmp_path)
        with open(paths[0], "a") as fh:
            fh.write("garbage")
        assert read_checkpoint(paths[2]) is None
        assert os.path.exists(paths[0] + ".corrupt")
        assert os.path.exists(paths[2])

    def test_non_sibling_base_is_rejected(self, tmp_path):
        paths = self._chain(tmp_path, n=2)
        with open(paths[1]) as fh:
            envelope = json.load(fh)
        body = json.loads(envelope["payload"])
        body["base"] = os.path.join("..", "evil.json")
        payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
        import hashlib

        envelope["payload"] = payload
        envelope["checksum"] = hashlib.sha256(payload.encode()).hexdigest()
        with open(paths[1], "w") as fh:
            json.dump(envelope, fh)
        assert read_checkpoint(paths[1]) is None
        assert os.path.exists(paths[1] + ".corrupt")

    def test_failed_write_keeps_the_old_base(self, tmp_path):
        writer = DeltaCheckpointWriter(rebase_every=16)
        p0 = str(tmp_path / "c0.json")
        writer.write(p0, _checkpoint(0.0, {"t": {"i": 0}}))
        # Unserializable snapshot: write fails, base must survive.
        bad = _checkpoint(1.0, {"t": {"i": object()}})
        assert not writer.write(str(tmp_path / "c1.json"), bad)
        p2 = str(tmp_path / "c2.json")
        assert writer.write(p2, _checkpoint(2.0, {"t": {"i": 2}}))
        loaded = read_checkpoint(p2)
        assert loaded is not None and loaded.components == {"t": {"i": 2}}
