"""Byte-identity of checkpointed and resumed campaigns.

The contract the whole state plane exists for: a campaign that flushes
checkpoints mid-flight, or is killed and resumed from any of them,
produces a run record byte-identical to the uninterrupted run.  Checked
for the default seed-7 configuration and for a degraded-mode
configuration with link faults, a confirmation-based health policy, and
telemetry enabled.
"""

import datetime as dt
import os

import pytest

from repro.core.builder import Campaign, CampaignBuilder
from repro.core.config import ExperimentConfig
from repro.monitoring.health import HealthPolicy
from repro.runner.policy import RetryPolicy
from repro.runner.records import record_from_results
from repro.sim.clock import DAY
from repro.state.checkpoint import read_checkpoint, write_checkpoint
from repro.state.protocol import StateError
from repro.telemetry import Telemetry


def _record_json(seed, results, until):
    return record_from_results(seed, results, until=until).canonical_json()


# ----------------------------------------------------------------------
# Default configuration, seed 7
# ----------------------------------------------------------------------
CONFIG = ExperimentConfig(seed=7)
UNTIL = CONFIG.prototype_end + dt.timedelta(days=24)
EVERY = 6 * DAY


@pytest.fixture(scope="module")
def baseline():
    """The uninterrupted seed-7 run over the test horizon."""
    campaign = CampaignBuilder(CONFIG).build()
    results = campaign.run(until=UNTIL)
    return _record_json(7, results, UNTIL)


@pytest.fixture(scope="module")
def checkpointed(tmp_path_factory):
    """The same run with periodic checkpoint flushes."""
    out = tmp_path_factory.mktemp("ck-seed7")
    campaign = CampaignBuilder(CONFIG).build()
    results = campaign.run(
        until=UNTIL, checkpoint_every=EVERY, checkpoint_dir=str(out)
    )
    return campaign.checkpoints_written, _record_json(7, results, UNTIL)


class TestSeedSevenIdentity:
    def test_checkpointing_does_not_perturb_the_run(self, baseline, checkpointed):
        _, record = checkpointed
        assert record == baseline

    def test_at_least_three_cut_points(self, checkpointed):
        paths, _ = checkpointed
        assert len(paths) >= 3

    def test_resume_from_every_cut_is_byte_identical(self, baseline, checkpointed):
        paths, _ = checkpointed
        for path in paths:
            campaign, results = Campaign.resume(path)
            assert _record_json(7, results, UNTIL) == baseline, path

    def test_resume_continues_the_checkpoint_grid(self, baseline, checkpointed, tmp_path):
        """A resumed run emits the later cuts an uninterrupted one would."""
        paths, _ = checkpointed
        campaign, results = Campaign.resume(
            paths[0], checkpoint_every=EVERY, checkpoint_dir=str(tmp_path)
        )
        assert _record_json(7, results, UNTIL) == baseline
        resumed_names = [os.path.basename(p) for p in campaign.checkpoints_written]
        original_names = [os.path.basename(p) for p in paths[1:]]
        assert resumed_names == original_names

    def test_resume_refuses_config_mismatch(self, checkpointed, tmp_path):
        paths, _ = checkpointed
        snapshot = read_checkpoint(paths[0])
        snapshot.config_digest = "0" * 40
        tampered = str(tmp_path / "tampered.json")
        assert write_checkpoint(tampered, snapshot)
        with pytest.raises(StateError, match="digest"):
            Campaign.resume(tampered)

    def test_resume_refuses_missing_checkpoint(self, tmp_path):
        with pytest.raises(StateError, match="no usable checkpoint"):
            Campaign.resume(str(tmp_path / "absent.json"))

    def test_checkpoint_refuses_extra_instruments(self):
        class Dummy:
            def attach(self, sim):
                return self

            def detach(self):
                pass

        campaign = (
            CampaignBuilder(CONFIG)
            .with_instrument("dummy", lambda c: Dummy())
            .build()
        )
        with pytest.raises(StateError, match="extra instruments"):
            campaign.checkpoint()


# ----------------------------------------------------------------------
# Degraded mode: link faults + health policy + telemetry, seed 11
# ----------------------------------------------------------------------
DEGRADED_SEED = 11
DEGRADED_UNTIL_DAYS = 30
DEGRADED_EVERY = 8 * DAY


def _degraded_builder():
    from repro.monitoring.transport import LinkFaultPlan

    config = ExperimentConfig(seed=DEGRADED_SEED)
    plan = LinkFaultPlan.parse(
        "storm:0.25:seed=3:attempts=2,5:12:partial:fraction=0.3"
    )
    policy = HealthPolicy(confirm_rounds=2, retry=RetryPolicy(max_attempts=2))
    builder = (
        CampaignBuilder(config)
        .with_link_faults(plan)
        .with_health_policy(policy)
        .with_telemetry(Telemetry())
    )
    return config, builder


@pytest.fixture(scope="module")
def degraded_until():
    config = ExperimentConfig(seed=DEGRADED_SEED)
    return config.prototype_end + dt.timedelta(days=DEGRADED_UNTIL_DAYS)


@pytest.fixture(scope="module")
def degraded_baseline(degraded_until):
    _, builder = _degraded_builder()
    campaign = builder.build()
    results = campaign.run(until=degraded_until)
    return (
        _record_json(DEGRADED_SEED, results, degraded_until),
        campaign.telemetry.snapshot(),
    )


@pytest.fixture(scope="module")
def degraded_checkpointed(degraded_until, tmp_path_factory):
    out = tmp_path_factory.mktemp("ck-degraded")
    _, builder = _degraded_builder()
    campaign = builder.build()
    results = campaign.run(
        until=degraded_until,
        checkpoint_every=DEGRADED_EVERY,
        checkpoint_dir=str(out),
    )
    record = _record_json(DEGRADED_SEED, results, degraded_until)
    return campaign.checkpoints_written, record


class TestDegradedModeIdentity:
    def test_checkpointing_does_not_perturb_the_run(
        self, degraded_baseline, degraded_checkpointed
    ):
        base_record, _ = degraded_baseline
        _, record = degraded_checkpointed
        assert record == base_record

    def test_resume_identical_under_faults(
        self, degraded_baseline, degraded_checkpointed, degraded_until
    ):
        base_record, base_telemetry = degraded_baseline
        paths, _ = degraded_checkpointed
        assert len(paths) >= 3
        for path in paths:
            resumed, res = Campaign.resume(path)
            record = _record_json(DEGRADED_SEED, res, degraded_until)
            assert record == base_record, path
            assert resumed.telemetry is not None
            assert resumed.telemetry.snapshot() == base_telemetry, path

    def test_checkpoint_meta_is_self_describing(self, degraded_checkpointed):
        """Resume needs no side channel: config and policies ride inside."""
        paths, _ = degraded_checkpointed
        snapshot = read_checkpoint(paths[0])
        assert snapshot.seed == DEGRADED_SEED
        assert snapshot.decode_meta("config") == ExperimentConfig(seed=DEGRADED_SEED)
        assert snapshot.decode_meta("link_faults") is not None
        assert snapshot.decode_meta("health_policy") is not None
        assert snapshot.meta["telemetry"] is True
