"""End-to-end: telemetry threaded through a real (short) campaign."""

import datetime as dt
import io
import json

import pytest

from repro import ExperimentConfig
from repro.core.builder import CampaignBuilder
from repro.telemetry import JsonlRunLog, Telemetry

UNTIL = dt.datetime(2010, 2, 24)


@pytest.fixture(scope="module")
def telemetry_run():
    """One short campaign with the full telemetry plane attached."""
    telemetry = Telemetry()
    log = JsonlRunLog(io.StringIO(), wall_clock=lambda: 0.0)
    builder = (
        CampaignBuilder(ExperimentConfig(seed=7))
        .with_telemetry(telemetry)
        .with_subscriber(log.subscribe)
    )
    results = builder.build().run(until=UNTIL)
    return results, telemetry, log


class TestEngineSpans:
    def test_every_fired_event_is_traced(self, telemetry_run):
        results, telemetry, _ = telemetry_run
        fired = sum(
            count
            for label, count in telemetry.spans.counts().items()
            if label.startswith("engine.")
        )
        assert fired == results.fleet.sim.events_fired

    def test_known_labels_present(self, telemetry_run):
        _, telemetry, _ = telemetry_run
        counts = telemetry.spans.counts()
        assert counts["engine.collector"] > 0
        assert counts["engine.fleet-tick"] > 0
        assert counts["engine.weather-station"] > 0
        assert counts["campaign.run"] == 1

    def test_results_expose_the_hub(self, telemetry_run):
        results, telemetry, _ = telemetry_run
        assert results.telemetry is telemetry


class TestMonitoringMetrics:
    def test_round_counters_match_archive(self, telemetry_run):
        results, telemetry, _ = telemetry_run
        rounds = results.monitoring.rounds
        metrics = telemetry.metrics
        assert metrics.counter("monitoring.rounds").value == len(rounds)
        assert metrics.counter("monitoring.hosts_collected").value == sum(
            len(r.collected_host_ids) for r in rounds
        )
        assert metrics.counter("monitoring.sensor_anomalies").value == sum(
            len(r.sensor_anomaly_host_ids) for r in rounds
        )

    def test_round_span_matches_round_count(self, telemetry_run):
        results, telemetry, _ = telemetry_run
        stats = telemetry.spans.stats("monitoring.collect_round")
        assert stats.count == len(results.monitoring.rounds)

    def test_round_hosts_histogram_totals(self, telemetry_run):
        results, telemetry, _ = telemetry_run
        hist = telemetry.metrics.histogram("monitoring.round_hosts")
        assert hist.count == len(results.monitoring.rounds)


class TestRunGauges:
    def test_engine_state_frozen_into_gauges(self, telemetry_run):
        results, telemetry, _ = telemetry_run
        sim = results.fleet.sim
        metrics = telemetry.metrics
        assert metrics.gauge("engine.events_fired").value == float(sim.events_fired)
        assert metrics.gauge("engine.events_cancelled").value == float(
            sim.events_cancelled
        )
        assert metrics.gauge("engine.sim_end_s").value == float(results.end_time)

    def test_bus_tallies_copied_to_counters(self, telemetry_run):
        results, telemetry, _ = telemetry_run
        for name, count in results.bus.counts.items():
            assert telemetry.metrics.counter(f"bus.events.{name}").value == count


class TestRunLogSink:
    def test_one_line_per_bus_event(self, telemetry_run):
        results, _, log = telemetry_run
        assert log.lines_written == len(results.events)

    def test_lines_parse_and_carry_sim_time(self, telemetry_run):
        _, _, log = telemetry_run
        lines = log._stream.getvalue().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert all("sim_time_s" in p and "wall_time_s" in p for p in parsed)
        assert any(p.get("host_id") is not None for p in parsed)


class TestZeroOverheadDefault:
    def test_default_build_has_no_telemetry(self):
        campaign = CampaignBuilder(ExperimentConfig(seed=7)).build()
        assert campaign.telemetry is None
        assert campaign.sim.tracer is None
        assert campaign.monitoring.telemetry is None

    def test_default_results_have_no_telemetry(self, short_results):
        assert short_results.telemetry is None
