"""Tests for the metrics registry primitives."""

import pickle

import pytest

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("rounds")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("rounds").inc(-1)


class TestGauge:
    def test_set_overwrites(self):
        gauge = Gauge("depth")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5


class TestHistogram:
    def test_observations_land_in_correct_buckets(self):
        hist = Histogram("h", bounds=(1.0, 5.0))
        for value in (0.5, 1.0, 3.0, 99.0):
            hist.observe(value)
        # <=1.0 gets 0.5 and 1.0; <=5.0 gets 3.0; +Inf gets 99.0
        assert hist.bucket_counts == [2, 1, 1]
        assert hist.count == 4
        assert hist.sum == pytest.approx(103.5)

    def test_empty_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=())

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(5.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_name_cannot_span_kinds(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError):
            registry.gauge("a")

    def test_len_counts_all_kinds(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.gauge("b")
        registry.histogram("c")
        assert len(registry) == 3

    def test_registry_pickles(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(3)
        registry.histogram("h", bounds=(1.0,)).observe(0.5)
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.counter("a").value == 3
        assert clone.histogram("h").count == 1


class TestMerge:
    def test_counters_add_gauges_max_histograms_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        a.gauge("g").set(7.0)
        b.gauge("g").set(4.0)
        a.histogram("h", bounds=(1.0,)).observe(0.5)
        b.histogram("h", bounds=(1.0,)).observe(2.0)
        a.merge(b)
        assert a.counter("c").value == 5
        assert a.gauge("g").value == 7.0
        assert a.histogram("h").bucket_counts == [1, 1]
        assert a.histogram("h").sum == pytest.approx(2.5)

    def test_merge_brings_in_unknown_metrics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("only-b").inc(9)
        b.gauge("g").set(-3.0)
        a.merge(b)
        assert a.counter("only-b").value == 9
        # A gauge new to the target keeps its value even when negative
        # (max against a default 0.0 would be wrong).
        assert a.gauge("g").value == -3.0

    def test_mismatched_histogram_bounds_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", bounds=(1.0,))
        b.histogram("h", bounds=(2.0,))
        with pytest.raises(ValueError):
            a.merge(b)


class TestExposition:
    def test_json_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h", bounds=(1.0, 2.0)).observe(1.5)
        clone = MetricsRegistry.from_json_dict(registry.to_json_dict())
        assert clone.to_json_dict() == registry.to_json_dict()

    def test_prometheus_text_families(self):
        registry = MetricsRegistry()
        registry.counter("monitoring.rounds").inc(324)
        registry.gauge("engine.pending_at_end").set(26.0)
        hist = registry.histogram("monitoring.round_hosts", bounds=(1.0, 5.0))
        hist.observe(0.0)
        hist.observe(3.0)
        hist.observe(50.0)
        text = registry.to_prometheus_text()
        assert "# TYPE repro_monitoring_rounds_total counter" in text
        assert "repro_monitoring_rounds_total 324" in text
        assert "# TYPE repro_engine_pending_at_end gauge" in text
        # Buckets are cumulative and end with +Inf == count.
        assert 'repro_monitoring_round_hosts_bucket{le="1"} 1' in text
        assert 'repro_monitoring_round_hosts_bucket{le="5"} 2' in text
        assert 'repro_monitoring_round_hosts_bucket{le="+Inf"} 3' in text
        assert "repro_monitoring_round_hosts_count 3" in text

    def test_empty_registry_exposes_nothing(self):
        assert MetricsRegistry().to_prometheus_text() == ""
