"""Tests for the live-progress JSONL plane (ProgressMeter, SweepProgress)."""

import io
import json

import pytest

from repro.sim.clock import SimClock
from repro.telemetry.progress import PROGRESS_SCHEMA, ProgressMeter, SweepProgress


class FakeWall:
    """Injectable monotonic clock the tests advance by hand."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def make_meter(**kwargs):
    wall = FakeWall()
    stream = io.StringIO()
    kwargs.setdefault("interval_s", 2.0)
    kwargs.setdefault("check_every", 1)
    meter = ProgressMeter(stream, wall_clock=wall, **kwargs)
    return meter, stream, wall


def lines_of(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestProgressMeter:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ProgressMeter(io.StringIO(), interval_s=0)
        with pytest.raises(ValueError):
            ProgressMeter(io.StringIO(), check_every=0)

    def test_first_observation_arms_without_emitting(self):
        meter, stream, wall = make_meter()
        meter.on_event(0.0)
        assert stream.getvalue() == ""
        # Before the interval elapses: still quiet.
        wall.now += 1.0
        meter.on_event(10.0)
        assert stream.getvalue() == ""

    def test_emits_after_interval_with_schema_fields(self):
        meter, stream, wall = make_meter(source="run")
        meter.on_event(0.0)
        wall.now += 4.0
        meter.on_event(86_400.0)
        (line,) = lines_of(stream)
        assert line["type"] == "heartbeat"
        assert line["schema"] == PROGRESS_SCHEMA
        assert line["source"] == "run"
        assert line["seq"] == 0
        assert line["wall_s"] == 4.0
        assert line["sim_time_s"] == 86_400.0
        assert line["sim_days_per_s"] == pytest.approx(0.25)
        assert line["events"] == 2
        assert line["events_per_s"] == pytest.approx(0.5)

    def test_check_every_batches_wall_clock_checks(self):
        meter, stream, wall = make_meter(check_every=10)
        meter.on_event(0.0)  # events 1..9 never touch the wall clock
        wall.now += 100.0
        for i in range(8):
            meter.on_event(float(i))
        assert stream.getvalue() == ""
        meter.on_event(9.0)  # 10th event: check fires, arms the meter
        wall.now += 100.0
        for i in range(10):
            meter.on_event(float(i))
        assert len(lines_of(stream)) == 1

    def test_eta_and_done_frac_with_known_horizon(self):
        meter, stream, wall = make_meter(sim_start_s=0.0, sim_end_s=4 * 86_400.0)
        meter.tick(0.0)
        wall.now += 2.0
        meter.tick(86_400.0)  # one sim-day in 2 wall seconds
        (line,) = lines_of(stream)
        assert line["done_frac"] == pytest.approx(0.25)
        assert line["eta_s"] == pytest.approx(6.0)

    def test_eta_is_null_when_no_progress(self):
        meter, stream, wall = make_meter(sim_start_s=0.0, sim_end_s=86_400.0)
        meter.tick(0.0)
        wall.now += 5.0
        meter.tick(0.0)  # sim time has not advanced
        (line,) = lines_of(stream)
        assert line["eta_s"] is None
        assert line["done_frac"] == 0.0

    def test_sim_date_rendered_through_clock(self):
        clock = SimClock()
        meter, stream, wall = make_meter(clock=clock)
        meter.tick(0.0)
        wall.now += 3.0
        meter.tick(3600.0)
        (line,) = lines_of(stream)
        assert line["sim_date"] == clock.to_datetime(3600.0).isoformat()

    def test_sample_extras_merged_only_at_emission(self):
        calls = []

        def sample():
            calls.append(1)
            return {"failures": 7}

        meter, stream, wall = make_meter(sample=sample)
        meter.tick(0.0)
        assert calls == []  # arming does not sample
        wall.now += 3.0
        meter.tick(10.0)
        (line,) = lines_of(stream)
        assert line["failures"] == 7
        assert len(calls) == 1

    def test_finish_always_emits_final_line(self):
        meter, stream, wall = make_meter()
        meter.finish(86_400.0)  # no prior events at all
        (line,) = lines_of(stream)
        assert line["final"] is True
        assert meter.lines_emitted == 1

    def test_finish_is_idempotent(self):
        # Drivers call finish() from try/finally *and* their success
        # paths; a crash cleanup must not write two final lines.
        meter, stream, wall = make_meter()
        meter.finish(3600.0)
        meter.finish(7200.0)
        meter.finish(7200.0)
        (line,) = lines_of(stream)
        assert line["final"] is True
        assert meter.lines_emitted == 1

    def test_raising_driver_still_writes_final_line(self):
        meter, stream, wall = make_meter()

        def drive():
            try:
                meter.tick(0.0)
                raise RuntimeError("campaign exploded mid-run")
            finally:
                meter.finish(1234.0)

        with pytest.raises(RuntimeError):
            drive()
        lines = lines_of(stream)
        assert lines[-1]["final"] is True
        assert lines[-1]["sim_time_s"] == 1234.0

    def test_lines_sorted_and_parseable(self):
        meter, stream, wall = make_meter()
        meter.finish(0.0)
        raw = stream.getvalue().splitlines()[0]
        payload = json.loads(raw)
        assert list(payload) == sorted(payload)

    def test_open_writes_file_and_close_closes(self, tmp_path):
        path = tmp_path / "hb.jsonl"
        meter = ProgressMeter.open(str(path), interval_s=1.0)
        meter.finish(0.0)
        meter.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["final"] is True


class TestSweepProgress:
    def test_rejects_empty_sweep(self):
        with pytest.raises(ValueError):
            SweepProgress(io.StringIO(), total=0)

    def test_tallies_every_kind(self):
        wall = FakeWall()
        stream = io.StringIO()
        progress = SweepProgress(stream, total=3, wall_clock=wall)
        progress.sink({"kind": "cached", "label": "seed 1"})
        progress.sink({"kind": "retried", "label": "seed 2", "attempt": 1, "error": "boom"})
        progress.sink({"kind": "completed", "label": "seed 2", "attempt": 2})
        progress.sink({"kind": "failed", "label": "seed 3", "attempt": 2, "error": "dead"})
        lines = lines_of(stream)
        assert [l["kind"] for l in lines] == ["cached", "retried", "completed", "failed"]
        last = lines[-1]
        assert last["done"] == 2
        assert last["cached"] == 1
        assert last["retried"] == 1
        assert last["failed"] == 1
        assert last["total"] == 3
        assert last["error"] == "dead"
        assert last["eta_s"] == 0.0  # nothing left in flight
        assert progress.lines_emitted == 4

    def test_eta_projects_completion_rate(self):
        wall = FakeWall()
        stream = io.StringIO()
        progress = SweepProgress(stream, total=4, wall_clock=wall)
        progress.sink({"kind": "completed", "label": "seed 1"})
        wall.now += 10.0
        progress.sink({"kind": "completed", "label": "seed 2"})
        lines = lines_of(stream)
        # 2 done in 10 s -> 5 s/spec -> 2 remaining -> 10 s.
        assert lines[-1]["eta_s"] == pytest.approx(10.0)

    def test_schema_and_label_passthrough(self):
        stream = io.StringIO()
        progress = SweepProgress(stream, total=1, wall_clock=FakeWall())
        progress.sink({"kind": "completed", "label": "seed 42"})
        (line,) = lines_of(stream)
        assert line["type"] == "sweep-progress"
        assert line["schema"] == PROGRESS_SCHEMA
        assert line["label"] == "seed 42"
