"""Prometheus text-format conformance for the exposition paths.

A small parser enforces the official text-format rules -- metric-line
grammar, label-value escaping (backslash, double-quote, line feed),
cumulative non-decreasing ``_bucket`` counts ending at ``+Inf``, and the
``_sum``/``_count`` pairing -- so anything that actually scrapes the
output would accept it.
"""

import re

import pytest

from repro.telemetry.hub import Telemetry
from repro.telemetry.metrics import (
    MetricsRegistry,
    escape_help_text,
    escape_label_value,
)

#: One sample line: name{labels} value
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})? "
    r"(?P<value>[^ ]+)$"
)

#: One label pair inside the braces, with only legal escapes in the value.
_LABEL_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\\n]|\\\\|\\"|\\n)*)"'
)


def parse_exposition(text):
    """Parse exposition text into (samples, types); raise on violations."""
    samples = []
    types = {}
    assert text.endswith("\n"), "exposition must end with a line feed"
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert kind in ("counter", "gauge", "histogram", "summary", "untyped")
            types[name] = kind
            continue
        if line.startswith("# HELP "):
            body = line[len("# HELP ") :]
            name, _, help_text = body.partition(" ")
            # Only \\ and \n may appear escaped; a bare backslash that is
            # not part of a legal escape is a violation.
            assert re.fullmatch(r"(?:[^\\\n]|\\\\|\\n)*", help_text), (
                f"illegal HELP escaping: {help_text!r}"
            )
            continue
        assert not line.startswith("#"), f"unknown comment line: {line!r}"
        match = _SAMPLE_RE.match(line)
        assert match, f"unparseable sample line: {line!r}"
        labels = {}
        if match.group("labels"):
            body = match.group("labels")
            consumed = 0
            for pair in _LABEL_RE.finditer(body):
                labels[pair.group("key")] = pair.group("value")
                consumed = pair.end()
            rest = body[consumed:].strip(",")
            assert not rest, f"illegal label syntax: {body!r}"
        float(match.group("value").replace("+Inf", "inf"))
        samples.append((match.group("name"), labels, match.group("value")))
    return samples, types


def histogram_samples(samples, family):
    buckets = [
        (labels["le"], float(value))
        for name, labels, value in samples
        if name == f"{family}_bucket"
    ]
    total = [float(v) for n, _, v in samples if n == f"{family}_count"]
    sums = [float(v) for n, _, v in samples if n == f"{family}_sum"]
    return buckets, total, sums


class TestEscaping:
    def test_label_value_escapes(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"
        # Backslash first: an input that already looks escaped survives.
        assert escape_label_value('\\"') == '\\\\\\"'

    def test_help_text_escapes(self):
        assert escape_help_text("a\\b\nc") == "a\\\\b\\nc"
        # Double quotes are legal verbatim in HELP text.
        assert escape_help_text('say "hi"') == 'say "hi"'

    def test_span_labels_with_hostile_characters_round_trip(self):
        telemetry = Telemetry()
        hostile = 'round "7"\nbackslash \\ done'
        telemetry.spans.record(hostile, 0.25)
        samples, _ = parse_exposition(telemetry.to_prometheus_text())
        fired = [
            labels
            for name, labels, _ in samples
            if name == "repro_span_fired_total"
        ]
        assert len(fired) == 1
        unescaped = (
            fired[0]["label"]
            .replace("\\n", "\n")
            .replace('\\"', '"')
            .replace("\\\\", "\\")
        )
        assert unescaped == hostile

    def test_hostile_help_text_stays_single_line(self):
        registry = MetricsRegistry()
        registry.counter("odd.one", help="line one\nline \\ two").inc()
        text = registry.to_prometheus_text()
        parse_exposition(text)
        (help_line,) = [l for l in text.splitlines() if l.startswith("# HELP")]
        assert "\n" not in help_line
        assert "line one\\nline \\\\ two" in help_line


class TestHistogramConformance:
    def make_registry(self):
        registry = MetricsRegistry()
        hist = registry.histogram("round.hosts", bounds=(1.0, 5.0, 10.0))
        for value in (0.0, 1.0, 2.0, 7.0, 50.0):
            hist.observe(value)
        return registry

    def test_bucket_counts_are_cumulative_and_non_decreasing(self):
        samples, _ = parse_exposition(self.make_registry().to_prometheus_text())
        buckets, _, _ = histogram_samples(samples, "repro_round_hosts")
        counts = [count for _, count in buckets]
        assert counts == sorted(counts), "bucket counts must be cumulative"
        assert counts == [2.0, 3.0, 4.0, 5.0]

    def test_inf_bucket_present_last_and_equals_count(self):
        samples, _ = parse_exposition(self.make_registry().to_prometheus_text())
        buckets, totals, _ = histogram_samples(samples, "repro_round_hosts")
        assert buckets[-1][0] == "+Inf"
        assert buckets[-1][1] == totals[0] == 5.0

    def test_sum_and_count_lines_present(self):
        samples, types = parse_exposition(self.make_registry().to_prometheus_text())
        _, totals, sums = histogram_samples(samples, "repro_round_hosts")
        assert totals == [5.0]
        assert sums == [60.0]
        assert types["repro_round_hosts"] == "histogram"

    def test_le_values_ascend(self):
        samples, _ = parse_exposition(self.make_registry().to_prometheus_text())
        buckets, _, _ = histogram_samples(samples, "repro_round_hosts")
        finite = [float(le) for le, _ in buckets[:-1]]
        assert finite == sorted(finite)


class TestWholeExposition:
    def test_mixed_registry_parses_under_official_rules(self):
        telemetry = Telemetry()
        telemetry.metrics.counter("engine.events", help="events fired").inc(3)
        telemetry.metrics.gauge("queue.depth").set(17.5)
        telemetry.metrics.histogram("lat", bounds=(0.5, 1.0)).observe(0.2)
        telemetry.spans.record("collector.round", 0.001)
        samples, types = parse_exposition(telemetry.to_prometheus_text())
        names = {name for name, _, _ in samples}
        assert "repro_engine_events_total" in names
        assert "repro_queue_depth" in names
        assert "repro_lat_bucket" in names
        assert types["repro_engine_events_total"] == "counter"
        assert types["repro_queue_depth"] == "gauge"

    def test_counter_sample_matches_type_name(self):
        # The TYPE line must name exactly the sample family it types.
        registry = MetricsRegistry()
        registry.counter("a.b").inc()
        text = registry.to_prometheus_text()
        samples, types = parse_exposition(text)
        for name in types:
            family = [s for s in samples if s[0].startswith(name)]
            assert family, f"TYPE line for {name} has no samples"

    def test_empty_registry_is_empty_exposition(self):
        assert MetricsRegistry().to_prometheus_text() == ""
