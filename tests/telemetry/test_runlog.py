"""Tests for the JSONL run-log sink."""

import io
import json

import pytest

from repro.sim.events import EventBus, HostFailed, HostInstalled, SensorLatched
from repro.telemetry.runlog import JsonlRunLog


class FlushCountingStream(io.StringIO):
    def __init__(self):
        super().__init__()
        self.flushes = 0

    def flush(self):
        self.flushes += 1
        super().flush()


def make_log():
    stream = io.StringIO()
    ticks = iter(range(1000))
    return JsonlRunLog(stream, wall_clock=lambda: float(next(ticks))), stream


class TestJsonlRunLog:
    def test_one_line_per_event_with_core_fields(self):
        log, stream = make_log()
        bus = EventBus()
        log.subscribe(bus)
        bus.publish(HostInstalled(time=10.0, host_id=3, enclosure="tent", group="tent"))
        bus.publish(SensorLatched(time=20.0, host_id=3))
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert len(lines) == 2
        assert log.lines_written == 2
        first, second = lines
        assert first["event"] == "HostInstalled"
        assert first["sim_time_s"] == 10.0
        assert first["wall_time_s"] == 0.0
        assert first["host_id"] == 3
        assert first["enclosure"] == "tent"
        assert second["event"] == "SensorLatched"
        assert second["wall_time_s"] == 1.0

    def test_non_json_payload_fields_are_reprd(self):
        log, stream = make_log()
        bus = EventBus()
        log.subscribe(bus)

        class Weird:
            def __repr__(self):
                return "<weird>"

        bus.publish(HostFailed(time=1.0, host_id=15, kind=Weird()))
        line = json.loads(stream.getvalue())
        assert line["kind"] == "<weird>"
        assert line["host_id"] == 15

    def test_lines_are_machine_parseable_and_sorted(self):
        log, stream = make_log()
        bus = EventBus()
        log.subscribe(bus)
        bus.publish(HostFailed(time=1.0, host_id=2, detail="strike"))
        line = stream.getvalue().splitlines()[0]
        payload = json.loads(line)
        assert list(payload) == sorted(payload)

    def test_open_close_writes_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        log = JsonlRunLog.open(str(path), wall_clock=lambda: 0.0)
        bus = EventBus()
        log.subscribe(bus)
        bus.publish(SensorLatched(time=5.0, host_id=9))
        log.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["host_id"] == 9

    def test_flush_every_flushes_periodically(self):
        stream = FlushCountingStream()
        log = JsonlRunLog(stream, wall_clock=lambda: 0.0, flush_every=2)
        bus = EventBus()
        log.subscribe(bus)
        for i in range(5):
            bus.publish(SensorLatched(time=float(i), host_id=i))
        # Lines 2 and 4 triggered a flush; line 5 is still buffered.
        assert stream.flushes == 2
        assert log.lines_written == 5

    def test_default_never_flushes_before_close(self):
        stream = FlushCountingStream()
        log = JsonlRunLog(stream, wall_clock=lambda: 0.0)
        bus = EventBus()
        log.subscribe(bus)
        for i in range(5):
            bus.publish(SensorLatched(time=float(i), host_id=i))
        assert stream.flushes == 0
        log.close()
        assert stream.flushes == 1

    def test_negative_flush_every_rejected(self):
        with pytest.raises(ValueError):
            JsonlRunLog(io.StringIO(), flush_every=-1)

    def test_context_manager_closes_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlRunLog.open(str(path), wall_clock=lambda: 0.0) as log:
            bus = EventBus()
            log.subscribe(bus)
            bus.publish(SensorLatched(time=5.0, host_id=9))
        assert log._stream.closed
        assert json.loads(path.read_text())["host_id"] == 9

    def test_context_manager_closes_on_error(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with pytest.raises(RuntimeError):
            with JsonlRunLog.open(str(path), wall_clock=lambda: 0.0) as log:
                bus = EventBus()
                log.subscribe(bus)
                bus.publish(SensorLatched(time=5.0, host_id=9))
                raise RuntimeError("mid-run crash")
        # The line written before the crash survived the close-on-exit.
        assert json.loads(path.read_text())["host_id"] == 9

    def test_sink_only_observes(self):
        # Attaching the sink does not change what other subscribers see.
        log, _ = make_log()
        bus = EventBus()
        seen = []
        bus.subscribe(SensorLatched, seen.append)
        log.subscribe(bus)
        bus.publish(SensorLatched(time=5.0, host_id=9))
        assert len(seen) == 1
        assert bus.counts == {"SensorLatched": 1}
