"""Tests for span tracing, snapshots, and the stopwatch."""

import pickle

import pytest

from repro.telemetry.hub import (
    HistogramSnapshot,
    Telemetry,
    TelemetrySnapshot,
    merge_snapshots,
    snapshot_from_json_dict,
)
from repro.telemetry.spans import SpanTracer, Stopwatch


class TestSpanTracer:
    def test_record_aggregates_per_label(self):
        tracer = SpanTracer()
        tracer.record("a", 0.5)
        tracer.record("a", 1.5)
        tracer.record("b", 0.1)
        stats = tracer.stats("a")
        assert stats.count == 2
        assert stats.total_s == pytest.approx(2.0)
        assert stats.min_s == pytest.approx(0.5)
        assert stats.max_s == pytest.approx(1.5)
        assert stats.mean_s == pytest.approx(1.0)
        assert tracer.counts() == {"a": 2, "b": 1}

    def test_span_context_manager_times_block(self):
        tracer = SpanTracer()
        with tracer.span("work"):
            pass
        assert tracer.stats("work").count == 1
        assert tracer.stats("work").total_s >= 0.0

    def test_span_records_even_when_block_raises(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.stats("boom").count == 1

    def test_hottest_orders_by_count_then_label(self):
        tracer = SpanTracer()
        tracer.record("b", 0.1)
        tracer.record("a", 0.1)
        tracer.record("a", 0.1)
        tracer.record("c", 0.1)
        labels = [s.label for s in tracer.hottest(2)]
        assert labels == ["a", "b"]

    def test_slowest_orders_by_max(self):
        tracer = SpanTracer()
        tracer.record("fast", 0.001)
        tracer.record("slow", 2.0)
        assert [s.label for s in tracer.slowest(1)] == ["slow"]

    def test_merge_folds_aggregates(self):
        a, b = SpanTracer(), SpanTracer()
        a.record("x", 1.0)
        b.record("x", 3.0)
        b.record("y", 0.5)
        a.merge(b)
        assert a.stats("x").count == 2
        assert a.stats("x").max_s == pytest.approx(3.0)
        assert a.stats("y").count == 1


class TestStopwatch:
    def test_measures_elapsed(self):
        with Stopwatch() as watch:
            pass
        assert watch.elapsed_s >= 0.0

    def test_reusable(self):
        watch = Stopwatch()
        with watch:
            pass
        first = watch.elapsed_s
        with watch:
            pass
        assert watch.elapsed_s >= 0.0
        assert first >= 0.0


class TestHubCounterDelegate:
    def test_counter_reaches_the_registry(self):
        hub = Telemetry()
        hub.counter("runner.retries").inc(3)
        assert hub.counter("runner.retries") is hub.metrics.counter("runner.retries")
        assert hub.snapshot().counter("runner.retries") == 3


class TestSnapshot:
    def make_hub(self):
        hub = Telemetry()
        hub.metrics.counter("c").inc(2)
        hub.metrics.gauge("g").set(5.0)
        hub.metrics.histogram("h", bounds=(1.0,)).observe(0.5)
        hub.spans.record("engine.tick", 0.25)
        return hub

    def test_snapshot_freezes_state(self):
        snapshot = self.make_hub().snapshot()
        assert snapshot.counter("c") == 2
        assert snapshot.span_count("engine.tick") == 1
        assert dict(snapshot.span_wall_s)["engine.tick"] == pytest.approx(0.25)

    def test_equality_ignores_wall_time(self):
        a = self.make_hub().snapshot()
        hub = self.make_hub()
        hub.spans.record("engine.tick", 10.0)  # wall differs, count differs
        unequal = hub.snapshot()
        assert a != unequal  # counts differ -> unequal
        import dataclasses

        b = dataclasses.replace(a, span_wall_s=(("engine.tick", 99.0),))
        assert a == b  # only wall differs -> equal

    def test_snapshot_pickles_and_round_trips_json(self):
        snapshot = self.make_hub().snapshot()
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot
        clone = snapshot_from_json_dict(snapshot.to_json_dict())
        assert clone == snapshot
        assert clone.span_wall_s == snapshot.span_wall_s

    def test_merge_adds_counts_and_wall(self):
        a = self.make_hub().snapshot()
        b = self.make_hub().snapshot()
        merged = a.merge(b)
        assert merged.counter("c") == 4
        assert merged.span_count("engine.tick") == 2
        assert dict(merged.span_wall_s)["engine.tick"] == pytest.approx(0.5)
        assert dict(merged.gauges)["g"] == 5.0
        hist = merged.histograms[0]
        assert hist.counts == (2, 0)
        assert hist.sum == pytest.approx(1.0)

    def test_merge_snapshots_helper(self):
        assert merge_snapshots([]) is None
        parts = [self.make_hub().snapshot() for _ in range(3)]
        assert merge_snapshots(parts).counter("c") == 6

    def test_histogram_bounds_mismatch_rejected(self):
        a = TelemetrySnapshot(
            counters=(),
            gauges=(),
            histograms=(HistogramSnapshot("h", (1.0,), (1, 0), 0.5),),
            span_counts=(),
        )
        b = TelemetrySnapshot(
            counters=(),
            gauges=(),
            histograms=(HistogramSnapshot("h", (2.0,), (1, 0), 0.5),),
            span_counts=(),
        )
        with pytest.raises(ValueError):
            a.merge(b)


class TestTelemetryHub:
    def test_prometheus_text_includes_spans(self):
        hub = Telemetry()
        hub.metrics.counter("c").inc()
        hub.spans.record("engine.tick", 0.5)
        text = hub.to_prometheus_text()
        assert 'repro_span_fired_total{label="engine.tick"} 1' in text
        assert 'repro_span_wall_seconds_total{label="engine.tick"}' in text

    def test_json_dict_has_schema_and_spans(self):
        hub = Telemetry()
        hub.spans.record("engine.tick", 0.5)
        data = hub.to_json_dict()
        assert data["schema"] == 1
        assert data["spans"]["engine.tick"]["count"] == 1

    def test_hub_merge(self):
        a, b = Telemetry(), Telemetry()
        a.metrics.counter("c").inc()
        b.metrics.counter("c").inc()
        b.spans.record("x", 1.0)
        a.merge(b)
        assert a.metrics.counter("c").value == 2
        assert a.spans.stats("x").count == 1
