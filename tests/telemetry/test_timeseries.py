"""Tests for the fleet observatory's bounded columnar SeriesRecorder."""

import pickle

import numpy as np
import pytest

from repro.state.protocol import StateError
from repro.telemetry.timeseries import (
    DEFAULT_CAPACITY,
    SeriesRecorder,
    final_values,
    fleet_median,
)


def fill(rec, n, start=0.0, dt=1.0):
    for i in range(n):
        t = start + i * dt
        rec.record(t, {"a": np.array([t, 2 * t]), "b": 10.0 + t})


class TestConstruction:
    def test_defaults(self):
        rec = SeriesRecorder({"x": 3})
        assert rec.capacity == DEFAULT_CAPACITY
        assert rec.n_samples == 0
        assert rec.stride == 1
        assert rec.rows("x") == 3

    def test_rejects_bad_layouts(self):
        with pytest.raises(ValueError):
            SeriesRecorder({})
        with pytest.raises(ValueError):
            SeriesRecorder({"x": 0})
        with pytest.raises(ValueError):
            SeriesRecorder({"x": 1}, capacity=7)  # odd
        with pytest.raises(ValueError):
            SeriesRecorder({"x": 1}, capacity=4)  # too small

    def test_record_requires_exact_signal_set(self):
        rec = SeriesRecorder({"a": 2, "b": 1}, capacity=8)
        with pytest.raises(ValueError, match="missing"):
            rec.record(0.0, {"a": np.zeros(2)})
        with pytest.raises(ValueError, match="unexpected"):
            rec.record(0.0, {"a": np.zeros(2), "b": 0.0, "c": 1.0})


class TestRecording:
    def test_stores_raw_frames_below_capacity(self):
        rec = SeriesRecorder({"a": 2, "b": 1}, capacity=8)
        fill(rec, 5)
        assert rec.n_samples == 5
        assert rec.stride == 1
        np.testing.assert_array_equal(rec.times(), np.arange(5.0))
        np.testing.assert_array_equal(rec.values("a")[1], 2 * np.arange(5.0))
        np.testing.assert_array_equal(rec.values("b")[0], 10.0 + np.arange(5.0))

    def test_fold_halves_samples_and_doubles_stride(self):
        rec = SeriesRecorder({"a": 2, "b": 1}, capacity=8)
        fill(rec, 8)
        # The 8th commit triggers the fold: 4 samples, each a pair mean.
        assert rec.n_samples == 4
        assert rec.stride == 2
        np.testing.assert_array_equal(rec.times(), [0.5, 2.5, 4.5, 6.5])
        np.testing.assert_array_equal(rec.values("a")[0], [0.5, 2.5, 4.5, 6.5])

    def test_post_fold_commits_average_stride_frames(self):
        rec = SeriesRecorder({"a": 2, "b": 1}, capacity=8)
        fill(rec, 10)
        # Frames 8,9 accumulate into one stride-2 sample at t=8.5.
        assert rec.n_samples == 5
        assert rec.times()[-1] == 8.5
        assert rec.values("b")[0][-1] == 18.5

    def test_memory_stays_bounded_at_any_horizon(self):
        rec = SeriesRecorder({"a": 2, "b": 1}, capacity=8)
        fill(rec, 1000)
        assert rec.n_samples <= 8
        # Folds at 8, 16, 32, ... raw frames: seven folds by frame 1000.
        assert rec.stride == 128
        assert rec.frames_seen == 1000
        # Times stay strictly increasing through every fold.
        assert np.all(np.diff(rec.times()) > 0)

    def test_fold_preserves_the_overall_mean(self):
        rec = SeriesRecorder({"a": 1, "b": 1}, capacity=8)
        values = np.arange(64.0)
        for t in values:
            rec.record(t, {"a": np.array([t]), "b": t})
        # Pair-mean folding is mean-preserving for a fully folded buffer.
        assert np.mean(rec.values("a")) == pytest.approx(np.mean(values))

    def test_determinism_bitwise(self):
        one = SeriesRecorder({"a": 3, "b": 1}, capacity=16)
        two = SeriesRecorder({"a": 3, "b": 1}, capacity=16)
        rng = np.random.default_rng(7)
        frames = rng.normal(size=(100, 3))
        for rec in (one, two):
            for i in range(100):
                rec.record(float(i), {"a": frames[i], "b": frames[i, 0]})
        np.testing.assert_array_equal(one.values("a"), two.values("a"))
        np.testing.assert_array_equal(one.times(), two.times())


class TestAccess:
    def test_series_returns_one_row(self):
        rec = SeriesRecorder({"a": 2, "b": 1}, capacity=8)
        fill(rec, 4)
        series = rec.series("a", row=1)
        np.testing.assert_array_equal(series.values, 2 * np.arange(4.0))
        with pytest.raises(ValueError):
            rec.series("a", row=2)

    def test_fleet_median_and_final_values(self):
        rec = SeriesRecorder({"a": 3}, capacity=8)
        for i in range(4):
            rec.record(float(i), {"a": np.array([1.0, 5.0, 100.0 + i])})
        med = fleet_median(rec, "a")
        np.testing.assert_array_equal(med.values, [5.0, 5.0, 5.0, 5.0])
        np.testing.assert_array_equal(final_values(rec, "a"), [1.0, 5.0, 103.0])

    def test_final_values_of_empty_recorder_are_zeros(self):
        rec = SeriesRecorder({"a": 3}, capacity=8)
        np.testing.assert_array_equal(final_values(rec, "a"), np.zeros(3))


class TestSnapshot:
    def test_state_dict_round_trip_bitwise(self):
        rec = SeriesRecorder({"a": 2, "b": 1}, capacity=8)
        fill(rec, 11)  # folded once, plus a partial accumulator
        state = rec.state_dict()
        fresh = SeriesRecorder({"a": 2, "b": 1}, capacity=8)
        fresh.load_state_dict(state)
        np.testing.assert_array_equal(fresh.values("a"), rec.values("a"))
        np.testing.assert_array_equal(fresh.times(), rec.times())
        assert fresh.stride == rec.stride
        assert fresh.frames_seen == rec.frames_seen

    def test_resume_mid_run_matches_uninterrupted(self):
        # The acceptance property: checkpoint at frame 37, restore into a
        # fresh recorder, replay the remaining frames -> bitwise equal to
        # a recorder that saw all 90 frames straight through.
        def frame(i):
            return {"a": np.array([np.sin(i / 3.0), np.cos(i / 5.0)]), "b": float(i)}

        straight = SeriesRecorder({"a": 2, "b": 1}, capacity=16)
        for i in range(90):
            straight.record(float(i), frame(i))

        first = SeriesRecorder({"a": 2, "b": 1}, capacity=16)
        for i in range(37):
            first.record(float(i), frame(i))
        resumed = SeriesRecorder({"a": 2, "b": 1}, capacity=16)
        resumed.load_state_dict(first.state_dict())
        for i in range(37, 90):
            resumed.record(float(i), frame(i))

        np.testing.assert_array_equal(resumed.values("a"), straight.values("a"))
        np.testing.assert_array_equal(resumed.values("b"), straight.values("b"))
        np.testing.assert_array_equal(resumed.times(), straight.times())
        assert resumed.stride == straight.stride

    def test_state_is_json_round_trippable(self):
        import json

        rec = SeriesRecorder({"a": 2}, capacity=8)
        for i in range(5):
            rec.record(float(i), {"a": np.array([i, -i], dtype=float)})
        state = json.loads(json.dumps(rec.state_dict()))
        fresh = SeriesRecorder({"a": 2}, capacity=8)
        fresh.load_state_dict(state)
        np.testing.assert_array_equal(fresh.values("a"), rec.values("a"))

    def test_layout_mismatch_rejected(self):
        rec = SeriesRecorder({"a": 2}, capacity=8)
        state = rec.state_dict()
        with pytest.raises(StateError):
            SeriesRecorder({"a": 3}, capacity=8).load_state_dict(state)
        with pytest.raises(StateError):
            SeriesRecorder({"a": 2}, capacity=16).load_state_dict(state)

    def test_corrupt_lengths_rejected(self):
        rec = SeriesRecorder({"a": 2}, capacity=8)
        fill_state = rec.state_dict()
        fill_state["len"] = 99
        with pytest.raises(StateError):
            SeriesRecorder({"a": 2}, capacity=8).load_state_dict(fill_state)

    def test_picklable(self):
        rec = SeriesRecorder({"a": 2, "b": 1}, capacity=8)
        fill(rec, 9)
        clone = pickle.loads(pickle.dumps(rec))
        np.testing.assert_array_equal(clone.values("a"), rec.values("a"))
        clone.record(9.0, {"a": np.zeros(2), "b": 0.0})  # still usable
