"""End-to-end data-pipeline test: run -> export -> re-import -> re-analyse.

A downstream user's workflow is: run the campaign, dump flat files, and
do their analysis off the files.  This test proves the whole chain is
lossless enough that the figures rebuilt from the exported CSVs match
the figures built from the live run.
"""

import numpy as np
import pytest

from repro.analysis.export import export_run, fault_log_from_tsv, read_series_csv
from repro.analysis.failures import census_from_events
from repro.analysis.outliers import remove_removal_outliers


class TestFullPipeline:
    @pytest.fixture(scope="class")
    def exported(self, tmp_path_factory, short_results):
        directory = tmp_path_factory.mktemp("pipeline")
        return short_results, export_run(short_results, directory)

    def test_outside_series_roundtrips_exactly(self, exported):
        results, written = exported
        live = results.outside_temperature()
        parsed, name = read_series_csv(written["outside_temperature"])
        assert name == "temp_c"
        assert len(parsed) == len(live)
        assert np.allclose(parsed.values, live.values, atol=0.01)

    def test_figure_statistics_match_from_files(self, exported):
        results, written = exported
        parsed, _ = read_series_csv(written["outside_temperature"])
        live = results.outside_temperature()
        assert parsed.min() == pytest.approx(live.min(), abs=0.01)
        assert parsed.mean() == pytest.approx(live.mean(), abs=0.01)

    def test_outlier_removal_agrees_on_reimported_data(self, exported):
        results, written = exported
        live_inside = results.inside_temperature_raw()
        if live_inside.empty:
            pytest.skip("run truncated before Lascar arrival")
        parsed, _ = read_series_csv(written["inside_temperature"])
        live_clean = remove_removal_outliers(live_inside)
        file_clean = remove_removal_outliers(parsed)
        assert len(file_clean) == len(live_clean)

    def test_census_rebuilt_from_fault_tsv(self, exported):
        results, written = exported
        parsed_log = fault_log_from_tsv(written["faults"].read_text())
        ids = results.tent_host_ids() + results.basement_host_ids()
        from_files = census_from_events("all installed", ids, parsed_log.events)
        live = results.overall_census()
        assert from_files.hosts_failed == live.hosts_failed
        assert len(from_files.failure_events) == len(live.failure_events)
