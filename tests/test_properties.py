"""Cross-cutting property-based tests.

Module-level hypothesis suites live next to their modules; this file
holds the cross-cutting invariants that span subsystems -- the properties
a reviewer would want to hold at *any* seed and parameter draw, not just
the calibrated defaults.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.outliers import detect_removal_outliers
from repro.analysis.series import TimeSeries
from repro.climate.generator import WeatherGenerator
from repro.climate.profiles import HELSINKI_2010
from repro.hardware.faults import hazard_probability
from repro.sim.clock import HOUR, SimClock
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.thermal.tent import TentEnvelope


class TestWeatherAcrossSeeds:
    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=8, deadline=None)
    def test_physical_invariants_hold_at_any_seed(self, seed):
        weather = WeatherGenerator(HELSINKI_2010, RngStreams(seed))
        clock = SimClock()
        times = np.arange(clock.at(2010, 2, 12), clock.at(2010, 5, 12), 12 * HOUR)
        temps = np.asarray(weather.temperature(times))
        dew = np.asarray(weather.dewpoint(times))
        rh = np.asarray(weather.relative_humidity(times))
        assert np.all(np.isfinite(temps))
        assert np.all(dew <= temps + 1e-9)
        assert np.all((rh >= 0.0) & (rh <= 100.0))
        assert -45.0 < temps.min() and temps.max() < 45.0


class TestEnvelopeMonotonicity:
    @given(
        wind_lo=st.floats(min_value=0.0, max_value=10.0),
        wind_hi=st.floats(min_value=0.0, max_value=10.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_ua_monotone_in_wind(self, wind_lo, wind_hi):
        envelope = TentEnvelope()
        lo, hi = sorted((wind_lo, wind_hi))
        assert envelope.ua_w_per_k(lo) <= envelope.ua_w_per_k(hi) + 1e-12

    @given(irradiance=st.floats(min_value=0.0, max_value=1000.0))
    @settings(max_examples=100, deadline=None)
    def test_foil_never_increases_solar_gain(self, irradiance):
        plain = TentEnvelope()
        foiled = plain.with_modification(
            __import__("repro.thermal.tent", fromlist=["Modification"]).Modification.REFLECTIVE_FOIL
        )
        assert foiled.solar_gain_w(irradiance) <= plain.solar_gain_w(irradiance) + 1e-12


class TestHazardComposition:
    @given(
        rate=st.floats(min_value=0.0, max_value=10.0),
        dt_a=st.floats(min_value=0.0, max_value=1e5),
        dt_b=st.floats(min_value=0.0, max_value=1e5),
    )
    @settings(max_examples=150, deadline=None)
    def test_survival_multiplies_over_subintervals(self, rate, dt_a, dt_b):
        # P(survive a+b) == P(survive a) * P(survive b): the memoryless
        # property the tick loop relies on when dt varies.
        survive_ab = 1.0 - hazard_probability(rate, dt_a + dt_b)
        survive_a = 1.0 - hazard_probability(rate, dt_a)
        survive_b = 1.0 - hazard_probability(rate, dt_b)
        assert survive_ab == pytest.approx(survive_a * survive_b, rel=1e-9, abs=1e-12)


class TestOutlierDetectorSafety:
    @given(
        temps=st.lists(
            st.floats(min_value=-30.0, max_value=15.0), min_size=1, max_size=100
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_never_flags_sub_indoor_data(self, temps):
        # Whatever the tent does below the indoor band, nothing is removed.
        mask = detect_removal_outliers(np.array(temps), indoor_band_c=(18.0, 25.0))
        assert not mask.any()


class TestEngineOrdering:
    @given(delays=st.lists(st.floats(min_value=0.0, max_value=1e4), max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_random_schedules_fire_in_time_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)


class TestSeriesAlgebra:
    @given(
        values=st.lists(
            st.floats(min_value=-50.0, max_value=50.0), min_size=2, max_size=50
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_self_difference_is_zero(self, values):
        ts = TimeSeries(60.0 * np.arange(len(values)), np.array(values))
        diff = ts.aligned_difference(ts)
        assert np.allclose(diff.values, 0.0)

    @given(
        values=st.lists(
            st.floats(min_value=-50.0, max_value=50.0), min_size=2, max_size=50
        ),
        lo=st.floats(min_value=0.0, max_value=3000.0),
        width=st.floats(min_value=0.0, max_value=3000.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_window_is_a_subset(self, values, lo, width):
        ts = TimeSeries(60.0 * np.arange(len(values)), np.array(values))
        windowed = ts.window(lo, lo + width)
        assert len(windowed) <= len(ts)
        if not windowed.empty:
            assert windowed.times[0] >= lo
            assert windowed.times[-1] < lo + width
