"""Tests for the enclosure base class and the simple enclosures."""

import numpy as np
import pytest

from repro.climate.generator import WeatherGenerator
from repro.climate.profiles import HELSINKI_2010
from repro.sim.clock import DAY, HOUR, SimClock
from repro.sim.rng import RngStreams
from repro.thermal.enclosure import BasementMachineRoom, OutdoorAmbient, PlasticBoxShelter


@pytest.fixture(scope="module")
def weather():
    return WeatherGenerator(HELSINKI_2010, RngStreams(11))


def advance_through(enclosure, start, end, step=300.0):
    t = start
    while t <= end:
        enclosure.advance(t)
        t += step


class TestOutdoorAmbient:
    def test_intake_tracks_weather_exactly(self, weather):
        enclosure = OutdoorAmbient("outside", weather)
        t = SimClock().at(2010, 2, 20, 6)
        enclosure.advance(t)
        sample = weather.sample(t)
        assert enclosure.intake_temp_c == sample.temp_c
        assert enclosure.intake_rh_percent == sample.rh_percent


class TestBasementMachineRoom:
    def test_holds_setpoint(self, weather):
        basement = BasementMachineRoom("basement", weather)
        start = SimClock().at(2010, 2, 20)
        advance_through(basement, start, start + 2 * DAY, step=HOUR)
        assert basement.intake_temp_c == pytest.approx(21.0, abs=0.6)

    def test_unaffected_by_it_load(self, weather):
        basement = BasementMachineRoom("basement", weather)
        t = SimClock().at(2010, 2, 20)
        basement.advance(t)
        unloaded = basement.intake_temp_c
        basement.set_it_load(2000.0)
        basement.advance(t + HOUR)
        # Conditioned room: the CRAC absorbs the load (tiny diurnal wiggle only).
        assert abs(basement.intake_temp_c - unloaded) < 1.0

    def test_well_within_spec_all_winter(self, weather):
        # The paper: control conditions "well within specifications".
        basement = BasementMachineRoom("basement", weather)
        start = SimClock().at(2010, 2, 19)
        temps = []
        t = start
        while t < start + 20 * DAY:
            basement.advance(t)
            temps.append(basement.intake_temp_c)
            t += HOUR
        assert min(temps) > 15.0 and max(temps) < 30.0


class TestPlasticBoxShelter:
    def test_small_excess_over_outside(self, weather):
        # "The boxes did not really impede air flow or contain any heat."
        shelter = PlasticBoxShelter("boxes", weather)
        shelter.set_it_load(90.0)
        start = SimClock().at(2010, 2, 12, 16)
        advance_through(shelter, start, start + DAY)
        t_end = start + DAY
        outside = float(weather.temperature(t_end))
        excess = shelter.intake_temp_c - outside
        assert 0.5 < excess < 5.0

    def test_no_load_tracks_outside(self, weather):
        shelter = PlasticBoxShelter("boxes", weather)
        start = SimClock().at(2010, 2, 12, 16)
        advance_through(shelter, start, start + DAY)
        outside = float(weather.temperature(start + DAY))
        assert shelter.intake_temp_c == pytest.approx(outside, abs=2.0)

    def test_humidity_follows_outside_air(self, weather):
        shelter = PlasticBoxShelter("boxes", weather)
        shelter.set_it_load(90.0)
        start = SimClock().at(2010, 2, 12, 16)
        advance_through(shelter, start, start + DAY)
        assert 0.0 <= shelter.intake_rh_percent <= 100.0


class TestEnclosureContract:
    def test_advancing_backwards_raises(self, weather):
        enclosure = OutdoorAmbient("outside", weather)
        enclosure.advance(SimClock().at(2010, 3, 1))
        with pytest.raises(ValueError):
            enclosure.advance(SimClock().at(2010, 2, 28))

    def test_negative_it_load_rejected(self, weather):
        enclosure = OutdoorAmbient("outside", weather)
        with pytest.raises(ValueError):
            enclosure.set_it_load(-1.0)

    def test_repr_mentions_name_and_conditions(self, weather):
        enclosure = BasementMachineRoom("basement", weather)
        enclosure.advance(SimClock().at(2010, 3, 1))
        assert "basement" in repr(enclosure)
