"""Tests for the lumped heat and moisture balances."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.climate.psychro import absolute_humidity
from repro.thermal.heatbalance import LumpedThermalNode, MoistureNode


class TestLumpedThermalNode:
    def test_equilibrium_formula(self):
        node = LumpedThermalNode(90_000.0, 0.0)
        assert node.equilibrium(500.0, 25.0, -10.0) == pytest.approx(10.0)

    def test_converges_to_equilibrium(self):
        node = LumpedThermalNode(90_000.0, -10.0)
        for _ in range(500):
            node.step(300.0, 500.0, 25.0, -10.0)
        assert node.temp_c == pytest.approx(node.equilibrium(500.0, 25.0, -10.0), abs=0.01)

    def test_no_heat_relaxes_to_ambient(self):
        node = LumpedThermalNode(50_000.0, 20.0)
        for _ in range(500):
            node.step(300.0, 0.0, 30.0, -5.0)
        assert node.temp_c == pytest.approx(-5.0, abs=0.01)

    def test_large_step_remains_stable(self):
        # dt far beyond C/UA must not oscillate or blow up (substepping).
        node = LumpedThermalNode(10_000.0, 0.0)
        node.step(86_400.0, 100.0, 50.0, -10.0)
        equilibrium = node.equilibrium(100.0, 50.0, -10.0)
        assert node.temp_c == pytest.approx(equilibrium, abs=0.5)

    def test_zero_dt_is_noop(self):
        node = LumpedThermalNode(10_000.0, 5.0)
        assert node.step(0.0, 100.0, 50.0, -10.0) == 5.0

    def test_zero_ua_integrates_heat_only(self):
        node = LumpedThermalNode(1000.0, 0.0)
        node.step(10.0, 100.0, 0.0, -10.0)
        assert node.temp_c == pytest.approx(1.0)  # 100 W * 10 s / 1000 J/K

    def test_time_constant(self):
        node = LumpedThermalNode(90_000.0, 0.0)
        assert node.time_constant_s(30.0) == pytest.approx(3000.0)

    @given(
        capacity=st.floats(min_value=1e3, max_value=1e6),
        heat=st.floats(min_value=0.0, max_value=2000.0),
        ua=st.floats(min_value=1.0, max_value=300.0),
        ambient=st.floats(min_value=-30.0, max_value=20.0),
        initial=st.floats(min_value=-30.0, max_value=40.0),
        dt=st.floats(min_value=1.0, max_value=3600.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_step_moves_toward_equilibrium_without_overshoot(
        self, capacity, heat, ua, ambient, initial, dt
    ):
        node = LumpedThermalNode(capacity, initial)
        equilibrium = node.equilibrium(heat, ua, ambient)
        node.step(dt, heat, ua, ambient)
        low, high = sorted((initial, equilibrium))
        assert low - 1e-6 <= node.temp_c <= high + 1e-6

    def test_validation(self):
        with pytest.raises(ValueError):
            LumpedThermalNode(0.0, 0.0)
        node = LumpedThermalNode(1000.0, 0.0)
        with pytest.raises(ValueError):
            node.step(-1.0, 0.0, 10.0, 0.0)
        with pytest.raises(ValueError):
            node.step(1.0, 0.0, -10.0, 0.0)
        with pytest.raises(ValueError):
            node.equilibrium(100.0, 0.0, 0.0)


class TestMoistureNode:
    def test_initial_vapor_matches_psychrometrics(self):
        node = MoistureNode(0.0, 80.0)
        assert node.vapor_g_m3 == pytest.approx(absolute_humidity(0.0, 80.0))

    def test_relaxes_to_outside_vapor(self):
        node = MoistureNode(20.0, 30.0)
        for _ in range(200):
            node.step(300.0, 10.0, -5.0, 90.0)
        assert node.vapor_g_m3 == pytest.approx(absolute_humidity(-5.0, 90.0), rel=0.01)

    def test_exact_exponential_decay(self):
        node = MoistureNode(10.0, 50.0)
        start = node.vapor_g_m3
        target = absolute_humidity(0.0, 80.0)
        ach = 6.0
        node.step(3600.0, ach, 0.0, 80.0)  # exactly one e-folding x ach
        expected = target + (start - target) * np.exp(-ach)
        assert node.vapor_g_m3 == pytest.approx(expected, rel=1e-9)

    def test_zero_ventilation_holds_vapor(self):
        node = MoistureNode(10.0, 50.0)
        start = node.vapor_g_m3
        node.step(3600.0, 0.0, -10.0, 100.0)
        assert node.vapor_g_m3 == start

    def test_rh_recomputed_at_node_temperature(self):
        node = MoistureNode(-10.0, 90.0)
        # Same vapor, warmer air -> lower RH (the tent effect).
        assert node.relative_humidity(5.0) < 90.0

    def test_validation(self):
        node = MoistureNode(0.0, 50.0)
        with pytest.raises(ValueError):
            node.step(-1.0, 1.0, 0.0, 50.0)
        with pytest.raises(ValueError):
            node.step(1.0, -1.0, 0.0, 50.0)
