"""Tests for the tent heat balance and its modifications."""

import pytest

from repro.climate.generator import WeatherGenerator
from repro.climate.profiles import HELSINKI_2010
from repro.sim.clock import DAY, HOUR, SimClock
from repro.sim.rng import RngStreams
from repro.thermal.tent import Modification, Tent, TentEnvelope


@pytest.fixture(scope="module")
def weather():
    return WeatherGenerator(HELSINKI_2010, RngStreams(21))


def run_tent(tent, start, end, step=300.0):
    t = start
    while t <= end:
        tent.advance(t)
        t += step


class TestEnvelopeParameters:
    def test_each_modification_raises_conductance(self):
        base = TentEnvelope()
        wind = 3.0
        for mod in (
            Modification.INNER_TENT_REMOVED,
            Modification.BOTTOM_TARP_REMOVED,
            Modification.FAN_INSTALLED,
            Modification.DOOR_HALF_OPEN,
        ):
            modified = base.with_modification(mod)
            assert modified.ua_w_per_k(wind) > base.ua_w_per_k(wind)

    def test_each_modification_raises_ventilation(self):
        base = TentEnvelope()
        for mod in (
            Modification.INNER_TENT_REMOVED,
            Modification.BOTTOM_TARP_REMOVED,
            Modification.FAN_INSTALLED,
            Modification.DOOR_HALF_OPEN,
        ):
            modified = base.with_modification(mod)
            assert modified.air_changes_per_hour(3.0) > base.air_changes_per_hour(3.0)

    def test_foil_cuts_solar_gain_only(self):
        base = TentEnvelope()
        foiled = base.with_modification(Modification.REFLECTIVE_FOIL)
        assert foiled.solar_gain_w(400.0) < base.solar_gain_w(400.0)
        assert foiled.ua_w_per_k(3.0) == base.ua_w_per_k(3.0)

    def test_wind_raises_conductance(self):
        env = TentEnvelope()
        assert env.ua_w_per_k(8.0) > env.ua_w_per_k(0.0)

    def test_modifications_idempotent(self):
        env = TentEnvelope().with_modification(Modification.FAN_INSTALLED)
        again = env.with_modification(Modification.FAN_INSTALLED)
        assert env == again

    def test_active_modifications_in_letter_order(self):
        env = (
            TentEnvelope()
            .with_modification(Modification.FAN_INSTALLED)
            .with_modification(Modification.REFLECTIVE_FOIL)
        )
        letters = [m.letter for m in env.active_modifications()]
        assert letters == ["R", "F"]

    def test_negative_irradiance_clipped(self):
        assert TentEnvelope().solar_gain_w(-100.0) == 0.0


class TestTentThermal:
    def test_sealed_tent_retains_heat(self, weather):
        # Three vendor-A hosts: the tent runs well above outside air.
        tent = Tent("tent", weather)
        tent.set_it_load(255.0)
        start = SimClock().at(2010, 2, 19, 12)
        run_tent(tent, start, start + 2 * DAY)
        outside = float(weather.temperature(start + 2 * DAY))
        excess = tent.intake_temp_c - outside
        assert 5.0 < excess < 20.0

    def test_modifications_narrow_the_gap(self, weather):
        sealed = Tent("sealed", weather)
        opened = Tent("opened", weather)
        for mod in Modification:
            opened.apply_modification(mod, 0.0)
        for tent in (sealed, opened):
            tent.set_it_load(900.0)
            start = SimClock().at(2010, 3, 25)
            run_tent(tent, start, start + 2 * DAY)
        outside = float(weather.temperature(SimClock().at(2010, 3, 27)))
        assert (opened.intake_temp_c - outside) < 0.55 * (sealed.intake_temp_c - outside)

    def test_steady_state_excess_monotone_in_modifications(self, weather):
        tent = Tent("tent", weather)
        tent.set_it_load(900.0)
        previous = tent.steady_state_excess_c(wind_ms=3.0)
        for mod in (
            Modification.INNER_TENT_REMOVED,
            Modification.BOTTOM_TARP_REMOVED,
            Modification.FAN_INSTALLED,
            Modification.DOOR_HALF_OPEN,
        ):
            tent.apply_modification(mod, 0.0)
            current = tent.steady_state_excess_c(wind_ms=3.0)
            assert current < previous
            previous = current

    def test_more_load_means_warmer_tent(self, weather):
        light = Tent("light", weather)
        heavy = Tent("heavy", weather)
        light.set_it_load(250.0)
        heavy.set_it_load(900.0)
        start = SimClock().at(2010, 3, 1)
        for tent in (light, heavy):
            run_tent(tent, start, start + DAY)
        assert heavy.intake_temp_c > light.intake_temp_c + 5.0

    def test_humidity_stays_in_bounds(self, weather):
        tent = Tent("tent", weather)
        tent.set_it_load(500.0)
        start = SimClock().at(2010, 3, 1)
        t = start
        while t < start + 5 * DAY:
            tent.advance(t)
            assert 0.0 <= tent.intake_rh_percent <= 100.0
            t += HOUR

    def test_warm_tent_has_lower_rh_than_outside(self, weather):
        # The core psychrometric effect behind Fig. 4.
        tent = Tent("tent", weather)
        tent.set_it_load(900.0)
        start = SimClock().at(2010, 3, 1)
        run_tent(tent, start, start + 2 * DAY)
        outside_rh = float(weather.relative_humidity(start + 2 * DAY))
        assert tent.intake_rh_percent < outside_rh


class TestModificationLog:
    def test_log_records_times(self, weather):
        tent = Tent("tent", weather)
        tent.apply_modification(Modification.REFLECTIVE_FOIL, 100.0)
        tent.apply_modification(Modification.FAN_INSTALLED, 200.0)
        assert tent.modification_log == [
            (100.0, Modification.REFLECTIVE_FOIL),
            (200.0, Modification.FAN_INSTALLED),
        ]

    def test_modification_times_keeps_first_application(self, weather):
        tent = Tent("tent", weather)
        tent.apply_modification(Modification.FAN_INSTALLED, 100.0)
        tent.apply_modification(Modification.FAN_INSTALLED, 500.0)
        assert tent.modification_times() == {"F": 100.0}

    def test_letters_match_figure_3(self):
        assert Modification.REFLECTIVE_FOIL.letter == "R"
        assert Modification.INNER_TENT_REMOVED.letter == "I"
        assert Modification.BOTTOM_TARP_REMOVED.letter == "B"
        assert Modification.FAN_INSTALLED.letter == "F"
