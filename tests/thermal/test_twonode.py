"""Tests for the two-node tent fidelity model."""

import pytest

from repro.climate.generator import WeatherGenerator
from repro.climate.profiles import HELSINKI_2010
from repro.sim.clock import DAY, HOUR, SimClock
from repro.sim.rng import RngStreams
from repro.thermal.tent import Modification, Tent
from repro.thermal.twonode import TwoNodeTent


@pytest.fixture(scope="module")
def weather():
    return WeatherGenerator(HELSINKI_2010, RngStreams(31))


def run_enclosure(enclosure, start, end, load_w, step=300.0):
    enclosure.set_it_load(load_w)
    t = start
    while t <= end:
        enclosure.advance(t)
        t += step


class TestSteadyState:
    def test_air_equilibrium_matches_single_node(self, weather):
        single = Tent("one", weather)
        double = TwoNodeTent("two", weather)
        single.set_it_load(900.0)
        double.set_it_load(900.0)
        assert double.steady_state_air_excess_c(3.0) == pytest.approx(
            single.steady_state_excess_c(3.0)
        )

    def test_mass_runs_warmer_than_air(self, weather):
        tent = TwoNodeTent("two", weather)
        tent.set_it_load(900.0)
        assert tent.steady_state_mass_excess_c(3.0) > tent.steady_state_air_excess_c(3.0)

    def test_long_run_converges_to_same_temperatures(self, weather):
        start = SimClock().at(2010, 3, 20)
        single = Tent("one", weather)
        double = TwoNodeTent("two", weather)
        for enclosure in (single, double):
            run_enclosure(enclosure, start, start + 3 * DAY, load_w=900.0)
        # Both track the same envelope; after days the air temperatures
        # agree to within the diurnal transient differences.
        assert double.intake_temp_c == pytest.approx(single.intake_temp_c, abs=2.0)


class TestDynamics:
    def test_mass_lags_air_after_heat_step(self, weather):
        start = SimClock().at(2010, 3, 1)
        tent = TwoNodeTent("two", weather)
        run_enclosure(tent, start, start + DAY, load_w=0.0)
        # Switch on the full fleet; the air responds first.
        tent.set_it_load(900.0)
        t = start + DAY
        air_before, mass_before = tent.air_temp_c, tent.mass_temp_c
        for _ in range(6):  # 30 minutes
            t += 300.0
            tent.advance(t)
        assert tent.air_temp_c - air_before > tent.mass_temp_c - mass_before

    def test_stable_under_long_steps(self, weather):
        start = SimClock().at(2010, 3, 1)
        tent = TwoNodeTent("two", weather)
        tent.set_it_load(900.0)
        tent.advance(start)
        tent.advance(start + 6 * HOUR)  # one huge step: substepping must hold
        assert -40.0 < tent.air_temp_c < 70.0

    def test_modifications_cool_the_two_node_tent_too(self, weather):
        start = SimClock().at(2010, 3, 20)
        sealed = TwoNodeTent("sealed", weather)
        opened = TwoNodeTent("opened", weather)
        for mod in Modification:
            opened.envelope = opened.envelope.with_modification(mod)
        for tent in (sealed, opened):
            run_enclosure(tent, start, start + 2 * DAY, load_w=900.0)
        assert opened.intake_temp_c < sealed.intake_temp_c


class TestValidation:
    def test_mass_fraction_bounds(self, weather):
        with pytest.raises(ValueError):
            TwoNodeTent("x", weather, mass_heat_fraction=1.5)

    def test_positive_parameters(self, weather):
        with pytest.raises(ValueError):
            TwoNodeTent("x", weather, coupling_w_per_k=0.0)

    def test_humidity_in_bounds(self, weather):
        start = SimClock().at(2010, 3, 1)
        tent = TwoNodeTent("two", weather)
        tent.set_it_load(500.0)
        t = start
        while t < start + DAY:
            tent.advance(t)
            assert 0.0 <= tent.intake_rh_percent <= 100.0
            t += HOUR
