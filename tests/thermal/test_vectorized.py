"""The vectorized tent bank against the scalar TwoNodeTent reference."""

import numpy as np
import pytest

from repro.climate.generator import WeatherGenerator
from repro.thermal.tent import Modification, TentEnvelope
from repro.thermal.twonode import TwoNodeTent
from repro.thermal.vectorized import TwoNodeTentBank


@pytest.fixture(scope="module")
def weather():
    return WeatherGenerator()


class TestAgainstScalarReference:
    def test_single_replica_tracks_twonodetent(self, weather):
        """One bank replica must integrate exactly like the object tent."""
        start = weather.start_time
        reference = TwoNodeTent("ref", weather)
        first = weather.sample(start)
        bank = TwoNodeTentBank(1, first.temp_c)
        load = 600.0
        reference.it_load_w = load
        reference.advance(start)  # pin the clock; first advance is dt=0
        t = start
        for _ in range(48):
            t += 1800.0
            sample = weather.sample(t)
            reference.advance(t)
            bank.step(
                1800.0,
                np.array([load]),
                sample.temp_c,
                sample.wind_ms,
                sample.solar_wm2,
            )
        assert bank.air_temp_c[0] == pytest.approx(reference.air_temp_c, abs=1e-9)
        assert bank.mass_temp_c[0] == pytest.approx(reference.mass_temp_c, abs=1e-9)

    def test_replicas_with_equal_load_stay_identical(self, weather):
        start = weather.start_time
        first = weather.sample(start)
        bank = TwoNodeTentBank(64, first.temp_c)
        load = np.full(64, 450.0)
        t = start
        for _ in range(24):
            t += 1800.0
            s = weather.sample(t)
            bank.step(1800.0, load, s.temp_c, s.wind_ms, s.solar_wm2)
        assert np.all(bank.air_temp_c == bank.air_temp_c[0])
        assert np.all(bank.mass_temp_c == bank.mass_temp_c[0])

    def test_hotter_pod_stays_hotter(self, weather):
        start = weather.start_time
        first = weather.sample(start)
        bank = TwoNodeTentBank(2, first.temp_c)
        load = np.array([200.0, 1200.0])
        t = start
        for _ in range(24):
            t += 1800.0
            s = weather.sample(t)
            bank.step(1800.0, load, s.temp_c, s.wind_ms, s.solar_wm2)
        assert bank.air_temp_c[1] > bank.air_temp_c[0]


class TestEnvelopeModifications:
    def test_modifications_apply_fleet_wide(self, weather):
        first = weather.sample(weather.start_time)
        bank = TwoNodeTentBank(3, first.temp_c)
        ua_before = bank.envelope.ua_w_per_k(0.0)
        bank.apply_modification(Modification.INNER_TENT_REMOVED)
        assert bank.envelope.ua_w_per_k(0.0) > ua_before

    def test_custom_envelope_is_respected(self, weather):
        envelope = TentEnvelope().with_modification(Modification.FAN_INSTALLED)
        first = weather.sample(weather.start_time)
        bank = TwoNodeTentBank(2, first.temp_c, envelope=envelope)
        assert Modification.FAN_INSTALLED in bank.envelope.active_modifications()


class TestValidation:
    def test_rejects_empty_bank(self):
        with pytest.raises(ValueError):
            TwoNodeTentBank(0, 0.0)

    def test_rejects_negative_dt(self, weather):
        first = weather.sample(weather.start_time)
        bank = TwoNodeTentBank(1, first.temp_c)
        with pytest.raises(ValueError):
            bank.step(-1.0, np.array([0.0]), 0.0, 0.0, 0.0)

    def test_zero_dt_is_a_noop(self, weather):
        first = weather.sample(weather.start_time)
        bank = TwoNodeTentBank(1, first.temp_c)
        before = bank.air_temp_c.copy()
        bank.step(0.0, np.array([500.0]), 30.0, 0.0, 0.0)
        assert np.array_equal(bank.air_temp_c, before)
