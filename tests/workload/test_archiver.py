"""Tests for the 10-minute archival loop."""

import pytest

from repro.climate.generator import WeatherGenerator
from repro.climate.profiles import HELSINKI_2010
from repro.hardware.faults import FaultKind, FaultLog, TransientFaultModel
from repro.hardware.host import Host
from repro.hardware.vendors import VENDOR_A
from repro.sim.clock import DAY, HOUR, MINUTE, SimClock
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.thermal.enclosure import BasementMachineRoom
from repro.workload.archiver import (
    CYCLE_PERIOD_S,
    START_FUZZ_MAX_S,
    ArchiverProcess,
    CycleResult,
    WorkloadLedger,
)


def quiet_model():
    return TransientFaultModel(base_rate_per_hour=0.0, defective_rate_per_hour=0.0)


def make_rig(seed=3, memory_fault_ratio=0.0):
    sim = Simulator()
    weather = WeatherGenerator(HELSINKI_2010, RngStreams(seed))
    basement = BasementMachineRoom("basement", weather)
    start = SimClock().at(2010, 2, 19)
    sim.run_until(start)
    basement.advance(start)
    host = Host(
        1, VENDOR_A, RngStreams(seed),
        transient_model=quiet_model(), memory_fault_ratio=memory_fault_ratio,
    )
    host.install(basement, start)
    ledger = WorkloadLedger()
    return sim, host, ledger


class TestCadence:
    def test_one_run_per_ten_minutes(self):
        sim, host, ledger = make_rig()
        ArchiverProcess(sim, host, ledger)
        sim.run_until(sim.now + 6 * HOUR + 5 * MINUTE)
        # 6h05m admits 36 full cycles, plus one more when fuzz+burst < 5 min.
        assert ledger.total_runs in (36, 37)

    def test_start_fuzz_within_paper_bounds(self):
        # "each host sleeps for 0 to 119 seconds"
        for seed in range(10):
            sim, host, ledger = make_rig(seed=seed)
            start = sim.now
            archiver = ArchiverProcess(sim, host, ledger, burst_duration_s=60.0)
            sim.run_until(start + 200.0)
            # First burst completes at fuzz + burst; fuzz <= 119 means the
            # first result lands within 119 + 60 s.
            if ledger.total_runs:
                first = ledger.wrong_hash_results or None
            sim.run_until(start + CYCLE_PERIOD_S + START_FUZZ_MAX_S + 61.0)
            assert ledger.total_runs >= 1

    def test_cpu_busy_during_burst_idle_after(self):
        sim, host, ledger = make_rig()
        ArchiverProcess(sim, host, ledger, burst_duration_s=170.0)
        # Land inside the first burst (fuzz is at most 119 s).
        sim.run_until(sim.now + START_FUZZ_MAX_S + 20.0)
        assert host.cpu.busy
        sim.run_until(sim.now + 400.0)
        assert not host.cpu.busy


class TestLedger:
    def test_counts_per_host(self):
        ledger = WorkloadLedger()
        ledger.record(CycleResult(0.0, 3, True, 0, False))
        ledger.record(CycleResult(1.0, 3, True, 0, False))
        ledger.record(CycleResult(2.0, 5, False, 1, True))
        assert ledger.runs_per_host == {3: 2, 5: 1}
        assert ledger.wrong_per_host == {5: 1}
        assert ledger.total_runs == 3
        assert ledger.total_wrong_hashes == 1
        assert ledger.hosts_with_wrong_hashes() == [5]

    def test_wrong_hash_ratio(self):
        ledger = WorkloadLedger()
        assert ledger.wrong_hash_ratio == 0.0
        ledger.record(CycleResult(0.0, 1, True, 0, False))
        ledger.record(CycleResult(1.0, 1, False, 1, True))
        assert ledger.wrong_hash_ratio == 0.5

    def test_inconsistent_result_rejected(self):
        with pytest.raises(ValueError):
            CycleResult(0.0, 1, hash_ok=True, corrupted_block_count=2, stored=False)


class TestFaultPropagation:
    def test_high_fault_ratio_produces_wrong_hashes(self):
        sim, host, ledger = make_rig(memory_fault_ratio=1e-5)
        log = FaultLog()
        ArchiverProcess(sim, host, ledger, fault_log=log)
        sim.run_until(sim.now + DAY)
        assert ledger.total_wrong_hashes > 0
        assert ledger.stored_archives
        assert log.of_kind(FaultKind.WRONG_HASH)
        # Archives are stored exactly for the mismatches.
        assert len(ledger.stored_archives) == ledger.total_wrong_hashes

    def test_most_recent_stored_archive(self):
        sim, host, ledger = make_rig(memory_fault_ratio=1e-5)
        ArchiverProcess(sim, host, ledger)
        sim.run_until(sim.now + DAY)
        newest = ledger.most_recent_stored_archive()
        assert newest is not None
        assert newest.time == max(a.time for a in ledger.stored_archives)

    def test_zero_ratio_never_mismatches(self):
        sim, host, ledger = make_rig(memory_fault_ratio=0.0)
        ArchiverProcess(sim, host, ledger)
        sim.run_until(sim.now + DAY)
        assert ledger.total_wrong_hashes == 0
        assert ledger.most_recent_stored_archive() is None

    def test_page_ops_accounted_on_host_memory(self):
        sim, host, ledger = make_rig()
        archiver = ArchiverProcess(sim, host, ledger)
        sim.run_until(sim.now + 2 * HOUR)
        expected = ledger.total_runs * archiver.tree.page_ops_per_cycle()
        assert host.memory.page_ops_total == expected


class TestFailedHost:
    def test_down_host_produces_no_results(self):
        sim, host, ledger = make_rig()
        ArchiverProcess(sim, host, ledger)
        sim.run_until(sim.now + HOUR)
        count = ledger.total_runs
        host.transient_model.base_rate_per_hour = 1e9
        host.tick(300.0, sim.now)  # force the failure
        assert not host.running
        sim.run_until(sim.now + 3 * HOUR)
        assert ledger.total_runs == count

    def test_stop_halts_loop_and_clears_busy(self):
        sim, host, ledger = make_rig()
        archiver = ArchiverProcess(sim, host, ledger, burst_duration_s=170.0)
        sim.run_until(sim.now + START_FUZZ_MAX_S + 20.0)
        archiver.stop()
        assert not host.cpu.busy
        count = ledger.total_runs
        sim.run_until(sim.now + 2 * HOUR)
        assert ledger.total_runs == count


class TestValidation:
    def test_burst_must_fit_in_cycle(self):
        sim, host, ledger = make_rig()
        with pytest.raises(ValueError):
            ArchiverProcess(sim, host, ledger, burst_duration_s=CYCLE_PERIOD_S)
        with pytest.raises(ValueError):
            ArchiverProcess(sim, host, ledger, burst_duration_s=0.0)


class TestVendorDerivedBurst:
    def test_default_burst_from_compression_throughput(self):
        sim, host, ledger = make_rig()
        archiver = ArchiverProcess(sim, host, ledger)
        expected = archiver.tree.total_bytes / 1e6 / host.spec.compress_mb_per_s
        assert archiver.burst_duration_s == pytest.approx(expected)

    def test_slower_platform_stays_busy_longer(self):
        from repro.hardware.vendors import VENDOR_B, VENDOR_C

        sim, _host, ledger = make_rig()
        weather_host_b = Host(
            14, VENDOR_B, RngStreams(1), transient_model=quiet_model()
        )
        weather_host_c = Host(
            11, VENDOR_C, RngStreams(1), transient_model=quiet_model()
        )
        burst_b = ArchiverProcess(sim, weather_host_b, ledger).burst_duration_s
        burst_c = ArchiverProcess(sim, weather_host_c, ledger).burst_duration_s
        assert burst_b > burst_c

    def test_explicit_burst_still_honoured(self):
        sim, host, ledger = make_rig()
        archiver = ArchiverProcess(sim, host, ledger, burst_duration_s=100.0)
        assert archiver.burst_duration_s == 100.0
