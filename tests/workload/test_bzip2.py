"""Tests for the block-structured bzip2 model and bzip2recover triage."""

import numpy as np
import pytest

from repro.workload.bzip2 import Archive, Bzip2Model, bzip2recover
from repro.workload.kernel_tree import KernelSourceTree


def rng():
    return np.random.default_rng(17)


class TestArchive:
    def test_clean_archive(self):
        archive = Archive(host_id=1, time=0.0, block_count=396)
        assert archive.clean

    def test_corrupted_archive_not_clean(self):
        archive = Archive(host_id=1, time=0.0, block_count=396, corrupted_blocks=frozenset({7}))
        assert not archive.clean

    def test_block_indices_validated(self):
        with pytest.raises(ValueError):
            Archive(host_id=1, time=0.0, block_count=10, corrupted_blocks=frozenset({10}))

    def test_needs_at_least_one_block(self):
        with pytest.raises(ValueError):
            Archive(host_id=1, time=0.0, block_count=0)


class TestBzip2Model:
    def test_default_tree_has_396_blocks(self):
        assert Bzip2Model().block_count == 396

    def test_compress_without_faults_is_clean(self):
        archive = Bzip2Model().compress(host_id=3, time=10.0, uncorrected_faults=0, rng=rng())
        assert archive.clean
        assert archive.host_id == 3
        assert archive.time == 10.0

    def test_single_fault_corrupts_single_block(self):
        # Section 4.2.2: "only a single one of the 396 bzip2 compression
        # blocks had been corrupted."
        archive = Bzip2Model().compress(host_id=3, time=0.0, uncorrected_faults=1, rng=rng())
        assert len(archive.corrupted_blocks) == 1

    def test_multiple_faults_corrupt_at_most_that_many_blocks(self):
        archive = Bzip2Model().compress(host_id=3, time=0.0, uncorrected_faults=5, rng=rng())
        assert 1 <= len(archive.corrupted_blocks) <= 5

    def test_corruption_location_deterministic_per_rng(self):
        a = Bzip2Model().compress(1, 0.0, 1, np.random.default_rng(5))
        b = Bzip2Model().compress(1, 0.0, 1, np.random.default_rng(5))
        assert a.corrupted_blocks == b.corrupted_blocks

    def test_negative_faults_rejected(self):
        with pytest.raises(ValueError):
            Bzip2Model().compress(1, 0.0, -1, rng())

    def test_custom_tree_block_count(self):
        tree = KernelSourceTree(total_bytes=10 * 900 * 1000)
        assert Bzip2Model(tree).block_count == 10


class TestBzip2Recover:
    def test_report_counts_damage(self):
        archive = Archive(host_id=1, time=0.0, block_count=396, corrupted_blocks=frozenset({5}))
        report = bzip2recover(archive)
        assert report.total_blocks == 396
        assert report.damaged_blocks == frozenset({5})
        assert report.recoverable_blocks == 395

    def test_paper_summary_sentence(self):
        archive = Archive(host_id=1, time=0.0, block_count=396, corrupted_blocks=frozenset({5}))
        assert "1 of the 396" in bzip2recover(archive).summary()

    def test_clean_archive_fully_recoverable(self):
        archive = Archive(host_id=1, time=0.0, block_count=396)
        assert bzip2recover(archive).recoverable_blocks == 396
