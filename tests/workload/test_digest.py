"""Tests for the md5sum verification model."""

import numpy as np
import pytest

from repro.workload.bzip2 import Archive, Bzip2Model
from repro.workload.digest import (
    archive_digest,
    block_digest,
    reference_digest,
    verify_archive,
)
from repro.workload.kernel_tree import KernelSourceTree


@pytest.fixture
def tree():
    return KernelSourceTree()


class TestReferenceDigest:
    def test_is_32_hex_chars(self, tree):
        digest = reference_digest(tree)
        assert len(digest) == 32
        int(digest, 16)  # parses as hex

    def test_deterministic(self, tree):
        assert reference_digest(tree) == reference_digest(KernelSourceTree())

    def test_different_trees_different_digests(self, tree):
        other = KernelSourceTree(total_bytes=tree.total_bytes + 4096)
        assert reference_digest(tree) != reference_digest(other)


class TestVerification:
    def test_clean_archive_verifies(self, tree):
        archive = Archive(host_id=1, time=0.0, block_count=396)
        assert verify_archive(tree, archive)

    def test_corrupted_archive_fails(self, tree):
        archive = Archive(
            host_id=1, time=0.0, block_count=396, corrupted_blocks=frozenset({12})
        )
        assert not verify_archive(tree, archive)

    def test_mismatch_iff_corrupted_end_to_end(self, tree):
        model = Bzip2Model(tree)
        rng = np.random.default_rng(2)
        clean = model.compress(1, 0.0, 0, rng)
        dirty = model.compress(1, 0.0, 1, rng)
        assert verify_archive(tree, clean)
        assert not verify_archive(tree, dirty)

    def test_damage_location_changes_digest(self, tree):
        a = block_digest(tree, {3})
        b = block_digest(tree, {4})
        assert a != b

    def test_block_order_irrelevant(self, tree):
        assert block_digest(tree, [3, 5]) == block_digest(tree, [5, 3])

    def test_archive_digest_matches_block_digest(self, tree):
        archive = Archive(
            host_id=1, time=0.0, block_count=396, corrupted_blocks=frozenset({9})
        )
        assert archive_digest(tree, archive) == block_digest(tree, {9})
