"""Tests for the synthetic kernel source tree arithmetic."""

import pytest

from repro.workload.kernel_tree import PAGE_SIZE_BYTES, KernelSourceTree


class TestPaperArithmetic:
    def test_default_tree_yields_396_blocks(self):
        from repro.workload.bzip2 import BZIP2_BLOCK_BYTES

        tree = KernelSourceTree()
        blocks = -(-tree.total_bytes // BZIP2_BLOCK_BYTES)
        assert blocks == 396

    def test_page_ops_per_cycle_near_paper_ballpark(self):
        # Paper: ~3.2e9 page ops over 27,627 runs -> ~116k per cycle.
        tree = KernelSourceTree()
        paper_per_cycle = 3.2e9 / 27_627
        assert tree.page_ops_per_cycle() == pytest.approx(paper_per_cycle, rel=0.25)

    def test_estimated_page_ops_scales_with_cycles(self):
        tree = KernelSourceTree()
        assert tree.estimated_page_ops(27_627) == pytest.approx(3.2e9, rel=0.25)

    def test_page_census_consistency(self):
        tree = KernelSourceTree()
        assert tree.page_ops_per_cycle() == tree.source_pages + 2 * tree.archive_pages


class TestSizeArithmetic:
    def test_source_pages_ceiling_division(self):
        tree = KernelSourceTree(total_bytes=PAGE_SIZE_BYTES + 1, file_count=1)
        assert tree.source_pages == 2

    def test_compressed_smaller_than_source(self):
        tree = KernelSourceTree()
        assert tree.compressed_bytes < tree.total_bytes

    def test_compression_ratio_applied(self):
        tree = KernelSourceTree(total_bytes=1_000_000, compression_ratio=0.25)
        assert tree.compressed_bytes == 250_000


class TestValidation:
    def test_positive_size_required(self):
        with pytest.raises(ValueError):
            KernelSourceTree(total_bytes=0)

    def test_positive_file_count_required(self):
        with pytest.raises(ValueError):
            KernelSourceTree(file_count=0)

    def test_ratio_in_unit_interval(self):
        with pytest.raises(ValueError):
            KernelSourceTree(compression_ratio=1.5)

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            KernelSourceTree().estimated_page_ops(-1)

    def test_describe_mentions_sizes(self):
        text = KernelSourceTree().describe()
        assert "files" in text and "page ops/cycle" in text
