"""Tests for the tar-stream model and synthetic file census."""

import numpy as np
import pytest

from repro.workload.kernel_tree import KernelSourceTree
from repro.workload.tar import (
    TAR_BLOCK_BYTES,
    FileCensus,
    census_for_tree,
    synthetic_kernel_census,
)


class TestTarArithmetic:
    def test_single_empty_file(self):
        census = FileCensus(sizes=np.array([0]))
        # Header block + two trailer blocks.
        assert census.tar_stream_bytes == 3 * TAR_BLOCK_BYTES

    def test_payload_padded_to_blocks(self):
        census = FileCensus(sizes=np.array([1]))
        # Header + one padded payload block + trailer.
        assert census.tar_stream_bytes == 4 * TAR_BLOCK_BYTES

    def test_exact_block_needs_no_padding(self):
        exact = FileCensus(sizes=np.array([512]))
        off = FileCensus(sizes=np.array([513]))
        assert off.tar_stream_bytes == exact.tar_stream_bytes + TAR_BLOCK_BYTES

    def test_stream_larger_than_content(self):
        census = synthetic_kernel_census(file_count=1000, seed=1)
        assert census.tar_stream_bytes > census.content_bytes
        assert 0.0 < census.padding_overhead < 0.25

    def test_validation(self):
        with pytest.raises(ValueError):
            FileCensus(sizes=np.array([]))
        with pytest.raises(ValueError):
            FileCensus(sizes=np.array([-1]))
        with pytest.raises(ValueError):
            FileCensus(sizes=np.zeros((2, 2)))


class TestSyntheticCensus:
    def test_deterministic(self):
        a = synthetic_kernel_census(seed=5)
        b = synthetic_kernel_census(seed=5)
        assert np.array_equal(a.sizes, b.sizes)

    def test_target_content_hit_exactly(self):
        target = 356_400_000
        census = synthetic_kernel_census(target_content_bytes=target)
        assert census.content_bytes == target

    def test_kernel_shape_mostly_small_files(self):
        census = synthetic_kernel_census(seed=3)
        median = float(np.median(census.sizes))
        assert median < 20_000  # most source files are small
        assert census.sizes.max() > 50 * median  # heavy tail exists

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_kernel_census(file_count=0)
        with pytest.raises(ValueError):
            synthetic_kernel_census(target_content_bytes=-5)

    def test_describe(self):
        text = synthetic_kernel_census(file_count=100, seed=1).describe()
        assert "files" in text and "overhead" in text


class TestCensusForTree:
    def test_matches_tree_totals(self):
        tree = KernelSourceTree()
        census = census_for_tree(tree)
        assert census.file_count == tree.file_count
        assert census.content_bytes == tree.total_bytes

    def test_tar_overhead_is_modest_for_kernel_tree(self):
        # ~31k files x ~512 B average overhead ~ 2-7 % of a 356 MB tree.
        census = census_for_tree(KernelSourceTree())
        assert census.padding_overhead < 0.10
